//! Wall-clock scaling of sharded single-run execution, per the ISSUE
//! acceptance bar: the 64×64 saturated rung at `--shards 4` must finish
//! in at most half the sequential wall time on a >= 4-core host — while
//! producing a bit-identical `SimResult`.
//!
//! Ignored by default (it is a timing assertion, meaningless under
//! `cargo test`'s debug build where every sharded cycle additionally
//! runs the shadow reference pass); ci.sh runs it explicitly in
//! release:
//!
//! ```text
//! cargo test --release --test shard_perf -- --ignored
//! ```
//!
//! On hosts with fewer than 4 cores the test self-skips, mirroring the
//! engine pool's perf gate: the bar is defined for >= 4 cores, and a
//! 1-core container cannot demonstrate parallel speedup no matter how
//! good the mailbox protocol is.

use mdd_sim::prelude::*;
use std::time::Instant;

/// The benchmark rung: PR on a saturated 64×64 torus, heavy enough that
/// per-cycle network work dominates the barrier overhead.
fn rung_cfg(shards: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        4,
        0.30,
    );
    cfg.radix = vec![64, 64];
    cfg.shards = shards;
    cfg.warmup = 200;
    cfg.measure = 1_800;
    cfg.seed = 0x5ca1e;
    cfg
}

fn timed_run(shards: u32) -> (f64, [u64; 4]) {
    let start = Instant::now();
    let r = Simulator::new(rung_cfg(shards)).expect("feasible").run();
    let secs = start.elapsed().as_secs_f64();
    (
        secs,
        [
            r.throughput.to_bits(),
            r.avg_latency.to_bits(),
            r.messages_delivered,
            r.deadlocks,
        ],
    )
}

#[test]
#[ignore = "wall-clock assertion; run in release on a multi-core host (see ci.sh)"]
fn four_shards_halve_the_run_wall_time() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!("shard_perf: skipping, host has {cores} core(s) < 4 (bar is defined for >= 4)");
        return;
    }
    // Warm once so neither timed run pays first-touch costs.
    let _ = timed_run(2);
    let (t1, bits1) = timed_run(1);
    let (t4, bits4) = timed_run(4);
    assert_eq!(bits1, bits4, "results must be bit-identical across shard counts");
    eprintln!("shard_perf: shards=1 {t1:.3}s, shards=4 {t4:.3}s ({:.2}x)", t1 / t4);
    assert!(
        t4 <= t1 * 0.5,
        "64x64 saturated run on 4 shards took {t4:.3}s, more than half of \
         the sequential {t1:.3}s"
    );
}
