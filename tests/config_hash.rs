//! Property tests of the canonical configuration hash that keys the
//! mdd-engine result cache: stable under construction order and
//! round-trips, sensitive to every semantic field, indifferent to the
//! observability-only knob.

use mdd_sim::prelude::*;
use proptest::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(SA),
        Just(Scheme::StrictAvoidance {
            shared_adaptive: true
        }),
        Just(Scheme::DeflectiveRecovery),
        Just(Scheme::ProgressiveRecovery),
    ]
}

fn base() -> SimConfig {
    SimConfig::paper_default(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.25)
}

/// Every way one semantic field of [`base`] can be nudged. The cache key
/// must react to each of them — a stale hit would silently return the
/// wrong experiment.
fn mutate(cfg: &mut SimConfig, field: usize) {
    match field {
        0 => cfg.radix = vec![4, 4],
        1 => cfg.mesh = true,
        2 => cfg.bristle = 2,
        3 => cfg.vcs = 8,
        4 => cfg.flit_buf = 4,
        5 => cfg.scheme = Scheme::DeflectiveRecovery,
        6 => cfg.queue_org = Some(QueueOrg::PerType), // PR default is Shared
        7 => cfg.pattern = std::sync::Arc::new(PatternSpec::pat721()),
        8 => cfg.queue_capacity = 32,
        9 => cfg.service_time = 80,
        10 => cfg.mshr_limit = 8,
        11 => cfg.detect_threshold = 50,
        12 => cfg.router_block_threshold = 400,
        13 => cfg.token_hop = 2,
        14 => cfg.lane_hop = 2,
        15 => cfg.dest = DestPattern::Transpose,
        16 => cfg.seed = cfg.seed.wrapping_add(1),
        17 => cfg.warmup += 1,
        18 => cfg.measure += 1,
        19 => cfg.load += 0.01,
        20 => cfg.cwg_interval = Some(50),
        _ => unreachable!("field index out of range"),
    }
}

const NUM_FIELDS: usize = 21;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The hash is a pure function of the field values: applying the
    /// builder setters in a different order, or cloning, cannot change
    /// the canonical form or the key.
    #[test]
    fn hash_stable_under_construction_order(
        scheme in arb_scheme(),
        vcs in prop_oneof![Just(4u8), Just(8), Just(16)],
        seed in 0u64..10_000,
        load in 0.0f64..0.9,
    ) {
        let a = SimConfig::builder()
            .scheme(scheme)
            .vcs(vcs)
            .seed(seed)
            .load(load)
            .build_unchecked();
        let b = SimConfig::builder()
            .load(load)
            .seed(seed)
            .vcs(vcs)
            .scheme(scheme)
            .build_unchecked();
        prop_assert_eq!(a.canonical_string(), b.canonical_string());
        prop_assert_eq!(a.content_hash_hex(), b.content_hash_hex());
        let c = a.clone();
        prop_assert_eq!(a.content_hash(), c.content_hash());
    }

    /// Changing any single semantic field changes the key.
    #[test]
    fn hash_changes_on_any_semantic_field(field in 0usize..NUM_FIELDS) {
        let reference = base();
        let mut mutated = base();
        mutate(&mut mutated, field);
        // If this fires for some index, that field fell out of
        // canonical_string and stale cache hits would follow.
        prop_assert_ne!(reference.content_hash(), mutated.content_hash());
    }

    /// Distinct mutations produce distinct keys (no accidental collisions
    /// between the single-field variants).
    #[test]
    fn distinct_mutations_do_not_collide(
        a in 0usize..NUM_FIELDS,
        offset in 1usize..NUM_FIELDS,
    ) {
        let b = (a + offset) % NUM_FIELDS;
        let mut one = base();
        let mut two = base();
        mutate(&mut one, a);
        mutate(&mut two, b);
        prop_assert_ne!(one.content_hash(), two.content_hash());
    }
}

/// `obs_sample_every` only controls gauge sampling of the observability
/// layer — it cannot change a measured result, so it must not invalidate
/// cached points.
#[test]
fn observability_knob_does_not_change_hash() {
    let reference = base();
    let mut mutated = base();
    mutated.obs_sample_every = reference.obs_sample_every * 8 + 1;
    assert_eq!(reference.content_hash(), mutated.content_hash());
}

/// `shards` picks an execution strategy with bit-identical results at
/// any count, so cached points must be shared across shard settings.
#[test]
fn shard_count_does_not_change_hash() {
    let reference = base();
    for shards in [2, 4, 7] {
        let mut mutated = base();
        mutated.shards = shards;
        assert_eq!(reference.content_hash(), mutated.content_hash());
        assert_eq!(reference.canonical_string(), mutated.canonical_string());
    }
}

/// An explicit queue-organization override equal to the scheme default
/// describes the same machine as no override, and hashes identically —
/// while a genuinely different override does not.
#[test]
fn queue_org_override_matching_default_hashes_identically() {
    let implicit = base(); // PR: default Shared
    let mut explicit = base();
    explicit.queue_org = Some(QueueOrg::Shared);
    assert_eq!(implicit.content_hash(), explicit.content_hash());

    let mut per_type = base();
    per_type.queue_org = Some(QueueOrg::PerType);
    assert_ne!(implicit.content_hash(), per_type.content_hash());
}

/// The per-point seed derivation is deterministic: the same base config
/// evaluated at the same load twice yields identical keys, and different
/// loads decorrelate.
#[test]
fn at_load_keys_are_reproducible() {
    let cfg = base();
    assert_eq!(
        cfg.at_load(0.30).content_hash(),
        cfg.at_load(0.30).content_hash()
    );
    assert_ne!(
        cfg.at_load(0.30).content_hash(),
        cfg.at_load(0.35).content_hash()
    );
}
