//! Activity-driven scheduling: the wake-set, NIC idle-skip and quiescent
//! cycle-skip must be pure optimizations — bit-identical results to the
//! dense every-cycle schedule, with the skipping observable only through
//! the dedicated counters.
//!
//! Debug builds additionally run the dense shadow check inside every
//! `Network::step` (each skipped router is asserted to be in the exact
//! state on which all four pipeline phases are no-ops), so every
//! simulation driven here — the randomized ones included — doubles as a
//! structural proof-check of the scheduler.
//!
//! The PAT271 cases below stress the burst path specifically: multi-flit
//! data messages stream head→tail through a claimed out-VC, straddle the
//! credit boundary when the downstream buffer fills mid-packet, and (in
//! the progressive-recovery cases) get whole flit runs ripped out
//! mid-burst by recovery-lane extraction.

use mdd_sim::obs;
use mdd_sim::prelude::*;
use proptest::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn cfg_with(scheme: Scheme, load: f64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::small_test(scheme, PatternSpec::pat100(), 4, load);
    cfg.seed = seed;
    cfg
}

/// PAT271 twin config: data messages span several flits, so link
/// traversal runs as wormhole bursts instead of single-flit moves.
fn cfg_271(scheme: Scheme, load: f64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::small_test(scheme, PatternSpec::pat271(), 4, load);
    cfg.seed = seed;
    cfg
}

/// Drive one simulator with `run_cycles` (fast-forward eligible) and a
/// twin with bare `step` calls (dense clock, the pre-scheduling loop), and
/// assert the end states are indistinguishable. Returns the number of
/// recovery router captures (0 for schemes without PR recovery) so burst
/// cases can assert extraction actually fired.
fn assert_schedules_agree(mut cfg: SimConfig, cycles: u64, stop_generation: bool) -> u64 {
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut fast = Simulator::new(cfg.clone()).expect("feasible config");
    let mut dense = Simulator::new(cfg).expect("feasible config");
    if stop_generation {
        fast.set_generation(false);
        dense.set_generation(false);
    }
    fast.run_cycles(cycles);
    for _ in 0..cycles {
        dense.step();
    }
    assert_eq!(fast.cycle(), dense.cycle(), "clocks diverged");
    let (f, d) = (fast.network().counters(), dense.network().counters());
    assert_eq!(f.flits_moved, d.flits_moved);
    assert_eq!(f.flits_delivered, d.flits_delivered);
    assert_eq!(f.packets_delivered, d.packets_delivered);
    assert_eq!(f.flits_injected, d.flits_injected);
    let (fs, ds) = (fast.aggregate_stats(), dense.aggregate_stats());
    assert_eq!(fs.messages_consumed, ds.messages_consumed);
    assert_eq!(fs.transactions_completed, ds.transactions_completed);
    assert_eq!(
        fs.msg_latency.mean().to_bits(),
        ds.msg_latency.mean().to_bits(),
        "latency accumulators diverged"
    );
    assert_eq!(fast.is_quiescent(), dense.is_quiescent());
    let (fc, dc) = (
        fast.recovery().map_or(0, |r| r.router_captures),
        dense.recovery().map_or(0, |r| r.router_captures),
    );
    assert_eq!(fc, dc, "recovery extraction schedules diverged");
    fc
}

/// The obs layer is process-global, so all counter-reading checks share
/// one `#[test]` (concurrent tests in this binary could only *increase*
/// the deltas below, never hide them — every assertion is of the form
/// "delta is positive / at least X").
#[test]
fn skip_counters_and_fast_forward() {
    obs::install(1 << 16);

    // Zero applied load: the whole run is one quiescent stretch. The
    // clock must still cover the full horizon, almost entirely by
    // fast-forwarding, and draining afterwards is a no-op.
    let before = ObsReport::capture();
    let mut cfg = cfg_with(SA, 0.0, 11);
    cfg.warmup = 100;
    cfg.measure = 5_000;
    let mut sim = Simulator::new(cfg).expect("feasible config");
    let r = sim.run();
    let after = ObsReport::capture();
    assert_eq!(sim.cycle(), 5_100, "horizon must be covered in full");
    assert_eq!(r.generated, 0);
    let jumped = after.get(CounterId::CyclesFastForwarded)
        - before.get(CounterId::CyclesFastForwarded);
    assert!(
        jumped >= 5_000,
        "an idle system should cover nearly the whole horizon by jumping, got {jumped}"
    );
    assert!(sim.drain(10), "an idle system drains immediately");
    assert!(sim.is_quiescent());

    // Low load: most routers and NICs sit out most cycles.
    let before = ObsReport::capture();
    let r = Simulator::new(cfg_with(SA, 0.05, 12)).expect("feasible config").run();
    let after = ObsReport::capture();
    assert!(r.messages_delivered > 0, "traffic must actually flow");
    let router_skips = after.get(CounterId::RouterTicksSkipped)
        - before.get(CounterId::RouterTicksSkipped);
    let nic_skips =
        after.get(CounterId::NicTicksSkipped) - before.get(CounterId::NicTicksSkipped);
    assert!(router_skips > 0, "low load must skip router ticks");
    assert!(nic_skips > 0, "low load must skip NIC ticks");
}

/// A drained low-load system fast-forwards the idle tail, and the fast
/// clock is indistinguishable from dense stepping over the same window.
#[test]
fn fast_forward_matches_dense_after_drain() {
    // Generation disabled from the start: the in-flight warmup of zero
    // messages drains instantly and the rest of the window jumps.
    assert_schedules_agree(cfg_with(SA, 0.3, 21), 4_000, true);
    // With generation on, the fast path must never engage a jump that
    // changes anything (the Bernoulli source needs every cycle).
    assert_schedules_agree(cfg_with(SA, 0.1, 22), 2_000, false);
    assert_schedules_agree(cfg_with(Scheme::DeflectiveRecovery, 0.1, 23), 2_000, false);
    assert_schedules_agree(cfg_with(Scheme::ProgressiveRecovery, 0.1, 24), 2_000, false);
}

/// Multi-flit PAT271 bursts straddling the credit boundary: at these
/// loads downstream buffers routinely fill mid-packet, so the link stream
/// pauses inside a claimed out-VC and resumes on credit return — the path
/// the burst-transfer optimization rewrote.
#[test]
fn multi_flit_bursts_straddle_credit_boundary() {
    assert_schedules_agree(cfg_271(Scheme::DeflectiveRecovery, 0.35, 31), 3_000, false);
    assert_schedules_agree(cfg_271(Scheme::ProgressiveRecovery, 0.35, 32), 3_000, false);
    // Near saturation: almost every burst stalls on credits at least once.
    assert_schedules_agree(cfg_271(Scheme::DeflectiveRecovery, 0.60, 33), 3_000, false);
}

/// Recovery-lane extraction interrupting bursts: lowered detection
/// thresholds at saturating load make PR recovery capture blocked heads
/// and pull whole flit runs out of in-flight wormholes. The twin check
/// proves extraction lands on the same cycles under both schedules; the
/// returned capture count proves the case actually exercised it.
#[test]
fn extraction_interrupts_bursts() {
    let mut cfg = cfg_271(Scheme::ProgressiveRecovery, 0.65, 2);
    cfg.detect_threshold = 12;
    cfg.router_block_threshold = 40;
    let captures = assert_schedules_agree(cfg, 4_000, false);
    assert!(
        captures > 0,
        "chosen seed/load must trigger recovery extraction mid-run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any feasible configuration run under the activity scheduler ends
    /// bit-identical to the dense schedule — and, in debug builds, passes
    /// the per-cycle dense shadow check along the way.
    #[test]
    fn activity_schedule_is_bit_exact(
        scheme in prop_oneof![
            Just(SA),
            Just(Scheme::StrictAvoidance { shared_adaptive: true }),
            Just(Scheme::DeflectiveRecovery),
            Just(Scheme::ProgressiveRecovery),
        ],
        load in 0.02f64..0.6,
        seed in 0u64..1000,
        stop in prop_oneof![Just(false), Just(true)],
    ) {
        assert_schedules_agree(cfg_with(scheme, load, seed), 1_500, stop);
    }

    /// The same bit-exactness property over multi-flit PAT271 traffic,
    /// where link traversal runs as bursts: random loads up to saturation
    /// cover credit-boundary straddles, and the lowered recovery
    /// thresholds let PR extraction fire mid-burst when the draw blocks.
    #[test]
    fn multi_flit_burst_schedule_is_bit_exact(
        scheme in prop_oneof![
            Just(Scheme::DeflectiveRecovery),
            Just(Scheme::ProgressiveRecovery),
        ],
        load in 0.2f64..0.7,
        seed in 0u64..1000,
    ) {
        let mut cfg = cfg_271(scheme, load, seed);
        cfg.detect_threshold = 12;
        cfg.router_block_threshold = 40;
        assert_schedules_agree(cfg, 1_500, false);
    }
}
