//! End-to-end integration tests through the facade crate, spanning every
//! workspace member: topology → routing → transport → endpoints → schemes
//! → measurement.

use mdd_sim::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn quick(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    cfg.warmup = 1_500;
    cfg.measure = 4_000;
    cfg
}

#[test]
fn all_schemes_all_patterns_feasibility_matrix() {
    // The feasibility matrix of Section 4.3.2: which (scheme, pattern, vcs)
    // combinations are configurable. This is the gating the paper uses to
    // decide which curves appear in Figures 8-10.
    let patterns = PatternSpec::all_paper_patterns();
    for pattern in &patterns {
        let chain4 = pattern.protocol().num_partition_types() > 2;
        for vcs in [4u8, 8, 16] {
            for scheme in [SA, Scheme::DeflectiveRecovery, Scheme::ProgressiveRecovery] {
                let ok = Simulator::new(quick(scheme, pattern.clone(), vcs, 0.05)).is_ok();
                let expect = match scheme {
                    Scheme::StrictAvoidance { .. } => {
                        vcs as usize >= pattern.protocol().num_partition_types() * 2
                    }
                    Scheme::DeflectiveRecovery => vcs >= 4,
                    Scheme::ProgressiveRecovery => true,
                };
                assert_eq!(
                    ok,
                    expect,
                    "{} on {} with {} VCs (chain4={chain4})",
                    scheme.label(),
                    pattern.name(),
                    vcs
                );
            }
        }
    }
}

#[test]
fn full_stack_delivery_and_measurement() {
    let mut sim = Simulator::new(quick(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat280(),
        4,
        0.15,
    ))
    .unwrap();
    let r = sim.run();
    // Below saturation: throughput tracks the applied load.
    assert!((r.throughput - 0.15).abs() < 0.04, "tput {}", r.throughput);
    assert!(r.avg_latency > 10.0 && r.avg_latency < 200.0);
    assert!(r.transactions > 500);
    assert_eq!(r.deadlocks, 0);
    // Messages per transaction matches PAT280's 2.8 average.
    let ratio = r.messages_delivered as f64 / r.transactions as f64;
    assert!((ratio - 2.8).abs() < 0.2, "messages per txn: {ratio}");
}

#[test]
fn coherence_driven_simulation_end_to_end() {
    let horizon = 20_000u64;
    let traffic = CoherentTraffic::new(AppModel::radix(), 16, horizon, 9);
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        CoherenceEngine::msi_pattern(),
        4,
        0.0,
    );
    cfg.radix = vec![4, 4];
    cfg.warmup = 0;
    cfg.measure = horizon;
    let mut sim = Simulator::with_traffic(cfg, Box::new(traffic)).unwrap();
    sim.set_measuring(true);
    sim.run_cycles(horizon);
    let agg = sim.aggregate_stats();
    assert!(
        agg.transactions_completed > 200,
        "Radix generates real traffic: {}",
        agg.transactions_completed
    );
    assert_eq!(
        agg.deadlocks_detected, 0,
        "application loads are far below saturation (Section 4.2.2)"
    );
    // The system must drain cleanly afterwards.
    assert!(sim.drain(300_000));
}

#[test]
fn queue_separation_helps_shared_schemes_at_many_vcs() {
    // Figure 11's mechanism at reduced scale: with plentiful VCs, PR with
    // per-type queues (QA) sustains at least as much throughput as PR with
    // a single shared queue pair, because inter-message coupling at the
    // endpoints is removed.
    let load = 0.40;
    let mut shared = quick(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 16, load);
    shared.measure = 6_000;
    let mut qa = shared.clone();
    qa.queue_org = Some(QueueOrg::PerType);
    let r_shared = Simulator::new(shared).unwrap().run();
    let r_qa = Simulator::new(qa).unwrap().run();
    assert!(
        r_qa.throughput >= r_shared.throughput * 0.98,
        "QA ({:.4}) should not lose to shared queues ({:.4})",
        r_qa.throughput,
        r_shared.throughput
    );
}

#[test]
fn wait_for_graph_spans_network_and_endpoints() {
    let mut sim = Simulator::new(quick(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        4,
        0.35,
    ))
    .unwrap();
    sim.run_cycles(3_000);
    let g = build_waitfor_graph(&sim);
    // 64 routers x 5 ports x 4 VCs + 64 NICs x 2 x 1 queue.
    assert_eq!(g.len(), 64 * 5 * 4 + 64 * 2);
    assert!(g.num_edges() > 0, "a loaded network has wait relations");
}

#[test]
fn token_statistics_exposed() {
    let mut sim = Simulator::new(quick(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        4,
        0.05,
    ))
    .unwrap();
    sim.run_cycles(2_000);
    let rec = sim.recovery().expect("PR exposes its recovery machinery");
    let (laps, captures) = rec.token_stats();
    assert!(laps >= 10, "token circulates freely at light load: {laps} laps");
    assert_eq!(captures, 0, "nothing to rescue at light load");
    assert!(!rec.episode_active());
}

#[test]
fn sa_plus_shared_adaptive_runs() {
    let r = Simulator::new(quick(
        Scheme::StrictAvoidance {
            shared_adaptive: true,
        },
        PatternSpec::pat271(),
        16,
        0.2,
    ))
    .unwrap()
    .run();
    assert!(r.throughput > 0.15);
    assert_eq!(r.deadlocks, 0);
}

#[test]
fn facade_prelude_reexports_are_usable() {
    // Types from every layer, reached through the facade alone.
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 2);
    assert_eq!(topo.num_nics(), 32);
    let proto = ProtocolSpec::origin2000();
    assert_eq!(proto.chain_length(), 3);
    let mut stats = OnlineStats::new();
    stats.add(1.0);
    assert_eq!(stats.count(), 1);
    let mut h = Histogram::new(0.0, 1.0, 4);
    h.add(0.3);
    assert_eq!(h.total(), 1);
    let mut ids = IdAlloc::new();
    assert_eq!(ids.next_msg(), MessageId(0));
}

#[test]
fn multicast_invalidations_flow_and_drain() {
    // Water under the MSI engine produces real multi-sharer invalidations
    // (fan-out at the home, per-branch acks joining before the final
    // reply). Everything must complete and drain.
    let horizon = 15_000u64;
    let traffic = CoherentTraffic::new(AppModel::water(), 16, horizon, 21);
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        CoherenceEngine::msi_pattern(),
        4,
        0.0,
    );
    cfg.radix = vec![4, 4];
    cfg.warmup = 0;
    cfg.measure = horizon;
    let mut sim = Simulator::with_traffic(cfg, Box::new(traffic)).unwrap();
    sim.set_measuring(true);
    sim.run_cycles(horizon);
    let agg = sim.aggregate_stats();
    assert!(agg.transactions_completed > 50);
    assert!(sim.drain(400_000), "multicast joins must not wedge the drain");
    let agg = sim.aggregate_stats();
    assert_eq!(agg.transactions_completed, sim.generated());
    // Water is invalidation-heavy: more messages than 2x transactions
    // proves chains longer than request/reply (including fan-out) ran.
    assert!(
        agg.messages_consumed as f64 > 2.2 * agg.transactions_completed as f64,
        "messages {} vs txns {}",
        agg.messages_consumed,
        agg.transactions_completed
    );
}
