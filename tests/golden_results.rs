//! Golden determinism test: fixed-seed 4×4 points for each scheme whose
//! full `SimResult` is snapshotted and compared bit-exactly.
//!
//! The constants below were captured from the tree *before* the
//! single-owner `MessageStore` data-plane refactor, so this test proves
//! the refactor (and any future one) is behaviour-invariant: identical
//! RNG draw order, identical round-robin decisions, identical scheme
//! actions, identical floating-point accumulation order.
//!
//! To re-capture after an *intentional* behaviour change, run
//! `GOLDEN_PRINT=1 cargo test --test golden_results -- --nocapture`
//! and paste the printed rows over the `GOLDEN` table.

use mdd_sim::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

/// One pinned simulation outcome. Floating-point fields are stored as
/// `f64::to_bits` so the comparison is exact, not epsilon-based.
struct Golden {
    name: &'static str,
    throughput: u64,
    avg_latency: u64,
    p50: u64,
    p95: u64,
    p99: u64,
    messages_delivered: u64,
    transactions: u64,
    deadlocks: u64,
    router_rescues: u64,
    deflections: u64,
    rescues: u64,
    generated: u64,
    mc_utilization: u64,
    vc_util_mean: u64,
    vc_util_max: u64,
    vc_util_cv: u64,
}

fn configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        (
            "sa_pat100_vc4_load30",
            SimConfig::small_test(SA, PatternSpec::pat100(), 4, 0.30),
        ),
        (
            "dr_pat271_vc4_load80",
            SimConfig::small_test(Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4, 0.80),
        ),
        (
            "pr_pat271_vc4_load55",
            SimConfig::small_test(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.55),
        ),
        (
            "pr_pat271_vc4_load80",
            SimConfig::small_test(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.80),
        ),
    ]
}

/// Captured from the pre-refactor tree (see module docs).
const GOLDEN: &[Golden] = &[
    Golden {
        name: "sa_pat100_vc4_load30",
        throughput: 0x3fd3bba5e353f7cf,
        avg_latency: 0x403bfce3b19d1576,
        p50: 0x403542acbe17eee0,
        p95: 0x4053ff016f0567d5,
        p99: 0x405ab9e7778d3874,
        messages_delivered: 1646,
        transactions: 825,
        deadlocks: 0,
        router_rescues: 0,
        deflections: 0,
        rescues: 0,
        generated: 822,
        mc_utilization: 0x3fc05a1cac083127,
        vc_util_mean: 0x3fa44c2f837b4a22,
        vc_util_max: 0x3fd1205bc01a36e3,
        vc_util_cv: 0x3ff830f9fd647258,
    },
    Golden {
        name: "dr_pat271_vc4_load80",
        throughput: 0x3fe08c28f5c28f5c,
        avg_latency: 0x407f7f4805980bce,
        p50: 0x40800cc427a490bd,
        p95: 0x40989ce786312dbf,
        p99: 0x409bc4271913d121,
        messages_delivered: 3295,
        transactions: 1125,
        deadlocks: 29,
        router_rescues: 0,
        deflections: 0,
        rescues: 0,
        generated: 1752,
        mc_utilization: 0x3fd6f5c28f5c28f6,
        vc_util_mean: 0x3fb131de69ad42c3,
        vc_util_max: 0x3fd64c2f837b4a23,
        vc_util_cv: 0x3ff4a40d4085df17,
    },
    Golden {
        name: "pr_pat271_vc4_load55",
        throughput: 0x3fdf2dd2f1a9fbe7,
        avg_latency: 0x40665e2554077f8d,
        p50: 0x40647068e88c1218,
        p95: 0x407eea8c43f9a657,
        p99: 0x4087f7271db7878d,
        messages_delivered: 3141,
        transactions: 1041,
        deadlocks: 20,
        router_rescues: 0,
        deflections: 0,
        rescues: 7,
        generated: 1202,
        mc_utilization: 0x3fd4be76c8b43958,
        vc_util_mean: 0x3fb044816f0068db,
        vc_util_max: 0x3fbbda5119ce075f,
        vc_util_cv: 0x3fd19720a4023ea4,
    },
    Golden {
        name: "pr_pat271_vc4_load80",
        throughput: 0x3fdec45a1cac0831,
        avg_latency: 0x408178602ccb3814,
        p50: 0x40811fab68e2a4af,
        p95: 0x409c2a427cafabcd,
        p99: 0x40a085d7236759fa,
        messages_delivered: 3109,
        transactions: 1040,
        deadlocks: 39,
        router_rescues: 3,
        deflections: 0,
        rescues: 25,
        generated: 1752,
        mc_utilization: 0x3fd528f5c28f5c29,
        vc_util_mean: 0x3fb01a0f9096bb9b,
        vc_util_max: 0x3fbbda5119ce075f,
        vc_util_cv: 0x3fd197f181d5d8fb,
    },
];

fn row(name: &str, r: &SimResult) -> String {
    let (p50, p95, p99) = r.latency_quantiles;
    format!(
        "    Golden {{\n        name: \"{name}\",\n        \
         throughput: {:#018x},\n        avg_latency: {:#018x},\n        \
         p50: {:#018x},\n        p95: {:#018x},\n        p99: {:#018x},\n        \
         messages_delivered: {},\n        transactions: {},\n        \
         deadlocks: {},\n        router_rescues: {},\n        \
         deflections: {},\n        rescues: {},\n        generated: {},\n        \
         mc_utilization: {:#018x},\n        vc_util_mean: {:#018x},\n        \
         vc_util_max: {:#018x},\n        vc_util_cv: {:#018x},\n    }},",
        r.throughput.to_bits(),
        r.avg_latency.to_bits(),
        p50.to_bits(),
        p95.to_bits(),
        p99.to_bits(),
        r.messages_delivered,
        r.transactions,
        r.deadlocks,
        r.router_rescues,
        r.deflections,
        r.rescues,
        r.generated,
        r.mc_utilization.to_bits(),
        r.vc_util_mean.to_bits(),
        r.vc_util_max.to_bits(),
        r.vc_util_cv.to_bits(),
    )
}

#[test]
fn golden_sim_results_are_bit_identical() {
    let print_mode = std::env::var("GOLDEN_PRINT").is_ok();
    for (name, cfg) in configs() {
        let r = Simulator::new(cfg)
            .unwrap_or_else(|e| panic!("{name}: infeasible config: {e:?}"))
            .run();
        if print_mode {
            println!("{}", row(name, &r));
            continue;
        }
        let g = GOLDEN
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("no golden row for {name}"));
        let (p50, p95, p99) = r.latency_quantiles;
        let checks: &[(&str, u64, u64)] = &[
            ("throughput", r.throughput.to_bits(), g.throughput),
            ("avg_latency", r.avg_latency.to_bits(), g.avg_latency),
            ("p50", p50.to_bits(), g.p50),
            ("p95", p95.to_bits(), g.p95),
            ("p99", p99.to_bits(), g.p99),
            ("messages_delivered", r.messages_delivered, g.messages_delivered),
            ("transactions", r.transactions, g.transactions),
            ("deadlocks", r.deadlocks, g.deadlocks),
            ("router_rescues", r.router_rescues, g.router_rescues),
            ("deflections", r.deflections, g.deflections),
            ("rescues", r.rescues, g.rescues),
            ("generated", r.generated, g.generated),
            ("mc_utilization", r.mc_utilization.to_bits(), g.mc_utilization),
            ("vc_util_mean", r.vc_util_mean.to_bits(), g.vc_util_mean),
            ("vc_util_max", r.vc_util_max.to_bits(), g.vc_util_max),
            ("vc_util_cv", r.vc_util_cv.to_bits(), g.vc_util_cv),
        ];
        for (field, actual, expect) in checks {
            assert_eq!(
                actual, expect,
                "{name}.{field}: got {actual:#018x}, golden {expect:#018x} \
                 (as f64: {} vs {})",
                f64::from_bits(*actual),
                f64::from_bits(*expect),
            );
        }
    }
}
