//! Static-vs-dynamic agreement: the verdicts of `mdd-verify` must be
//! consistent with what actually happens when the same configuration is
//! simulated.
//!
//! Two directions are checked:
//!
//! * **Soundness of `ProvenFree`** — randomized feasible configurations
//!   the verifier certifies deadlock-free never trip the CWG oracle in a
//!   bounded simulation, at any load or seed.
//! * **The `Unsafe` verdict is not a false alarm** — an SA configuration
//!   deliberately crippled to one fewer VC than the scheme requires is
//!   classified `Unsafe`, and the degraded network it describes
//!   ([`Simulator::with_degraded_vcs`]) genuinely reaches an
//!   oracle-confirmed deadlock under load.

use mdd_sim::prelude::*;
use proptest::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

/// A small-torus config with the CWG oracle armed.
fn oracle_config(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    cfg.radix = vec![4, 4];
    cfg.seed = seed;
    cfg.warmup = 0;
    cfg.measure = 0;
    cfg.cwg_interval = Some(100);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Configurations the static verifier proves free never report a
    /// deadlock episode in bounded simulation.
    #[test]
    fn proven_free_never_deadlocks(
        scheme in prop_oneof![
            Just(SA),
            Just(Scheme::StrictAvoidance { shared_adaptive: true }),
            Just(Scheme::DeflectiveRecovery),
        ],
        pat in 0usize..5,
        vcs in prop_oneof![Just(4u8), Just(8)],
        load in 0.1f64..0.7,
        seed in 0u64..1000,
    ) {
        let pattern = PatternSpec::all_paper_patterns().swap_remove(pat);
        let cfg = oracle_config(scheme, pattern, vcs, load, seed);
        let Ok(verdict) = verify_config(&cfg) else {
            return Ok(()); // infeasible VC budget: nothing to agree on
        };
        if !verdict.is_proven_free() {
            return Ok(());
        }
        let mut sim = Simulator::new(cfg).expect("verifiable config must be feasible");
        sim.run_cycles(4_000);
        let (checks, deadlocked) = sim.cwg_stats();
        prop_assert!(checks > 0, "oracle never ran");
        prop_assert_eq!(
            deadlocked, 0,
            "ProvenFree config reached an oracle-confirmed deadlock"
        );
    }
}

/// Crippling SA below its feasible VC budget (PAT271 needs 8 partitions)
/// is classified `Unsafe`, with a printable cycle witness.
#[test]
fn crippled_sa_is_unsafe() {
    let cfg = oracle_config(SA, PatternSpec::pat271(), 7, 0.5, 1);
    assert!(
        verify_config(&cfg).is_err(),
        "7 VCs must be infeasible for SA on PAT271"
    );
    let verdict = verify_config_degraded(&cfg);
    assert!(verdict.is_unsafe(), "expected Unsafe, got {verdict}");
    let witness = verdict.witness().expect("Unsafe carries a witness");
    assert!(
        witness.vertices.len() >= 2 && !witness.rendered.is_empty(),
        "witness must name a non-trivial cycle"
    );
}

/// The degraded network that crippled-SA verdict describes genuinely
/// deadlocks: the CWG oracle confirms a knot during bounded simulation.
/// Whether a knot closes within the window is seed-dependent, so a few
/// seeds are tried; most deadlock within the first few thousand cycles.
#[test]
fn crippled_sa_deadlocks_dynamically() {
    let deadlocked = (0..4).any(|seed| {
        let mut cfg = oracle_config(SA, PatternSpec::pat271(), 7, 0.6, seed);
        cfg.cwg_interval = Some(50);
        let mut sim = Simulator::with_degraded_vcs(cfg);
        for _ in 0..10 {
            sim.run_cycles(2_000);
            if sim.cwg_stats().1 > 0 {
                return true;
            }
        }
        false
    });
    assert!(
        deadlocked,
        "statically-Unsafe degraded SA config never deadlocked in 20k cycles x 4 seeds"
    );
}
