//! Qualitative reproduction of the paper's claims at reduced scale.
//! These tests encode the *shape* of the published results — who wins,
//! where deadlocks appear, what the queue organization does — not the
//! absolute numbers (the substrate is a reimplementation, not the
//! authors' testbed). EXPERIMENTS.md records the full-scale comparison.

use mdd_sim::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn curve(
    scheme: Scheme,
    pattern: PatternSpec,
    vcs: u8,
    org: Option<QueueOrg>,
    max_load: f64,
) -> BnfCurve {
    let cfg = SimConfig::builder()
        .scheme(scheme)
        .pattern(pattern)
        .vcs(vcs)
        .queue_org(org)
        .windows(2_000, 5_000)
        .build()
        .expect("feasible");
    let loads = default_loads(0.10, max_load, 4);
    let label = org.map_or_else(|| scheme.label().to_string(), |_| format!("{}-QA", scheme.label()));
    let (curve, results) = run_curve_checked(&cfg, &loads, &label);
    assert!(results.iter().all(Result::is_ok), "all points feasible");
    curve
}

/// Figure 8 claim: with 4 VCs, PR clearly outperforms SA on PAT100 (the
/// paper reports over 100% more throughput).
#[test]
fn fig8_pat100_pr_beats_sa() {
    let sa = curve(SA, PatternSpec::pat100(), 4, None, 0.42);
    let pr = curve(Scheme::ProgressiveRecovery, PatternSpec::pat100(), 4, None, 0.42);
    assert!(
        pr.saturation_throughput() > sa.saturation_throughput() * 1.3,
        "PR {:.4} vs SA {:.4}",
        pr.saturation_throughput(),
        sa.saturation_throughput()
    );
}

/// Figure 8 claim: with 4 VCs, PR yields substantially more throughput
/// than DR for PAT721 (paper: up to 100% more).
#[test]
fn fig8_pat721_pr_beats_dr() {
    let dr = curve(Scheme::DeflectiveRecovery, PatternSpec::pat721(), 4, None, 0.40);
    let pr = curve(Scheme::ProgressiveRecovery, PatternSpec::pat721(), 4, None, 0.40);
    assert!(
        pr.saturation_throughput() > dr.saturation_throughput() * 1.2,
        "PR {:.4} vs DR {:.4}",
        pr.saturation_throughput(),
        dr.saturation_throughput()
    );
}

/// Figure 9 claim: with 8 VCs, SA saturates early for multi-type patterns
/// (only one channel per type beyond the escape pair), while DR and PR
/// are close to each other.
#[test]
fn fig9_sa_saturates_early_for_chain4() {
    let sa = curve(SA, PatternSpec::pat721(), 8, None, 0.42);
    let pr = curve(Scheme::ProgressiveRecovery, PatternSpec::pat721(), 8, None, 0.42);
    let dr = curve(Scheme::DeflectiveRecovery, PatternSpec::pat721(), 8, None, 0.42);
    assert!(
        pr.saturation_throughput() > sa.saturation_throughput() * 1.1,
        "PR {:.4} vs SA {:.4}",
        pr.saturation_throughput(),
        sa.saturation_throughput()
    );
    let ratio = pr.saturation_throughput() / dr.saturation_throughput();
    // Band width: at this reduced scale the ratio moves with the traffic
    // stream (0.75–0.96 across seeds under the in-tree PRNG), so
    // "comparable" is asserted as within ~30% either way — still far from
    // the >2x gaps the SA comparisons above demonstrate.
    assert!(
        (0.7..1.4).contains(&ratio),
        "DR and PR should be comparable at 8 VCs: ratio {ratio:.2}"
    );
}

/// Figure 9 claim: for PAT100 at 8 VCs, the difference between SA and PR
/// becomes negligible (three channels per type suffice).
#[test]
fn fig9_pat100_sa_close_to_pr() {
    let sa = curve(SA, PatternSpec::pat100(), 8, None, 0.45);
    let pr = curve(Scheme::ProgressiveRecovery, PatternSpec::pat100(), 8, None, 0.45);
    // The paper reports a negligible difference here; our substrate's
    // stronger network exposes PR's endpoint coupling one VC step earlier
    // (see EXPERIMENTS.md), so the tolerance is wider on the PR side.
    let ratio = pr.saturation_throughput() / sa.saturation_throughput();
    assert!(
        (0.65..1.30).contains(&ratio),
        "SA and PR should be broadly comparable for PAT100 at 8 VCs: ratio {ratio:.2}"
    );
}

/// Figure 11 claim: at 16 VCs the per-type queue organization (QA) lifts
/// the shared-queue schemes; PR-QA must beat shared-queue PR.
#[test]
fn fig11_qa_improves_pr() {
    let shared = curve(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        16,
        None,
        0.48,
    );
    let qa = curve(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        16,
        Some(QueueOrg::PerType),
        0.48,
    );
    assert!(
        qa.saturation_throughput() >= shared.saturation_throughput(),
        "PR-QA {:.4} vs PR {:.4}",
        qa.saturation_throughput(),
        shared.saturation_throughput()
    );
}

/// Section 4.2 claim: none of the application workloads comes anywhere
/// near deadlock, even with bristling (all stay below saturation loads).
#[test]
fn trace_driven_apps_never_deadlock() {
    for (radix, bristle) in [(vec![4u32, 4], 1u32), (vec![2, 2], 4)] {
        let traffic = CoherentTraffic::new(AppModel::water(), 16, 12_000, 3);
        let mut cfg = SimConfig::paper_default(
            Scheme::ProgressiveRecovery,
            CoherenceEngine::msi_pattern(),
            4,
            0.0,
        );
        cfg.radix = radix;
        cfg.bristle = bristle;
        cfg.warmup = 0;
        cfg.measure = 12_000;
        let mut sim = Simulator::with_traffic(cfg, Box::new(traffic)).unwrap();
        sim.set_measuring(true);
        sim.run_cycles(12_000);
        assert_eq!(
            sim.aggregate_stats().deadlocks_detected,
            0,
            "no deadlocks expected at application loads"
        );
    }
}

/// Section 4.3 claim: deadlocks are rare — at loads below saturation the
/// normalized deadlock count is exactly zero for every scheme that can
/// experience them.
#[test]
fn no_deadlocks_below_saturation() {
    for scheme in [Scheme::DeflectiveRecovery, Scheme::ProgressiveRecovery] {
        let mut cfg = SimConfig::paper_default(scheme, PatternSpec::pat271(), 4, 0.15);
        cfg.warmup = 1_000;
        cfg.measure = 5_000;
        let r = Simulator::new(cfg).unwrap().run();
        assert_eq!(r.deadlocks, 0, "{} at 0.15 load", scheme.label());
        assert_eq!(r.deflections, 0);
        assert_eq!(r.rescues, 0);
    }
}

/// Table 3 claim: the measured message-type mix of a running simulation
/// matches the pattern's declared distribution.
#[test]
fn running_type_mix_matches_table3() {
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat451(),
        4,
        0.20,
    );
    cfg.warmup = 1_000;
    cfg.measure = 6_000;
    let mut sim = Simulator::new(cfg).unwrap();
    let r = sim.run();
    // PAT451 averages 2.7 messages per transaction.
    let ratio = r.messages_delivered as f64 / r.transactions as f64;
    assert!((ratio - 2.7).abs() < 0.15, "messages/txn {ratio}");
}
