//! End-to-end checks of the observability layer: a configuration known
//! to deadlock must leave a coherent story in the counters and the event
//! trace — detections precede recoveries, and every completed episode's
//! `RecoveryStart`/`RecoveryEnd` events pair by episode number and agree
//! on the rescued message.
//!
//! The mdd-obs layer is process-global, so everything runs inside one
//! `#[test]` (the other integration-test binaries are separate processes
//! and cannot interfere).

use mdd_sim::obs::{self, sink, Event};
use mdd_sim::prelude::*;
use std::collections::HashMap;

fn deadlocking_config() -> SimConfig {
    // The same shape core's episode-log test uses: a small torus driven
    // far past saturation deadlocks quickly and recovers repeatedly.
    let mut cfg = SimConfig::small_test(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        4,
        0.8,
    );
    cfg.warmup = 0;
    cfg.measure = 8_000;
    cfg
}

#[test]
fn deadlocking_run_traces_detection_and_paired_recovery() {
    // Without an installed layer, runs carry no report and sites are
    // inert.
    let r = Simulator::new(deadlocking_config()).unwrap().run();
    assert!(r.obs.is_none(), "no obs layer installed yet");
    assert!(obs::trace_snapshot().is_none());

    obs::install(1 << 20);
    let r = Simulator::new(deadlocking_config()).unwrap().run();
    let report = r.obs.as_ref().expect("installed layer yields a report");

    // The run deadlocked and the counters saw it (the obs counters
    // ignore the measurement window, so they are at least the windowed
    // SimResult numbers).
    assert!(r.deadlocks > 0, "config must deadlock: {r:?}");
    assert!(report.get(CounterId::DeadlocksDetected) >= r.deadlocks);
    assert!(report.get(CounterId::DeadlocksRecovered) > 0);
    assert!(report.get(CounterId::TokenHops) > 0);
    assert!(report.get(CounterId::MsgsInjected) > 0);
    assert!(report.get(CounterId::MsgsConsumed) > 0);
    assert!(report.get(CounterId::FlitsRouted) > 0);
    assert!(report.get(CounterId::VcStalls) > 0, "saturated networks stall");
    assert_eq!(report.events_dropped, 0, "capacity chosen to keep everything");

    let (events, recorded, _) = obs::trace_snapshot().unwrap();
    assert_eq!(recorded, report.events_recorded);

    // Cycle stamps are non-decreasing (events are recorded in simulation
    // order within this single-threaded run).
    for w in events.windows(2) {
        assert!(w[0].cycle() <= w[1].cycle());
    }

    // The first detection precedes the first recovery (true on this
    // pinned config because the NIC detector fires before the token's
    // first router-side timeout capture — router captures in general
    // need no preceding DeadlockDetected event), and every
    // RecoveryEnd pairs with the RecoveryStart of the same episode and
    // message. Trailing unmatched starts (episode still active at the
    // horizon) are allowed; ends without starts are not.
    let first_detect = events
        .iter()
        .position(|e| matches!(e, Event::DeadlockDetected { .. }))
        .expect("deadlocks were detected");
    let first_recovery = events
        .iter()
        .position(|e| matches!(e, Event::RecoveryStart { .. }))
        .expect("recoveries happened");
    assert!(first_detect < first_recovery, "detection precedes recovery");

    let mut starts: HashMap<u64, (u64, u64)> = HashMap::new(); // episode -> (msg, cycle)
    let mut pairs = 0u64;
    for e in &events {
        match *e {
            Event::RecoveryStart { cycle, episode, msg, .. } => {
                let prev = starts.insert(episode, (msg, cycle));
                assert!(prev.is_none(), "episode {episode} started twice");
            }
            Event::RecoveryEnd { cycle, episode, msg, .. } => {
                let (start_msg, start_cycle) = starts
                    .remove(&episode)
                    .unwrap_or_else(|| panic!("episode {episode} ended without starting"));
                assert_eq!(start_msg, msg, "episode {episode} changed its rescued message");
                assert!(start_cycle <= cycle);
                pairs += 1;
            }
            _ => {}
        }
    }
    assert_eq!(pairs, report.get(CounterId::DeadlocksRecovered));
    assert!(
        starts.len() <= 1,
        "at most the final episode may be unfinished: {starts:?}"
    );

    // The trace round-trips through both sink formats.
    let mut jsonl = Vec::new();
    sink::write_trace_jsonl(&mut jsonl, &events).unwrap();
    let parsed = sink::parse_trace_jsonl(std::str::from_utf8(&jsonl).unwrap()).unwrap();
    assert_eq!(parsed, events);
    let mut csv = Vec::new();
    sink::write_trace_csv(&mut csv, &events).unwrap();
    let parsed = sink::parse_trace_csv(std::str::from_utf8(&csv).unwrap()).unwrap();
    assert_eq!(parsed, events);

    // Tear-down returns the layer to its inert state.
    obs::uninstall().expect("was installed");
    assert!(!obs::enabled());
    let r = Simulator::new(deadlocking_config()).unwrap().run();
    assert!(r.obs.is_none());
}
