//! Sharded-execution twins: a run with `shards = N` must reproduce the
//! sequential run bit-for-bit — every `SimResult` field, float fields
//! compared via `f64::to_bits`, at every shard count.
//!
//! Sharding partitions the per-cycle network phase across scoped worker
//! threads; everything that could reorder (cross-shard flit arrivals,
//! credit returns, router wakes, packet-table mutations, endpoint
//! deliveries, schedule rewinds) is buffered and drained in a fixed
//! order at the cycle barrier. These twins are the end-to-end guardrail
//! for that protocol; debug builds additionally shadow-check every
//! sharded network cycle against the phased reference pipeline, so a
//! mid-run divergence panics at the offending cycle rather than
//! surfacing as a result diff here.

use mdd_sim::prelude::*;
use proptest::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

/// Every measured field of a [`SimResult`], floats as raw bits so the
/// comparison is exact (`obs` is `None` here — no layer installed).
fn fingerprint(r: &SimResult) -> [u64; 19] {
    [
        r.applied_load.to_bits(),
        r.throughput.to_bits(),
        r.avg_latency.to_bits(),
        r.latency_quantiles.0.to_bits(),
        r.latency_quantiles.1.to_bits(),
        r.latency_quantiles.2.to_bits(),
        r.messages_delivered,
        r.transactions,
        r.deadlocks,
        r.router_rescues,
        r.deflections,
        r.rescues,
        r.generated,
        r.mc_utilization.to_bits(),
        r.cwg_checks,
        r.cwg_deadlocked_checks,
        r.vc_util_mean.to_bits(),
        r.vc_util_max.to_bits(),
        r.vc_util_cv.to_bits(),
    ]
}

fn run_at(mut cfg: SimConfig, shards: u32) -> SimResult {
    cfg.shards = shards;
    Simulator::new(cfg).expect("feasible configuration").run()
}

/// Run at shards 1, 2 and 4 and demand bit-identical results.
fn assert_shard_twins(cfg: SimConfig, what: &str) {
    let reference = run_at(cfg.clone(), 1);
    for shards in [2u32, 4] {
        let twin = run_at(cfg.clone(), shards);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&twin),
            "{what}: shards=1 vs shards={shards} diverged"
        );
    }
}

/// The three schemes at their feasible paper VC budgets.
fn scheme_case(idx: usize) -> (Scheme, PatternSpec, u8) {
    match idx {
        0 => (SA, PatternSpec::pat100(), 4),
        1 => (Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4),
        _ => (Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 8×8 torus twins across schemes × loads × seeds.
    #[test]
    fn shard_twins_8x8(
        scheme_idx in 0usize..3,
        load in prop_oneof![Just(0.10), Just(0.30), Just(0.60)],
        seed in 0u64..10_000,
    ) {
        let (scheme, pattern, vcs) = scheme_case(scheme_idx);
        let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
        cfg.warmup = 200;
        cfg.measure = 800;
        cfg.service_time = 10;
        cfg.seed = seed;
        assert_shard_twins(cfg, "8x8");
    }

    /// 16×16 twins: shard boundaries now fall inside the torus (the wake
    /// set spans four words), so cross-shard mailbox traffic is dense.
    #[test]
    fn shard_twins_16x16(
        scheme_idx in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let (scheme, pattern, vcs) = scheme_case(scheme_idx);
        let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, 0.25);
        cfg.radix = vec![16, 16];
        cfg.warmup = 100;
        cfg.measure = 500;
        cfg.service_time = 10;
        cfg.seed = seed;
        assert_shard_twins(cfg, "16x16");
    }
}

/// Shard counts that do not divide the topology evenly (empty trailing
/// shards, a mid-word final range) are valid degenerate plans.
#[test]
fn awkward_shard_counts_are_bit_identical() {
    let mut cfg = SimConfig::small_test(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.40);
    cfg.seed = 99;
    let reference = run_at(cfg.clone(), 1);
    // 4×4 torus = 16 routers = a fraction of one wake-set word: every
    // count beyond 1 leaves most shards empty.
    for shards in [2u32, 3, 5, 16, 33] {
        let twin = run_at(cfg.clone(), shards);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&twin),
            "4x4 at shards={shards} diverged"
        );
    }
}

/// 64×64 progressive-recovery episode: a saturating hotspot near the
/// token's starting stop drives both endpoint detections and a
/// router-capture recovery episode on the biggest ladder rung, and the
/// recovery capture schedule (detections, router captures, endpoint
/// rescues) must match the sequential run exactly — episodes run on the
/// coordinating thread between sharded network cycles, so their NIC
/// mutations, lane transfers and wake-alls interleave identically.
#[test]
fn shard_twin_64x64_pr_episode() {
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        4,
        0.85,
    );
    cfg.radix = vec![64, 64];
    // The token tours 8192 stops, so only captures near its origin can
    // happen inside a short window — park the hotspot there.
    cfg.dest = DestPattern::Hotspot {
        node: 8,
        permille: 300,
    };
    cfg.queue_capacity = 4;
    cfg.service_time = 10;
    cfg.warmup = 0;
    cfg.measure = 400;
    cfg.sparse_arrivals = true;
    cfg.seed = 0x64;
    let reference = run_at(cfg.clone(), 1);
    assert!(
        reference.deadlocks > 0,
        "hotspot case must trigger endpoint detections (got a quiet run; retune the config)"
    );
    assert!(
        reference.router_rescues > 0,
        "hotspot case must run a router-capture episode (got a quiet run; retune the config)"
    );
    for shards in [2u32, 4] {
        let twin = run_at(cfg.clone(), shards);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&twin),
            "64x64 PR episode at shards={shards} diverged"
        );
        assert_eq!(
            (reference.deadlocks, reference.rescues, reference.router_rescues),
            (twin.deadlocks, twin.rescues, twin.router_rescues),
            "recovery capture schedule diverged at shards={shards}"
        );
    }
}
