//! Cross-crate property tests: randomized configurations must satisfy the
//! global invariants (liveness, conservation, determinism) regardless of
//! scheme, pattern, topology or load.

use mdd_sim::prelude::*;
use proptest::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(SA),
        Just(Scheme::StrictAvoidance {
            shared_adaptive: true
        }),
        Just(Scheme::DeflectiveRecovery),
        Just(Scheme::ProgressiveRecovery),
    ]
}

fn arb_pattern() -> impl Strategy<Value = usize> {
    0usize..5
}

fn build(
    scheme: Scheme,
    pat_idx: usize,
    vcs: u8,
    load: f64,
    seed: u64,
) -> Option<Simulator> {
    let pattern = PatternSpec::all_paper_patterns().swap_remove(pat_idx);
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    cfg.radix = vec![4, 4];
    cfg.service_time = 10;
    cfg.seed = seed;
    cfg.warmup = 0;
    cfg.measure = 0;
    Simulator::new(cfg).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any feasible configuration, driven at any load for a while, drains
    /// completely when the source stops — no lost messages, no unresolved
    /// deadlock, under any scheme.
    #[test]
    fn liveness_and_conservation(
        scheme in arb_scheme(),
        pat in arb_pattern(),
        vcs in prop_oneof![Just(4u8), Just(8), Just(16)],
        load in 0.05f64..0.7,
        seed in 0u64..1000,
    ) {
        let Some(mut sim) = build(scheme, pat, vcs, load, seed) else {
            return Ok(()); // infeasible combination: nothing to check
        };
        sim.set_measuring(true);
        sim.run_cycles(2_500);
        prop_assert!(sim.drain(600_000), "drain failed");
        let agg = sim.aggregate_stats();
        prop_assert_eq!(
            agg.transactions_completed,
            sim.generated(),
            "transactions lost or duplicated"
        );
    }

    /// Identical configurations are bit-for-bit deterministic.
    #[test]
    fn determinism(
        scheme in arb_scheme(),
        pat in arb_pattern(),
        load in 0.05f64..0.5,
        seed in 0u64..1000,
    ) {
        let run = |_: ()| -> Option<(u64, u64, u64)> {
            let mut sim = build(scheme, pat, 8, load, seed)?;
            sim.set_measuring(true);
            sim.run_cycles(1_500);
            let agg = sim.aggregate_stats();
            Some((
                agg.transactions_completed,
                agg.messages_consumed,
                agg.deadlocks_detected,
            ))
        };
        prop_assert_eq!(run(()), run(()));
    }

    /// Strict avoidance never reports an endpoint deadlock detection that
    /// corresponds to a real knot: the wait-for graph stays knot-free.
    #[test]
    fn sa_knot_free(
        pat in arb_pattern(),
        load in 0.2f64..0.8,
        seed in 0u64..100,
    ) {
        let Some(mut sim) = build(SA, pat, 16, load, seed) else {
            return Ok(());
        };
        for _ in 0..8 {
            sim.run_cycles(400);
            let g = build_waitfor_graph(&sim);
            prop_assert!(!g.has_deadlock(), "knot under strict avoidance");
        }
    }
}
