//! Scale-ladder correctness: the lazily-materialized router state,
//! hierarchical wake sets and sparse arrival machinery must change
//! nothing observable — pinned 16×16 results, fast-vs-dense schedule
//! twins beyond the 4×4/8×8 sizes the older suites cover, and the
//! typed validation that guards the ladder presets.
//!
//! Debug builds run the dense shadow check inside every `Network::step`,
//! so each twin here also proof-checks the lazy chunk lifecycle (a
//! materialization divergence between the fused pass and the dense
//! reference pass panics immediately).

use mdd_sim::prelude::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

/// A 16×16 torus at paper defaults with test-sized windows.
fn cfg16(scheme: Scheme, pattern: PatternSpec, load: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, pattern, 4, load);
    cfg.radix = vec![16, 16];
    cfg.warmup = 300;
    cfg.measure = 1_200;
    cfg.service_time = 10;
    cfg
}

// ---------------------------------------------------------------------
// Ladder presets and typed validation.
// ---------------------------------------------------------------------

/// Every ladder rung builds through the spec-string path (construction
/// is lazy, so even the 64×64 rung is cheap to assemble).
#[test]
fn ladder_presets_build() {
    for rung in SimConfig::scale_ladder() {
        let spec = rung
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("x");
        let cfg = SimConfig::builder()
            .topo(&spec)
            .unwrap_or_else(|e| panic!("{spec}: {e}"))
            .scheme(Scheme::ProgressiveRecovery)
            .pattern(PatternSpec::pat100())
            .load(0.01)
            .build()
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(cfg.radix, rung);
        let sim = Simulator::new(cfg).expect("ladder rung is feasible");
        // Lazy materialization: a freshly built network holds no router
        // chunks at all, whatever its nominal size.
        assert_eq!(sim.network().routers_materialized(), 0);
    }
}

/// The port·VC budget check: the 128-bit occupancy masks bound
/// `(2·dims + bristle) · vcs`, and crossing the bound is a typed error
/// at `build()`, not a panic in the pipeline.
#[test]
fn vc_budget_is_validated_against_mask_width() {
    // 4 dims + bristle 1 = 9 ports; 14 VCs = 126 slots still fits...
    let ok = SimConfig::builder()
        .radix(&[4, 4, 4, 4])
        .scheme(Scheme::ProgressiveRecovery)
        .vcs(14)
        .load(0.1)
        .build();
    assert!(ok.is_ok(), "126 slots must fit the u128 masks: {ok:?}");
    // ...15 VCs = 135 slots does not.
    let err = SimConfig::builder()
        .radix(&[4, 4, 4, 4])
        .scheme(Scheme::ProgressiveRecovery)
        .vcs(15)
        .load(0.1)
        .build()
        .unwrap_err();
    match err {
        ConfigError::VcBudgetTooLarge { ports, vcs, slots } => {
            assert_eq!((ports, vcs, slots), (9, 15, 135));
        }
        other => panic!("expected VcBudgetTooLarge, got {other:?}"),
    }
    // Too many dimensions is its own typed error, from both entry points.
    assert!(matches!(
        SimConfig::builder().radix(&[2; 5]).build().unwrap_err(),
        ConfigError::TooManyDimensions { dims: 5 }
    ));
    assert!(matches!(
        SimConfig::parse_topo("2x2x2x2x2").unwrap_err(),
        ConfigError::TooManyDimensions { dims: 5 }
    ));
    // Malformed specs are rejected at the string.
    for bad in ["", "8x", "x8", "8x0", "1x8", "8x8x", "axb", "8 x 8"] {
        assert!(
            matches!(
                SimConfig::parse_topo(bad),
                Err(ConfigError::InvalidTopology { .. })
            ),
            "spec {bad:?} must be rejected"
        );
    }
}

// ---------------------------------------------------------------------
// 16×16 golden pin.
// ---------------------------------------------------------------------

/// One pinned 16×16 outcome per scheme (floats as `to_bits`, compared
/// exactly). Captured from this tree at the introduction of the lazy
/// router state; any future refactor must reproduce these bit-for-bit.
/// To re-capture after an *intentional* behaviour change, run
/// `GOLDEN_PRINT=1 cargo test --test scale_ladder -- --nocapture`.
struct Golden16 {
    name: &'static str,
    throughput: u64,
    avg_latency: u64,
    messages_delivered: u64,
    transactions: u64,
    deadlocks: u64,
    generated: u64,
    vc_util_mean: u64,
}

fn configs16() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("sa16_pat100_load20", cfg16(SA, PatternSpec::pat100(), 0.20)),
        (
            "dr16_pat271_load20",
            cfg16(Scheme::DeflectiveRecovery, PatternSpec::pat271(), 0.20),
        ),
        (
            "pr16_pat271_load20",
            cfg16(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 0.20),
        ),
    ]
}

const GOLDEN16: &[Golden16] = &[
    Golden16 {
        name: "sa16_pat100_load20",
        throughput: 0x3fc18e9d0369d037,
        avg_latency: 0x405bd3f1e483d4b5,
        messages_delivered: 4210,
        transactions: 1579,
        deadlocks: 0,
        generated: 2630,
        vc_util_mean: 0x3fb12e1cac083121,
    },
    Golden16 {
        name: "dr16_pat271_load20",
        throughput: 0x3fc31fc962fc9630,
        avg_latency: 0x40528e7da4758bb0,
        messages_delivered: 5375,
        transactions: 1387,
        deadlocks: 0,
        generated: 2145,
        vc_util_mean: 0x3fb2e4ccccccccba,
    },
    Golden16 {
        name: "pr16_pat271_load20",
        throughput: 0x3fc9e6d3a06d3a07,
        avg_latency: 0x404cb1c4be6b319a,
        messages_delivered: 6152,
        transactions: 2107,
        deadlocks: 0,
        generated: 2145,
        vc_util_mean: 0x3fb8b17e4b17e4a0,
    },
];

#[test]
fn golden_16x16_results_are_bit_identical() {
    let print_mode = std::env::var("GOLDEN_PRINT").is_ok();
    for (name, cfg) in configs16() {
        let r = Simulator::new(cfg)
            .unwrap_or_else(|e| panic!("{name}: infeasible: {e:?}"))
            .run();
        if print_mode {
            println!(
                "    Golden16 {{\n        name: \"{name}\",\n        \
                 throughput: {:#018x},\n        avg_latency: {:#018x},\n        \
                 messages_delivered: {},\n        transactions: {},\n        \
                 deadlocks: {},\n        generated: {},\n        \
                 vc_util_mean: {:#018x},\n    }},",
                r.throughput.to_bits(),
                r.avg_latency.to_bits(),
                r.messages_delivered,
                r.transactions,
                r.deadlocks,
                r.generated,
                r.vc_util_mean.to_bits(),
            );
            continue;
        }
        let g = GOLDEN16
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("no golden row for {name}"));
        assert_eq!(r.throughput.to_bits(), g.throughput, "{name}.throughput");
        assert_eq!(r.avg_latency.to_bits(), g.avg_latency, "{name}.avg_latency");
        assert_eq!(r.messages_delivered, g.messages_delivered, "{name}.messages");
        assert_eq!(r.transactions, g.transactions, "{name}.transactions");
        assert_eq!(r.deadlocks, g.deadlocks, "{name}.deadlocks");
        assert_eq!(r.generated, g.generated, "{name}.generated");
        assert_eq!(r.vc_util_mean.to_bits(), g.vc_util_mean, "{name}.vc_util_mean");
    }
}

// ---------------------------------------------------------------------
// Fast-vs-dense twins at ladder sizes.
// ---------------------------------------------------------------------

/// Drive one simulator with `run_cycles` (activity scheduling +
/// fast-forward) and a twin with bare `step` calls, and assert the end
/// states are indistinguishable (same contract as `tests/activity.rs`,
/// here at 16×16 where the lazy chunks and hierarchical wake set span
/// multiple summary words).
fn assert_schedules_agree(mut cfg: SimConfig, cycles: u64) {
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut fast = Simulator::new(cfg.clone()).expect("feasible config");
    let mut dense = Simulator::new(cfg).expect("feasible config");
    fast.run_cycles(cycles);
    for _ in 0..cycles {
        dense.step();
    }
    assert_eq!(fast.cycle(), dense.cycle(), "clocks diverged");
    let (f, d) = (fast.network().counters(), dense.network().counters());
    assert_eq!(f.flits_moved, d.flits_moved);
    assert_eq!(f.flits_delivered, d.flits_delivered);
    assert_eq!(f.packets_delivered, d.packets_delivered);
    assert_eq!(f.flits_injected, d.flits_injected);
    assert_eq!(
        fast.network().routers_materialized(),
        dense.network().routers_materialized(),
        "lazy materialization diverged between schedules"
    );
    let (fs, ds) = (fast.aggregate_stats(), dense.aggregate_stats());
    assert_eq!(fs.messages_consumed, ds.messages_consumed);
    assert_eq!(fs.transactions_completed, ds.transactions_completed);
    assert_eq!(
        fs.msg_latency.mean().to_bits(),
        ds.msg_latency.mean().to_bits(),
        "latency accumulators diverged"
    );
}

/// All three schemes agree fast-vs-dense at 16×16.
#[test]
fn twin_schedules_agree_at_16x16() {
    let mut cfg = cfg16(SA, PatternSpec::pat100(), 0.10);
    cfg.seed = 161;
    assert_schedules_agree(cfg, 800);
    let mut cfg = cfg16(Scheme::DeflectiveRecovery, PatternSpec::pat271(), 0.10);
    cfg.seed = 162;
    assert_schedules_agree(cfg, 800);
    let mut cfg = cfg16(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 0.10);
    cfg.seed = 163;
    assert_schedules_agree(cfg, 800);
}

/// The sparse geometric arrival mode is reproducible and schedule-
/// independent too: with `sparse_arrivals` set, the fast and dense
/// clocks still agree bit-for-bit (the ladder benches run exactly this
/// mode), and the generated-count matches the Bernoulli expectation.
#[test]
fn sparse_arrivals_twin_agrees_and_hits_rate() {
    let mut cfg = cfg16(Scheme::ProgressiveRecovery, PatternSpec::pat100(), 0.10);
    cfg.seed = 164;
    cfg.sparse_arrivals = true;
    cfg.dest = DestPattern::Neighbor;
    assert_schedules_agree(cfg.clone(), 800);
    // Rate sanity: over a long window the realized arrival count should
    // sit near cycles·nodes·rate (loose 3-sigma-ish bounds; the point is
    // the geometric resampling isn't off by a constant factor).
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg.clone()).expect("feasible config");
    sim.run_cycles(2_000);
    let expect = 2_000.0 * 256.0 * (0.10 / cfg.pattern.flits_per_txn());
    let got = sim.generated() as f64;
    assert!(
        (got - expect).abs() < 4.0 * expect.sqrt() + 10.0,
        "sparse arrivals off-rate: got {got}, expected about {expect:.0}"
    );
}

/// 64×64 smoke: the biggest rung constructs lazily, runs, and only
/// materializes the routers traffic actually touched.
#[test]
fn lazy_materialization_stays_sparse_at_64x64() {
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat100(),
        4,
        0.002,
    );
    cfg.radix = vec![64, 64];
    cfg.dest = DestPattern::Neighbor;
    cfg.sparse_arrivals = true;
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).expect("feasible config");
    sim.run_cycles(200);
    let mat = sim.network().routers_materialized();
    assert!(mat > 0, "some routers must have materialized under traffic");
    assert!(
        mat < 4_096 / 2,
        "200 near-idle cycles must not densify the torus ({mat}/4096 materialized)"
    );
    assert!(
        sim.network().router_state_bytes() > 0,
        "state-bytes gauge tracks materialization"
    );
}
