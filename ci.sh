#!/usr/bin/env bash
# Local CI gate: build, test (incl. doctests), docs with warnings denied,
# and clippy when the component is installed. Mirrors what changes are
# held to — run it before sending a PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets"
    cargo clippy --workspace --all-targets -q -- -D warnings
else
    echo "==> cargo clippy not installed; skipping"
fi

echo "==> ci.sh: all green"
