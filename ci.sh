#!/usr/bin/env bash
# Local CI gate: build, test (incl. doctests), docs with warnings denied,
# and clippy when the component is installed. Mirrors what changes are
# held to — run it before sending a PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test --workspace --doc (doctests as a named gate)"
cargo test --workspace --doc -q

echo "==> engine cache smoke (re-run must be served from cache)"
CACHE_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR"' EXIT
engine_sweep() {
    cargo run -q -p mdd-bench --release --bin mddsim -- \
        --scheme pr --pattern pat271 --vcs 4 --radix 4x4 \
        --sweep 0.05:0.15:3 --warmup 100 --measure 300 \
        --cache-dir "$CACHE_DIR"
}
first=$(engine_sweep)
echo "$first" | grep -q "3 points: 3 simulated" || {
    echo "engine smoke: cold run did not simulate 3 points:"; echo "$first"; exit 1; }
second=$(engine_sweep)
echo "$second" | grep -q "3 points: 0 simulated, 3 cached" || {
    echo "engine smoke: warm run was not fully cache-served:"; echo "$second"; exit 1; }

echo "==> --jobs equivalence (reports bit-identical across worker counts)"
jobs_sweep() { # n
    cargo run -q -p mdd-bench --release --bin mddsim -- \
        --scheme pr --pattern pat271 --vcs 4 --radix 4x4 \
        --sweep 0.05:0.15:3 --warmup 100 --measure 300 \
        --no-cache --jobs "$1" 2>/dev/null
}
jobs1=$(jobs_sweep 1)
jobs4=$(jobs_sweep 4)
[ "$jobs1" = "$jobs4" ] || {
    echo "jobs equivalence: --jobs 1 and --jobs 4 disagree:"
    diff <(echo "$jobs1") <(echo "$jobs4") || true; exit 1; }
# --jobs 0 must be rejected at the flag, not deep in the pool.
set +e
cargo run -q -p mdd-bench --release --bin mddsim -- \
    --scheme pr --pattern pat271 --vcs 4 --radix 4x4 \
    --sweep 0.05:0.15:3 --warmup 100 --measure 300 --jobs 0 >/dev/null 2>&1
jobs0_status=$?
set -e
[ "$jobs0_status" -eq 2 ] || {
    echo "jobs equivalence: --jobs 0 should exit 2, got $jobs0_status"; exit 1; }

echo "==> --shards equivalence (one run bit-identical across shard counts)"
# Unlike --jobs (which farms out whole points), --shards parallelizes
# inside a single run — and the cache key deliberately ignores it, so
# the comparison MUST bypass the cache or the second run would be served
# from the first's entries and the check would be vacuous.
# 16x16 (four wake-set words), so shard boundaries fall inside the torus
# and cross-shard mailbox traffic is actually exercised.
shards_sweep() { # n
    cargo run -q -p mdd-bench --release --bin mddsim -- \
        --scheme pr --pattern pat271 --vcs 4 --radix 16x16 \
        --sweep 0.10:0.30:3 --warmup 100 --measure 300 \
        --no-cache --shards "$1" 2>/dev/null
}
shards1=$(shards_sweep 1)
shards4=$(shards_sweep 4)
[ "$shards1" = "$shards4" ] || {
    echo "shards equivalence: --shards 1 and --shards 4 disagree:"
    diff <(echo "$shards1") <(echo "$shards4") || true; exit 1; }
# --shards 0 must be rejected at the flag, like --jobs 0.
set +e
cargo run -q -p mdd-bench --release --bin mddsim -- \
    --scheme pr --pattern pat271 --vcs 4 --radix 16x16 \
    --sweep 0.10:0.30:3 --warmup 100 --measure 300 --shards 0 >/dev/null 2>&1
shards0_status=$?
set -e
[ "$shards0_status" -eq 2 ] || {
    echo "shards equivalence: --shards 0 should exit 2, got $shards0_status"; exit 1; }

echo "==> pool scaling perf gate (self-skips below 4 cores)"
cargo test -q -p mdd-engine --release --test perf -- --ignored

echo "==> shard scaling perf gate (self-skips below 4 cores)"
cargo test -q -p mdd-sim --release --test shard_perf -- --ignored

echo "==> mddsimd sweep service smoke"
DAEMON_DIR=$(mktemp -d)
DAEMON_SOCK="$DAEMON_DIR/mddsimd.sock"
daemon_submit() {
    cargo run -q -p mdd-bench --release --bin mddsim-client -- \
        --socket "$DAEMON_SOCK" submit --sweep 0.05:0.30:6 \
        --scheme pr --pattern pat271 --vcs 4 --radix 4x4 \
        --warmup 100 --measure 300 2>/dev/null
}
cargo run -q -p mdd-bench --release --bin mddsimd -- \
    --socket "$DAEMON_SOCK" --cache-dir "$DAEMON_DIR/cache" --jobs 2 \
    2>"$DAEMON_DIR/daemon.log" &
DAEMON_PID=$!
trap 'rm -rf "$CACHE_DIR" "$DAEMON_DIR"; kill "$DAEMON_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do [ -S "$DAEMON_SOCK" ] && break; sleep 0.1; done
[ -S "$DAEMON_SOCK" ] || {
    echo "daemon smoke: socket never appeared"; cat "$DAEMON_DIR/daemon.log"; exit 1; }
# Two concurrent clients: both must stream all six points back.
daemon_submit >"$DAEMON_DIR/c1.out" &
C1=$!
daemon_submit >"$DAEMON_DIR/c2.out" &
C2=$!
wait "$C1" "$C2"
for out in c1 c2; do
    grep -q "^6 points:" "$DAEMON_DIR/$out.out" || {
        echo "daemon smoke: client $out did not finish its sweep:"
        cat "$DAEMON_DIR/$out.out"; exit 1; }
    [ "$(grep -c '^point ' "$DAEMON_DIR/$out.out")" -eq 6 ] || {
        echo "daemon smoke: client $out did not stream 6 points:"
        cat "$DAEMON_DIR/$out.out"; exit 1; }
done
# A third identical submission must be served entirely from the cache.
third=$(daemon_submit)
echo "$third" | grep -q "6 points: 0 simulated, 6 cached" || {
    echo "daemon smoke: repeat submit was not fully cache-served:"; echo "$third"; exit 1; }
cargo run -q -p mdd-bench --release --bin mddsim-client -- \
    --socket "$DAEMON_SOCK" shutdown >/dev/null
wait "$DAEMON_PID" || {
    echo "daemon smoke: daemon did not exit cleanly:"; cat "$DAEMON_DIR/daemon.log"; exit 1; }
[ ! -e "$DAEMON_SOCK" ] || {
    echo "daemon smoke: socket not removed on shutdown"; exit 1; }
trap 'rm -rf "$CACHE_DIR" "$DAEMON_DIR"' EXIT

echo "==> static verifier smoke (mddsim --verify)"
verify_one() { # scheme vcs expected_verdict
    local out
    out=$(cargo run -q -p mdd-bench --release --bin mddsim -- \
        --verify --scheme "$1" --pattern pat271 --vcs "$2" --radix 8x8) || true
    echo "$out" | grep -q "verdict: $3" || {
        echo "verify smoke: $1 vcs=$2 expected $3, got:"; echo "$out"; exit 1; }
}
verify_one sa 8 ProvenFree
verify_one dr 8 RecoverableCycles
verify_one pr 4 RecoverableCycles
# One VC short of SA's budget must be rejected outright (exit status 3).
set +e
unsafe_out=$(cargo run -q -p mdd-bench --release --bin mddsim -- \
    --verify --scheme sa --pattern pat271 --vcs 7 --radix 8x8)
unsafe_status=$?
set -e
[ "$unsafe_status" -eq 3 ] || {
    echo "verify smoke: crippled SA should exit 3, got $unsafe_status"; exit 1; }
echo "$unsafe_out" | grep -q "verdict: Unsafe" || {
    echo "verify smoke: crippled SA should be Unsafe, got:"; echo "$unsafe_out"; exit 1; }

echo "==> golden verdicts (mdd-analyze --verdicts is bit-for-bit reproducible)"
GOLDEN_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR" "$DAEMON_DIR" "$GOLDEN_DIR"' EXIT
./target/release/mdd-analyze --verdicts --out "$GOLDEN_DIR" >/dev/null
diff -u results/verdicts.json "$GOLDEN_DIR/verdicts.json" || {
    echo "golden verdicts: results/verdicts.json drifted from the analyzer;"
    echo "rerun ./target/release/mdd-analyze --verdicts --out results and commit"
    exit 1; }

echo "==> fault-frontier smoke (full 16x16 single-link sweep, engine pool)"
frontier_out=$(./target/release/mdd-analyze --frontier --topo 16x16 --out "$GOLDEN_DIR")
echo "$frontier_out" | grep '^frontier: ' | sed 's/^/    /'
# SA is the crippled-by-fault case: fault-free it is ProvenFree at 8 VCs,
# and at least one single-link fault must degrade that verdict.
echo "$frontier_out" | grep "^frontier: sa " | grep -Eq "[1-9][0-9]* degrading" || {
    echo "frontier smoke: no verdict-degrading fault on the SA line"; exit 1; }
# Every 512-fault scheme sweep must stay interactive: <10s per scheme.
slow=$(echo "$frontier_out" | grep '^frontier: ' |
    sed -E 's/.*\(([0-9.]+)s\)$/\1/' | awk '$1 >= 10.0')
[ -z "$slow" ] || {
    echo "frontier smoke: a scheme sweep blew the 10s budget: ${slow}s"; exit 1; }

echo "==> scaling smoke (orbit-quotiented verifier at 64x64, ladder sweep point)"
# The orbit quotient must classify a 4096-router torus interactively:
# three verdicts in <1s each. The release binary is invoked directly
# (already built above) so process spawn doesn't pollute the budget.
verify_big() { # scheme vcs expected_verdict
    local out t0 t1
    t0=$(date +%s%N)
    out=$(./target/release/mddsim \
        --verify --scheme "$1" --pattern pat271 --vcs "$2" --topo 64x64) || true
    t1=$(date +%s%N)
    echo "$out" | grep -q "verdict: $3" || {
        echo "scaling smoke: $1 vcs=$2 at 64x64 expected $3, got:"; echo "$out"; exit 1; }
    local ms=$(( (t1 - t0) / 1000000 ))
    [ "$ms" -lt 1000 ] || {
        echo "scaling smoke: 64x64 $1 verdict took ${ms}ms (budget 1000ms)"; exit 1; }
    echo "    64x64 $1 vcs=$2: $3 in ${ms}ms"
}
verify_big sa 8 ProvenFree
verify_big dr 8 RecoverableCycles
verify_big pr 4 RecoverableCycles
# One short 64x64 simulation point through the --topo preset path.
scale_out=$(./target/release/mddsim \
    --scheme pr --pattern pat100 --vcs 4 --topo 64x64 \
    --load 0.005 --warmup 100 --measure 200 --no-cache)
echo "$scale_out" | grep -q "throughput" || {
    echo "scaling smoke: 64x64 sweep point produced no result:"
    echo "$scale_out"; exit 1; }

echo "==> hot-path bench smoke (load ladder + activity-scheduler counters)"
# Written to target/ so the committed BENCH_hotpath.json (full-length
# numbers) is never clobbered by quick-mode smoke results.
smoke_json="$PWD/target/hotpath_smoke.json"
rm -f "$smoke_json"
HOTPATH_QUICK=1 HOTPATH_OUT="$smoke_json" \
    cargo bench -q -p mdd-bench --bench hotpath
[ -s "$smoke_json" ] || {
    echo "hotpath smoke: $smoke_json was not written"; exit 1; }
grep -q '"pr"' "$smoke_json" || {
    echo "hotpath smoke: output is missing the pr scheme:"
    cat "$smoke_json"; exit 1; }
for load in 0.05 0.30 0.55; do
    grep -q "\"load\": $load" "$smoke_json" || {
        echo "hotpath smoke: output is missing ladder rung $load:"
        cat "$smoke_json"; exit 1; }
done
# The size ladder must have produced every rung (the bench itself asserts
# sub-linear per-cycle cost growth, so rungs present ⇒ the gate passed).
for topo in 8x8 16x16 64x64 8x8x8; do
    grep -q "\"topo\": \"$topo\"" "$smoke_json" || {
        echo "hotpath smoke: output is missing size-ladder rung $topo:"
        cat "$smoke_json"; exit 1; }
done
# The shards block must time the 64x64 saturated rung at every count.
for shards in 1 2 4; do
    grep -q "\"shards\": $shards" "$smoke_json" || {
        echo "hotpath smoke: output is missing shards=$shards rung:"
        cat "$smoke_json"; exit 1; }
done
# At low load the activity scheduler must actually be skipping work.
if grep "\"load\": 0.05" "$smoke_json" | grep -Eq '"router_ticks_skipped": 0[,}]'; then
    echo "hotpath smoke: a low-load run skipped no router ticks:"
    cat "$smoke_json"; exit 1
fi
if grep "\"load\": 0.05" "$smoke_json" | grep -Eq '"nic_ticks_skipped": 0[,}]'; then
    echo "hotpath smoke: a low-load run skipped no NIC ticks:"
    cat "$smoke_json"; exit 1
fi

echo "==> hot-path throughput floors at load 0.30"
# Quick-mode cycles/sec measured at the PR5 commit on the CI machine:
# sa=47166, pr=39262. The floors pin those baselines (rounded down) so a
# hot-path regression that undoes the saturated-regime rework fails CI
# here instead of surfacing as a silent slowdown in the next paper sweep.
# Quick mode is best-of-3, which absorbs ordinary scheduler noise; a
# machine busy enough to land a *faster* build below its predecessor's
# floor is mismeasuring everything else in this script too.
floor_check() { # scheme floor
    # Exclude "topo"-keyed entries: the size-ladder and shards blocks
    # also run at their own loads and must not leak into the 8x8 floor.
    local cps
    cps=$(grep "\"scheme\": \"$1\"" "$smoke_json" | grep -v '"topo"' |
        grep '"load": 0.30' |
        sed -E 's/.*"cycles_per_sec": ([0-9.]+).*/\1/')
    [ -n "$cps" ] || {
        echo "hotpath floor: no $1@0.30 entry in $smoke_json"; exit 1; }
    awk -v c="$cps" -v f="$2" 'BEGIN { exit !(c >= f) }' || {
        echo "hotpath floor: $1@0.30 ran at $cps cycles/sec, floor is $2"
        exit 1; }
    echo "    $1@0.30: $cps cycles/sec (floor $2)"
}
floor_check sa 47000
floor_check pr 39000

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets"
    cargo clippy --workspace --all-targets -q -- -D warnings
else
    echo "==> cargo clippy not installed; skipping"
fi

echo "==> ci.sh: all green"
