//! The paper's trace-driven methodology end to end: record an
//! application's access trace (with timing, preserving burstiness), save
//! it to disk in the text format, reload it, and drive the network
//! simulator by replaying it through the MSI directory engine.
//!
//! Run with: `cargo run --release --example trace_replay`

use mdd_sim::coherence::TraceReplayTraffic;
use mdd_sim::prelude::*;
use mdd_sim::traffic::TraceLog;

fn main() {
    let horizon = 30_000u64;
    let app = AppModel::radix();
    println!("recording {} for {horizon} cycles on 16 processors...", app.name);
    let log = mdd_sim::coherence::record_app_trace(&app, 16, horizon, 7);
    println!("  {} accesses recorded", log.len());

    // Round-trip through the on-disk format.
    let mut buf = Vec::new();
    log.save(&mut buf).expect("serialize trace");
    println!("  trace serializes to {} bytes", buf.len());
    let loaded = TraceLog::load(std::io::BufReader::new(&buf[..])).expect("parse trace");
    assert_eq!(loaded.events(), log.events());

    // Replay through the full simulator.
    let replay = TraceReplayTraffic::new(loaded, 16, 7);
    let cfg = SimConfig::builder()
        .scheme(Scheme::ProgressiveRecovery)
        .pattern(CoherenceEngine::msi_pattern())
        .vcs(4)
        .radix(&[4, 4])
        .windows(0, horizon)
        .build()
        .expect("configurable");
    let mut sim = Simulator::with_traffic(cfg, Box::new(replay)).expect("configurable");
    sim.set_measuring(true);
    sim.run_cycles(horizon);
    let agg = sim.aggregate_stats();
    println!(
        "\nreplay: {} transactions, {} messages, mean latency {:.1} cycles, \
         {} deadlocks",
        agg.transactions_completed,
        agg.messages_consumed,
        agg.msg_latency.mean(),
        agg.deadlocks_detected
    );
    let drained = sim.drain(500_000);
    println!("drained: {drained}");
    assert!(drained);
    assert_eq!(
        agg.deadlocks_detected, 0,
        "application loads never deadlock (Section 4.2.2)"
    );
    println!("\nSame trace + same seed would reproduce this run bit-for-bit.");
}
