//! Burton-Normal-Form comparison of the three schemes with scarce virtual
//! channels (the Figure 8 setting): sweep applied load, print each
//! scheme's latency/throughput curve, and report saturation throughput.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use mdd_sim::prelude::*;

fn main() {
    let pattern = PatternSpec::pat721();
    let vcs = 4;
    let loads = default_loads(0.05, 0.40, 8);
    println!(
        "8x8 torus | {vcs} VCs | {} | loads {:.2}..{:.2}\n",
        pattern.name(),
        loads.first().unwrap(),
        loads.last().unwrap()
    );

    let mut curves: Vec<BnfCurve> = Vec::new();
    for scheme in [
        Scheme::StrictAvoidance {
            shared_adaptive: false,
        },
        Scheme::DeflectiveRecovery,
        Scheme::ProgressiveRecovery,
    ] {
        // The builder runs the scheme feasibility probe up front, so an
        // impossible combination surfaces here, not mid-sweep.
        match SimConfig::builder()
            .scheme(scheme)
            .pattern(pattern.clone())
            .vcs(vcs)
            .windows(4_000, 10_000)
            .build()
        {
            Ok(cfg) => {
                let (curve, _) = run_curve_checked(&cfg, &loads, scheme.label());
                curves.push(curve);
            }
            Err(e) => println!(
                "{}: not configurable at {vcs} VCs ({e}) — exactly as the \
                 paper omits it from Figure 8\n",
                scheme.label()
            ),
        }
    }

    let mut table = Table::new(vec!["load", "scheme", "throughput", "latency"]);
    for curve in &curves {
        for p in &curve.points {
            table.row(vec![
                format!("{:.2}", p.applied_load),
                curve.label.clone(),
                format!("{:.4}", p.throughput),
                format!("{:.1}", p.latency),
            ]);
        }
    }
    print!("{}", table.render());

    println!("\nSaturation throughput (peak delivered):");
    for curve in &curves {
        println!("  {:>3}: {:.4}", curve.label, curve.saturation_throughput());
    }
    if let (Some(pr), Some(dr)) = (
        curves.iter().find(|c| c.label == "PR"),
        curves.iter().find(|c| c.label == "DR"),
    ) {
        println!(
            "\nPR/DR saturation ratio: {:.2}x (the paper reports up to 2x \
             for PAT721 at 4 VCs)",
            pr.saturation_throughput() / dr.saturation_throughput()
        );
    }
}
