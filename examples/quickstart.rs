//! Quickstart: build the paper's default system (8x8 torus, Table 2
//! parameters), run one simulation per scheme at a moderate load, and
//! print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use mdd_sim::prelude::*;

fn main() {
    let load = 0.20; // flits/node/cycle of applied traffic
    let vcs = 8;
    println!(
        "8x8 torus | {vcs} VCs | PAT271 | applied load {load} flits/node/cycle\n"
    );

    let mut table = Table::new(vec![
        "scheme",
        "throughput",
        "avg latency",
        "txns",
        "deadlocks",
        "deflections",
        "rescues",
    ]);

    for scheme in [
        Scheme::StrictAvoidance {
            shared_adaptive: false,
        },
        Scheme::DeflectiveRecovery,
        Scheme::ProgressiveRecovery,
    ] {
        let cfg = SimConfig::builder()
            .scheme(scheme)
            .pattern(PatternSpec::pat271())
            .vcs(vcs)
            .load(load)
            .windows(5_000, 15_000)
            .build()
            .expect("feasible configuration");
        let mut sim = Simulator::new(cfg).expect("builder already validated");
        let r = sim.run();
        table.row(vec![
            scheme.label().to_string(),
            format!("{:.4}", r.throughput),
            format!("{:.1}", r.avg_latency),
            r.transactions.to_string(),
            r.deadlocks.to_string(),
            r.deflections.to_string(),
            r.rescues.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nThroughput is delivered flits/node/cycle over the measurement \
         window;\nlatency includes queue waiting time (Section 4.3.1)."
    );
}
