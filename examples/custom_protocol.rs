//! Define a custom communication protocol and transaction pattern, then
//! compare how the schemes cope with it.
//!
//! The protocol here is a three-type read-modify-write chain
//! `REQ ≺ UPD ≺ ACK` (a request forwarded to an updater, acknowledged
//! directly to the requester) with an unusually long update payload —
//! the kind of protocol a designer might want to evaluate before
//! committing to a number of virtual channels.
//!
//! Run with: `cargo run --release --example custom_protocol`

use mdd_sim::prelude::*;
use mdd_sim::protocol::{MsgTypeSpec, PatternSpec as Pat, ProtocolSpec as Proto};

fn custom_pattern() -> Pat {
    let proto = Proto::new(
        "RMW",
        vec![
            MsgTypeSpec::request("REQ"),
            MsgTypeSpec::request("UPD").with_length(12),
            MsgTypeSpec::reply("ACK").terminating().with_length(8),
        ],
        &[
            (0, 1), // REQ ≺ UPD
            (0, 2), // REQ ≺ ACK (fast path)
            (1, 2), // UPD ≺ ACK
        ],
        None,
    );
    let (req, upd, ack) = (MsgType(0), MsgType(1), MsgType(2));
    Pat::new(
        "RMW-mix",
        proto,
        vec![
            // 40% fast path: home acknowledges directly.
            (
                0.4,
                TransactionShape::new(
                    vec![req, ack],
                    vec![HopTarget::Home, HopTarget::Requester],
                ),
            ),
            // 60% forwarded update, acknowledged by the updater.
            (
                0.6,
                TransactionShape::new(
                    vec![req, upd, ack],
                    vec![HopTarget::Home, HopTarget::Owner, HopTarget::Requester],
                ),
            ),
        ],
    )
}

fn main() {
    let pattern = custom_pattern();
    println!(
        "custom protocol {} | chain length {} | avg {:.2} messages/txn\n",
        pattern.protocol().name(),
        pattern.protocol().chain_length(),
        pattern.avg_messages_per_txn()
    );

    let dist = pattern.type_distribution();
    for (i, frac) in dist.iter().enumerate() {
        let t = MsgType(i as u8);
        let spec = pattern.protocol().spec(t);
        println!(
            "  {:>4}: {:>5.1}% of messages, {:>2} flits, {:?}",
            spec.name,
            frac * 100.0,
            spec.length_flits,
            spec.kind
        );
    }

    // SA needs chain_length x 2 = 6 VCs; run everything at 8.
    let vcs = 8;
    let mut table = Table::new(vec!["scheme", "load", "throughput", "latency"]);
    for scheme in [
        Scheme::StrictAvoidance {
            shared_adaptive: false,
        },
        Scheme::StrictAvoidance {
            shared_adaptive: true,
        },
        Scheme::DeflectiveRecovery,
        Scheme::ProgressiveRecovery,
    ] {
        for load in [0.10, 0.25] {
            let cfg = SimConfig::builder()
                .scheme(scheme)
                .pattern(pattern.clone())
                .vcs(vcs)
                .load(load)
                .windows(3_000, 8_000)
                .build()
                .expect("8 VCs suffice");
            let r = Simulator::new(cfg).expect("builder already validated").run();
            table.row(vec![
                scheme.label().to_string(),
                format!("{load:.2}"),
                format!("{:.4}", r.throughput),
                format!("{:.1}", r.avg_latency),
            ]);
        }
    }
    println!();
    print!("{}", table.render());
}
