//! Anatomy of a message-dependent deadlock: overdrive a tiny 2x2 torus
//! running PR (fully shared resources), watch the endpoint detectors fire,
//! the token get captured, and the Extended Disha Sequential rescue
//! resolve the situation — then confirm the system drains completely.
//!
//! Run with: `cargo run --release --example deadlock_anatomy`

use mdd_sim::prelude::*;

fn main() {
    let cfg = SimConfig::builder()
        .scheme(Scheme::ProgressiveRecovery)
        .pattern(PatternSpec::pat271())
        .vcs(2) // deliberately scarce
        .load(1.5)
        .radix(&[2, 2])
        .queue_capacity(4) // tiny queues make coupling immediate
        .service_time(20)
        .windows(0, 0)
        .build()
        .expect("PR is always configurable");

    let mut sim = Simulator::new(cfg).expect("builder already validated");
    sim.set_measuring(true);
    println!("2x2 torus, 2 VCs, 4-message queues, PAT271 at 1.5 flits/node/cycle\n");

    let mut last = Snapshot::default();
    for k in 1..=12 {
        sim.run_cycles(250);
        let agg = sim.aggregate_stats();
        let rec = sim.recovery().expect("PR scheme");
        let (laps, captures) = rec.token_stats();
        let snap = Snapshot {
            detections: agg.deadlocks_detected,
            rescues: agg.rescues,
            captures,
            episodes: rec.episodes_completed,
            lane: rec.lane_transfers(),
        };
        println!(
            "cycle {:>5}: detections {:>3} (+{}), token captures {:>3} (+{}), \
             rescues {:>3}, lane transfers {:>3}, episodes done {:>3}, laps {laps}",
            k * 250,
            snap.detections,
            snap.detections - last.detections,
            snap.captures,
            snap.captures - last.captures,
            snap.rescues,
            snap.lane,
            snap.episodes,
        );
        last = snap;
    }

    // Ground truth: inspect the wait-for graph right now. When a knot is
    // present, print the same formatted cycle trace the static verifier
    // (`mddsim --verify`) produces for unsafe configurations.
    let g = build_waitfor_graph(&sim);
    println!(
        "\nwait-for graph: {} vertices, {} edges, knots present: {}",
        g.len(),
        g.num_edges(),
        g.has_deadlock()
    );
    if let Some(witness) = deadlock_witness(&sim) {
        println!("deadlocked cycle:\n{witness}");
    }

    // Show the most recent rescue episodes in detail.
    let log = sim.recovery().unwrap().episode_log();
    if !log.is_empty() {
        println!("\nlast rescue episodes:");
        for e in log.iter().rev().take(5) {
            println!(
                "  {:?}: cycles {}..{} ({} cycles), {} message(s) moved, \
                 sender chain depth {}",
                e.origin,
                e.started_at,
                e.ended_at,
                e.duration(),
                e.messages_moved,
                e.max_depth
            );
        }
    }

    println!("\nStopping the source and draining through recovery...");
    let drained = sim.drain(2_000_000);
    let agg = sim.aggregate_stats();
    println!(
        "drained: {drained} | transactions completed: {} of {} generated",
        agg.transactions_completed,
        sim.generated(),
    );
    assert!(drained, "progressive recovery must resolve every deadlock");
    assert_eq!(agg.transactions_completed, sim.generated());
    println!("No transaction was lost: progressive recovery rescued every chain.");
}

#[derive(Default)]
struct Snapshot {
    detections: u64,
    rescues: u64,
    captures: u64,
    episodes: u64,
    lane: u64,
}
