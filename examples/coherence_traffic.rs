//! Trace-driven-style characterization (Section 4.2): drive the 4x4 torus
//! with the four modelled Splash-2 applications through the full-map MSI
//! directory engine, and reproduce the Table 1 response-type mix and the
//! Figure 6 load observations.
//!
//! Run with: `cargo run --release --example coherence_traffic`

use mdd_sim::prelude::*;

fn main() {
    let horizon = 60_000u64;
    println!("4x4 torus | 16 processors | MSI full-map directory | 4 VCs\n");

    let mut table = Table::new(vec![
        "app",
        "direct",
        "inval",
        "fwd",
        "avg load",
        "<5% of time",
        "deadlocks",
    ]);

    for app in AppModel::all() {
        let name = app.name;
        let traffic = CoherentTraffic::new(app, 16, horizon, 42);
        // Applied load stays 0: traffic comes from the application
        // model, not the synthetic open-loop knob.
        let cfg = SimConfig::builder()
            .scheme(Scheme::ProgressiveRecovery)
            .pattern(CoherenceEngine::msi_pattern())
            .vcs(4)
            .radix(&[4, 4])
            .windows(0, horizon)
            .build()
            .expect("feasible configuration");
        let mut sim =
            Simulator::with_traffic(cfg, Box::new(traffic)).expect("feasible configuration");
        sim.set_measuring(true);
        sim.run_cycles(horizon);
        let agg = sim.aggregate_stats();

        // The traffic source is owned by the simulator; recompute the
        // characterization from a fresh engine run with identical seed.
        let mut probe = CoherentTraffic::new(
            AppModel::all().into_iter().find(|a| a.name == name).unwrap(),
            16,
            horizon,
            42,
        );
        let mut ids = IdAlloc::new();
        let mut store = mdd_sim::protocol::MessageStore::new();
        for c in 0..horizon {
            mdd_sim::traffic::TrafficSource::tick(&mut probe, c, &mut ids, &mut store);
        }
        let (direct, inval, fwd) = probe.engine().table1_row();
        let mut hist = Histogram::new(0.0, 0.5, 50);
        for &s in &probe.load_samples {
            hist.add(s);
        }
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", direct * 100.0),
            format!("{:.1}%", inval * 100.0),
            format!("{:.1}%", fwd * 100.0),
            format!("{:.1}%", probe.mean_load() * 100.0),
            format!("{:.0}%", hist.fraction_below(0.05) * 100.0),
            agg.deadlocks_detected.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nPaper (Table 1): FFT 98.7/0.9/0.4, LU 96.5/3.0/0.5, \
         Radix 95.5/3.6/0.8, Water 15.2/50.1/34.7."
    );
    println!(
        "Paper (Section 4.2.2): no application experienced a \
         message-dependent deadlock."
    );
}
