//! Snapshot sinks: JSON/JSONL and CSV writers (plus parsers for the same
//! formats, used by round-trip tests and offline tooling).
//!
//! The CSV shapes match the repo's `results/` convention (a header row of
//! snake_case column names, one record per line, no quoting — every field
//! is numeric or a fixed identifier).

use crate::counters::CounterSnapshot;
use crate::event::Event;
use std::io::{self, Write};

// ---------------------------------------------------------------------
// Counter snapshots.
// ---------------------------------------------------------------------

/// Write a snapshot as one flat JSON object, keys in registry order:
/// `{"flits_routed":12,"vc_allocs":34,...}`.
pub fn write_counters_json<W: Write>(w: &mut W, snap: &CounterSnapshot) -> io::Result<()> {
    w.write_all(b"{")?;
    for (i, e) in snap.entries.iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        write!(w, "\"{}\":{}", e.name(), e.value)?;
    }
    w.write_all(b"}\n")
}

/// Write a snapshot as CSV with a `counter,value` header.
pub fn write_counters_csv<W: Write>(w: &mut W, snap: &CounterSnapshot) -> io::Result<()> {
    writeln!(w, "counter,value")?;
    for e in &snap.entries {
        writeln!(w, "{},{}", e.name(), e.value)?;
    }
    Ok(())
}

/// Parse the CSV produced by [`write_counters_csv`] back into
/// `(name, value)` pairs.
pub fn parse_counters_csv(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("counter,value") => {}
        other => return Err(format!("bad counters header: {other:?}")),
    }
    lines
        .filter(|l| !l.is_empty())
        .map(|l| {
            let (name, value) = l
                .split_once(',')
                .ok_or_else(|| format!("bad counters row: {l:?}"))?;
            let value = value.parse().map_err(|e| format!("bad value in {l:?}: {e}"))?;
            Ok((name.to_string(), value))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Event traces.
// ---------------------------------------------------------------------

/// Write events as JSON Lines: one object per event, e.g.
/// `{"type":"recovery_start","cycle":812,"episode":1,"msg":4711,"at":9,"at_nic":true}`.
pub fn write_trace_jsonl<W: Write>(w: &mut W, events: &[Event]) -> io::Result<()> {
    for ev in events {
        match *ev {
            Event::Inject { cycle, nic, msg, mtype } => writeln!(
                w,
                "{{\"type\":\"inject\",\"cycle\":{cycle},\"nic\":{nic},\"msg\":{msg},\"mtype\":{mtype}}}"
            )?,
            Event::Consume { cycle, nic, msg, mtype } => writeln!(
                w,
                "{{\"type\":\"consume\",\"cycle\":{cycle},\"nic\":{nic},\"msg\":{msg},\"mtype\":{mtype}}}"
            )?,
            Event::TokenPass { cycle, at, at_nic } => writeln!(
                w,
                "{{\"type\":\"token_pass\",\"cycle\":{cycle},\"at\":{at},\"at_nic\":{at_nic}}}"
            )?,
            Event::DeadlockDetected { cycle, nic, msg } => writeln!(
                w,
                "{{\"type\":\"deadlock_detected\",\"cycle\":{cycle},\"nic\":{nic},\"msg\":{msg}}}"
            )?,
            Event::RecoveryStart { cycle, episode, msg, at, at_nic } => writeln!(
                w,
                "{{\"type\":\"recovery_start\",\"cycle\":{cycle},\"episode\":{episode},\"msg\":{msg},\"at\":{at},\"at_nic\":{at_nic}}}"
            )?,
            Event::RecoveryEnd { cycle, episode, msg, moved, depth } => writeln!(
                w,
                "{{\"type\":\"recovery_end\",\"cycle\":{cycle},\"episode\":{episode},\"msg\":{msg},\"moved\":{moved},\"depth\":{depth}}}"
            )?,
            Event::BackoffReply { cycle, nic, msg, deflected } => writeln!(
                w,
                "{{\"type\":\"backoff_reply\",\"cycle\":{cycle},\"nic\":{nic},\"msg\":{msg},\"deflected\":{deflected}}}"
            )?,
        }
    }
    Ok(())
}

/// Columns of the trace CSV, in order. Fields not applicable to an event
/// kind are left empty.
pub const TRACE_CSV_HEADER: &str = "cycle,kind,nic,at,at_nic,msg,mtype,episode,moved,depth,deflected";

/// Write events as CSV under [`TRACE_CSV_HEADER`].
pub fn write_trace_csv<W: Write>(w: &mut W, events: &[Event]) -> io::Result<()> {
    writeln!(w, "{TRACE_CSV_HEADER}")?;
    for ev in events {
        match *ev {
            Event::Inject { cycle, nic, msg, mtype } => {
                writeln!(w, "{cycle},inject,{nic},,,{msg},{mtype},,,,")?;
            }
            Event::Consume { cycle, nic, msg, mtype } => {
                writeln!(w, "{cycle},consume,{nic},,,{msg},{mtype},,,,")?;
            }
            Event::TokenPass { cycle, at, at_nic } => {
                writeln!(w, "{cycle},token_pass,,{at},{at_nic},,,,,,")?;
            }
            Event::DeadlockDetected { cycle, nic, msg } => {
                writeln!(w, "{cycle},deadlock_detected,{nic},,,{msg},,,,,")?;
            }
            Event::RecoveryStart { cycle, episode, msg, at, at_nic } => {
                writeln!(w, "{cycle},recovery_start,,{at},{at_nic},{msg},,{episode},,,")?;
            }
            Event::RecoveryEnd { cycle, episode, msg, moved, depth } => {
                writeln!(w, "{cycle},recovery_end,,,,{msg},,{episode},{moved},{depth},")?;
            }
            Event::BackoffReply { cycle, nic, msg, deflected } => {
                writeln!(w, "{cycle},backoff_reply,{nic},,,{msg},,,,,{deflected}")?;
            }
        }
    }
    Ok(())
}

/// Parse JSON Lines produced by [`write_trace_jsonl`] back into events.
/// This is a reader for *this crate's* output, not a general JSON parser.
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_jsonl_line)
        .collect()
}

fn json_field(line: &str, key: &str) -> Result<u64, String> {
    json_field_raw(line, key)?
        .parse()
        .map_err(|e| format!("bad {key} in {line:?}: {e}"))
}

fn json_bool_field(line: &str, key: &str) -> Result<bool, String> {
    match json_field_raw(line, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("bad bool {key}: {other:?}")),
    }
}

fn json_field_raw<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing {key} in {line:?}"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated {key} in {line:?}"))?;
    Ok(rest[..end].trim().trim_matches('"'))
}

fn parse_jsonl_line(line: &str) -> Result<Event, String> {
    let kind = json_field_raw(line, "type")?;
    let cycle = json_field(line, "cycle")?;
    Ok(match kind {
        "inject" => Event::Inject {
            cycle,
            nic: json_field(line, "nic")? as u32,
            msg: json_field(line, "msg")?,
            mtype: json_field(line, "mtype")? as u8,
        },
        "consume" => Event::Consume {
            cycle,
            nic: json_field(line, "nic")? as u32,
            msg: json_field(line, "msg")?,
            mtype: json_field(line, "mtype")? as u8,
        },
        "token_pass" => Event::TokenPass {
            cycle,
            at: json_field(line, "at")? as u32,
            at_nic: json_bool_field(line, "at_nic")?,
        },
        "deadlock_detected" => Event::DeadlockDetected {
            cycle,
            nic: json_field(line, "nic")? as u32,
            msg: json_field(line, "msg")?,
        },
        "recovery_start" => Event::RecoveryStart {
            cycle,
            episode: json_field(line, "episode")?,
            msg: json_field(line, "msg")?,
            at: json_field(line, "at")? as u32,
            at_nic: json_bool_field(line, "at_nic")?,
        },
        "recovery_end" => Event::RecoveryEnd {
            cycle,
            episode: json_field(line, "episode")?,
            msg: json_field(line, "msg")?,
            moved: json_field(line, "moved")? as u32,
            depth: json_field(line, "depth")? as u32,
        },
        "backoff_reply" => Event::BackoffReply {
            cycle,
            nic: json_field(line, "nic")? as u32,
            msg: json_field(line, "msg")?,
            deflected: json_field(line, "deflected")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    })
}

/// Parse CSV produced by [`write_trace_csv`] back into events.
pub fn parse_trace_csv(text: &str) -> Result<Vec<Event>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == TRACE_CSV_HEADER => {}
        other => return Err(format!("bad trace header: {other:?}")),
    }
    lines
        .filter(|l| !l.is_empty())
        .map(parse_csv_row)
        .collect()
}

fn parse_csv_row(line: &str) -> Result<Event, String> {
    let cols: Vec<&str> = line.split(',').collect();
    if cols.len() != 11 {
        return Err(format!("bad trace row (want 11 columns): {line:?}"));
    }
    let num = |i: usize, what: &str| -> Result<u64, String> {
        cols[i]
            .parse()
            .map_err(|e| format!("bad {what} in {line:?}: {e}"))
    };
    let cycle = num(0, "cycle")?;
    Ok(match cols[1] {
        "inject" => Event::Inject {
            cycle,
            nic: num(2, "nic")? as u32,
            msg: num(5, "msg")?,
            mtype: num(6, "mtype")? as u8,
        },
        "consume" => Event::Consume {
            cycle,
            nic: num(2, "nic")? as u32,
            msg: num(5, "msg")?,
            mtype: num(6, "mtype")? as u8,
        },
        "token_pass" => Event::TokenPass {
            cycle,
            at: num(3, "at")? as u32,
            at_nic: cols[4] == "true",
        },
        "deadlock_detected" => Event::DeadlockDetected {
            cycle,
            nic: num(2, "nic")? as u32,
            msg: num(5, "msg")?,
        },
        "recovery_start" => Event::RecoveryStart {
            cycle,
            episode: num(7, "episode")?,
            msg: num(5, "msg")?,
            at: num(3, "at")? as u32,
            at_nic: cols[4] == "true",
        },
        "recovery_end" => Event::RecoveryEnd {
            cycle,
            episode: num(7, "episode")?,
            msg: num(5, "msg")?,
            moved: num(8, "moved")? as u32,
            depth: num(9, "depth")? as u32,
        },
        "backoff_reply" => Event::BackoffReply {
            cycle,
            nic: num(2, "nic")? as u32,
            msg: num(5, "msg")?,
            deflected: num(10, "deflected")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{CounterId, Counters};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Inject { cycle: 1, nic: 3, msg: 100, mtype: 0 },
            Event::TokenPass { cycle: 2, at: 7, at_nic: false },
            Event::TokenPass { cycle: 3, at: 7, at_nic: true },
            Event::DeadlockDetected { cycle: 40, nic: 7, msg: 100 },
            Event::RecoveryStart { cycle: 41, episode: 1, msg: 100, at: 7, at_nic: true },
            Event::RecoveryEnd { cycle: 90, episode: 1, msg: 100, moved: 2, depth: 1 },
            Event::BackoffReply { cycle: 95, nic: 2, msg: 200, deflected: 150 },
            Event::Consume { cycle: 99, nic: 0, msg: 100, mtype: 2 },
        ]
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let parsed = parse_trace_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn csv_roundtrip_preserves_events() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace_csv(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_trace_csv(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn counters_csv_roundtrip() {
        let c = Counters::new();
        c.add(CounterId::DeadlocksDetected, 5);
        c.set(CounterId::NetFlitsInFlight, 321);
        let snap = c.snapshot();
        let mut buf = Vec::new();
        write_counters_csv(&mut buf, &snap).unwrap();
        let rows = parse_counters_csv(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(rows.len(), snap.entries.len());
        for (row, entry) in rows.iter().zip(&snap.entries) {
            assert_eq!(row.0, entry.name());
            assert_eq!(row.1, entry.value);
        }
    }

    #[test]
    fn counters_json_is_one_flat_object() {
        let c = Counters::new();
        c.add(CounterId::TokenHops, 9);
        let mut buf = Vec::new();
        write_counters_json(&mut buf, &c.snapshot()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"token_hops\":9"));
        assert!(text.contains("\"deadlocks_detected\":0"));
    }
}
