//! # mdd-obs — simulator observability
//!
//! Cycle-level tracing, counters, and recovery-path instrumentation for
//! the message-dependent-deadlock simulator (Song & Pinkston, IPPS 2001).
//! Where the paper reports aggregate outcomes (Figures 8–11), this layer
//! exposes the *mechanism*: how often the detector of Section 4.1 fires,
//! how far the Extended Disha token of Section 3 travels between
//! captures, and how each recovery episode unfolds stop by stop.
//!
//! Three pieces:
//!
//! * a process-global registry of named monotonic counters and sampled
//!   gauges ([`Counters`], [`CounterId`]) — flits routed, VC
//!   allocations/stalls, token hops, DB/DMB occupancy, backoff replies,
//!   deadlocks detected/recovered, messages rescued;
//! * a bounded ring-buffer trace of typed events ([`EventTrace`],
//!   [`Event`]) with cycle timestamps, fed through the [`trace!`] macro;
//! * snapshot sinks exporting JSON/JSONL and CSV (the [`sink`] module),
//!   matching the `results/` CSV conventions.
//!
//! ## Gating and cost
//!
//! The layer is **off by default**. Instrumentation sites compile to a
//! single relaxed atomic load and branch while no sink is installed —
//! the [`trace!`] macro does not even evaluate its event expression, and
//! the counter helpers return before touching the registry. Call
//! [`install`] to turn everything on and [`uninstall`] to tear it down.
//! The registry and trace are process-global: concurrent simulations
//! (e.g. a parallel load sweep) merge into one stream.
//!
//! ## Reading counters
//!
//! ```
//! use mdd_obs::{self as obs, CounterId};
//!
//! obs::install(1024);
//! obs::counter_add(CounterId::TokenHops, 3);
//! obs::trace!(obs::Event::TokenPass { cycle: 7, at: 0, at_nic: false });
//!
//! let report = obs::uninstall().expect("was installed");
//! assert_eq!(report.get(CounterId::TokenHops), 3);
//! assert_eq!(report.events_recorded, 1);
//! assert!(!obs::enabled()); // everything off again
//! ```

#![warn(missing_docs)]

mod counters;
mod event;
pub mod sink;
mod trace;

pub use counters::{CounterEntry, CounterId, CounterSnapshot, Counters, NUM_COUNTERS};
pub use event::Event;
pub use trace::EventTrace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Counters = Counters::new();
static TRACE: Mutex<Option<EventTrace>> = Mutex::new(None);

/// True while the observability layer is installed. Instrumentation
/// sites check this before doing any work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the layer on: zero every counter, replace the event trace with a
/// fresh ring buffer of `trace_capacity` events, and enable recording.
pub fn install(trace_capacity: usize) {
    GLOBAL.reset();
    *TRACE.lock().unwrap() = Some(EventTrace::new(trace_capacity));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the layer off, returning the final [`ObsReport`] (or `None` if
/// it was not installed). The event trace is dropped; snapshot it first
/// via [`trace_snapshot`] if the events are needed.
pub fn uninstall() -> Option<ObsReport> {
    if !enabled() {
        return None;
    }
    let report = ObsReport::capture();
    ENABLED.store(false, Ordering::Relaxed);
    *TRACE.lock().unwrap() = None;
    Some(report)
}

/// Add `n` to a monotonic counter. No-op while the layer is off.
#[inline]
pub fn counter_add(id: CounterId, n: u64) {
    if enabled() {
        GLOBAL.add(id, n);
    }
}

/// Overwrite a gauge with a freshly sampled value. No-op while the layer
/// is off.
#[inline]
pub fn gauge_set(id: CounterId, v: u64) {
    if enabled() {
        GLOBAL.set(id, v);
    }
}

/// Append an event to the installed trace. Prefer the [`trace!`] macro,
/// which skips constructing the event entirely while the layer is off.
pub fn record(ev: Event) {
    if !enabled() {
        return;
    }
    if let Some(t) = TRACE.lock().unwrap().as_mut() {
        t.push(ev);
    }
}

/// Record an [`Event`] if the observability layer is installed. The
/// event expression is only evaluated when recording will happen, so a
/// disabled site costs one relaxed load and a branch:
///
/// ```
/// # use mdd_obs::{trace, Event};
/// trace!(Event::Inject { cycle: 12, nic: 0, msg: 42, mtype: 0 });
/// ```
#[macro_export]
macro_rules! trace {
    ($ev:expr) => {
        if $crate::enabled() {
            $crate::record($ev);
        }
    };
}

/// Snapshot of every counter and gauge right now (all zeros when the
/// layer is off).
pub fn counters_snapshot() -> CounterSnapshot {
    GLOBAL.snapshot()
}

/// Copy of the installed trace: `(events oldest-first, recorded, dropped)`.
/// `None` while the layer is off.
pub fn trace_snapshot() -> Option<(Vec<Event>, u64, u64)> {
    TRACE
        .lock()
        .unwrap()
        .as_ref()
        .map(|t| (t.events(), t.recorded(), t.dropped()))
}

/// A self-contained summary of the observability state: all counter
/// values plus trace volume. Cheap to clone and carry in results (the
/// events themselves stay in the ring buffer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsReport {
    /// Every counter and gauge at capture time.
    pub counters: CounterSnapshot,
    /// Events pushed into the trace so far.
    pub events_recorded: u64,
    /// Events overwritten after the ring buffer filled.
    pub events_dropped: u64,
}

impl ObsReport {
    /// Capture the current global state.
    pub fn capture() -> Self {
        let (recorded, dropped) = TRACE
            .lock()
            .unwrap()
            .as_ref()
            .map_or((0, 0), |t| (t.recorded(), t.dropped()));
        ObsReport {
            counters: counters_snapshot(),
            events_recorded: recorded,
            events_dropped: dropped,
        }
    }

    /// Value of one counter in the captured snapshot.
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global layer is process-wide state shared by every #[test]
    // thread, so the lifecycle test runs as one serialized scenario.
    #[test]
    fn install_record_uninstall_lifecycle() {
        assert!(!enabled());
        // Disabled: helpers are inert and trace! does not evaluate.
        counter_add(CounterId::VcStalls, 5);
        let mut evaluated = false;
        trace!({
            evaluated = true;
            Event::TokenPass { cycle: 0, at: 0, at_nic: false }
        });
        assert!(!evaluated, "trace! must not evaluate its event when off");
        assert_eq!(counters_snapshot().get(CounterId::VcStalls), 0);
        assert!(trace_snapshot().is_none());
        assert!(uninstall().is_none());

        install(8);
        counter_add(CounterId::VcStalls, 5);
        gauge_set(CounterId::DmbOccupancy, 3);
        for c in 0..12u64 {
            trace!(Event::TokenPass { cycle: c, at: 1, at_nic: true });
        }
        let (events, recorded, dropped) = trace_snapshot().unwrap();
        assert_eq!((events.len(), recorded, dropped), (8, 12, 4));
        let report = uninstall().unwrap();
        assert_eq!(report.get(CounterId::VcStalls), 5);
        assert_eq!(report.get(CounterId::DmbOccupancy), 3);
        assert_eq!(report.events_recorded, 12);
        assert_eq!(report.events_dropped, 4);
        assert!(!enabled());

        // Reinstall starts clean.
        install(8);
        assert_eq!(counters_snapshot().get(CounterId::VcStalls), 0);
        assert_eq!(trace_snapshot().unwrap().1, 0);
        uninstall();
    }
}
