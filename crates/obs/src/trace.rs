//! The bounded event ring buffer.

use crate::event::Event;

/// A fixed-capacity ring buffer of [`Event`]s. Once full, each push
/// overwrites the oldest event and bumps the drop counter, so a trace
/// always holds the *most recent* window of activity.
#[derive(Clone, Debug)]
pub struct EventTrace {
    buf: Vec<Event>,
    /// Index of the oldest event (meaningful only when the buffer is
    /// full and wrapping).
    head: usize,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl EventTrace {
    /// A trace holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventTrace {
            buf: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append an event, overwriting the oldest once at capacity.
    pub fn push(&mut self, ev: Event) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Drop all retained events and zero the counters.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.recorded = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event::TokenPass {
            cycle,
            at: (cycle % 16) as u32,
            at_nic: cycle.is_multiple_of(2),
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut t = EventTrace::new(4);
        for c in 0..4 {
            t.push(ev(c));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 0);
        let cycles: Vec<u64> = t.events().iter().map(Event::cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3]);

        // Overflow by 6: the oldest 6 are gone, order is preserved.
        for c in 4..10 {
            t.push(ev(c));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6);
        let cycles: Vec<u64> = t.events().iter().map(Event::cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn wraps_repeatedly_without_drift() {
        let mut t = EventTrace::new(3);
        for c in 0..3_000 {
            t.push(ev(c));
        }
        let cycles: Vec<u64> = t.events().iter().map(Event::cycle).collect();
        assert_eq!(cycles, vec![2_997, 2_998, 2_999]);
        assert_eq!(t.dropped(), 2_997);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = EventTrace::new(2);
        t.push(ev(1));
        t.push(ev(2));
        t.push(ev(3));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.dropped(), 0);
        t.push(ev(9));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut t = EventTrace::new(0);
        t.push(ev(1));
        t.push(ev(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].cycle(), 2);
    }
}
