//! Typed trace events with cycle timestamps.
//!
//! Events are deliberately plain-old-data (`Copy`, ids as raw integers)
//! so the tracing layer has no dependency on the simulator crates and
//! recording an event is a couple of stores into the ring buffer.

/// One traced occurrence. All ids are the raw integer payloads of the
/// simulator's newtypes (`NicId.0`, `NodeId.0`, `MessageId.0`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A message's packet entered the network from an endpoint.
    Inject {
        /// Injection cycle.
        cycle: u64,
        /// Source NIC.
        nic: u32,
        /// Message id.
        msg: u64,
        /// Protocol message type.
        mtype: u8,
    },
    /// A message was consumed by an endpoint (sunk, serviced, or drained
    /// as a backoff reply).
    Consume {
        /// Consumption cycle.
        cycle: u64,
        /// Consuming NIC.
        nic: u32,
        /// Message id.
        msg: u64,
        /// Protocol message type.
        mtype: u8,
    },
    /// The recovery token completed a hop and visited a tour stop.
    TokenPass {
        /// Arrival cycle.
        cycle: u64,
        /// Stop id: a NIC id when `at_nic`, a router id otherwise.
        at: u32,
        /// True for NIC stops, false for router stops.
        at_nic: bool,
    },
    /// An endpoint detector declared a potential message-dependent
    /// deadlock.
    DeadlockDetected {
        /// Declaration cycle (detector threshold expiry).
        cycle: u64,
        /// Detecting NIC.
        nic: u32,
        /// The stuck input-queue head that triggered the declaration.
        msg: u64,
    },
    /// A recovery episode began (token captured).
    ///
    /// NIC captures (`at_nic` true) follow a [`Event::DeadlockDetected`]
    /// from that NIC's detector. Router captures (`at_nic` false) are
    /// initiated by the token's own blocked-head timeout — itself a form
    /// of detection — and need not be preceded by any
    /// `DeadlockDetected` event.
    RecoveryStart {
        /// Capture cycle.
        cycle: u64,
        /// Episode sequence number (pairs with [`Event::RecoveryEnd`]).
        episode: u64,
        /// The rescued head message.
        msg: u64,
        /// Capture stop id: a NIC id when `at_nic`, a router id otherwise.
        at: u32,
        /// True for NIC (message-deadlock) captures, false for router
        /// (routing-deadlock) captures.
        at_nic: bool,
    },
    /// A recovery episode completed (token released).
    RecoveryEnd {
        /// Release cycle.
        cycle: u64,
        /// Episode sequence number (pairs with [`Event::RecoveryStart`]).
        episode: u64,
        /// The rescued head message the episode began with.
        msg: u64,
        /// Subordinate messages moved during the episode.
        moved: u32,
        /// Deepest sender-chain stack reached.
        depth: u32,
    },
    /// Deflective recovery sent a backoff reply.
    BackoffReply {
        /// Deflection cycle.
        cycle: u64,
        /// Deflecting NIC.
        nic: u32,
        /// The backoff reply's own message id.
        msg: u64,
        /// The deflected (popped) message's id.
        deflected: u64,
    },
}

impl Event {
    /// The event's cycle timestamp.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::Inject { cycle, .. }
            | Event::Consume { cycle, .. }
            | Event::TokenPass { cycle, .. }
            | Event::DeadlockDetected { cycle, .. }
            | Event::RecoveryStart { cycle, .. }
            | Event::RecoveryEnd { cycle, .. }
            | Event::BackoffReply { cycle, .. } => cycle,
        }
    }

    /// The stable kind tag used by every sink format.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Inject { .. } => "inject",
            Event::Consume { .. } => "consume",
            Event::TokenPass { .. } => "token_pass",
            Event::DeadlockDetected { .. } => "deadlock_detected",
            Event::RecoveryStart { .. } => "recovery_start",
            Event::RecoveryEnd { .. } => "recovery_end",
            Event::BackoffReply { .. } => "backoff_reply",
        }
    }
}
