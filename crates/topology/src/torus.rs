//! The k-ary n-cube topology (torus or mesh) with bristling.

use crate::coord::{Coord, NicId, NodeId};
use crate::geometry::Direction;

/// Whether wraparound links exist.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyKind {
    /// Bidirectional torus: every dimension has wraparound links. This is
    /// what the paper simulates (Table 2).
    Torus,
    /// Mesh: no wraparound links; boundary routers simply lack the
    /// corresponding ports. Provided for completeness and for testing
    /// routing functions whose escape requirements differ (a mesh needs
    /// only one escape channel class for dimension-order routing).
    Mesh,
}

/// A router port. Ports `2d` / `2d+1` are the positive / negative direction
/// of dimension `d`; ports `2n..2n+b` attach the router's `b` local NICs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortId(pub u8);

impl PortId {
    /// The raw index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A k-ary n-cube (torus or mesh) with a configurable bristling factor.
///
/// The radix may differ per dimension, which is how the paper's bristled
/// 2x4 and 2x2 networks are expressed.
///
/// ```
/// use mdd_topology::{Topology, TopologyKind, NodeId};
/// let t = Topology::new(TopologyKind::Torus, &[4, 4], 2);
/// assert_eq!(t.num_routers(), 16);
/// assert_eq!(t.num_nics(), 32);
/// assert_eq!(t.distance(NodeId(0), NodeId(3)), 1, "wraparound shortcut");
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    kind: TopologyKind,
    radix: Vec<u32>,
    bristle: u32,
    num_routers: u32,
    /// Precomputed strides for coordinate <-> id conversion.
    stride: Vec<u32>,
}

impl Topology {
    /// Create a topology with per-dimension radices `radix` and `bristle`
    /// NICs attached to every router.
    ///
    /// # Panics
    /// Panics if `radix` is empty, any radix is < 2, or `bristle` is 0.
    pub fn new(kind: TopologyKind, radix: &[u32], bristle: u32) -> Self {
        assert!(!radix.is_empty(), "topology needs at least one dimension");
        assert!(
            radix.iter().all(|&k| k >= 2),
            "every dimension must have radix >= 2"
        );
        assert!(bristle >= 1, "bristling factor must be >= 1");
        let mut stride = Vec::with_capacity(radix.len());
        let mut acc = 1u32;
        for &k in radix {
            stride.push(acc);
            acc = acc.checked_mul(k).expect("router count overflow");
        }
        Topology {
            kind,
            radix: radix.to_vec(),
            bristle,
            num_routers: acc,
            stride,
        }
    }

    /// Convenience constructor for the paper's default 8x8 bidirectional
    /// torus with bristling factor 1 (Table 2).
    pub fn paper_default() -> Self {
        Topology::new(TopologyKind::Torus, &[8, 8], 1)
    }

    /// The topology kind (torus or mesh).
    #[inline]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// True if wraparound links exist.
    #[inline]
    pub fn has_wrap(&self) -> bool {
        self.kind == TopologyKind::Torus
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.radix.len()
    }

    /// Radix of dimension `d`.
    #[inline]
    pub fn radix(&self, d: usize) -> u32 {
        self.radix[d]
    }

    /// Number of routers in the network.
    #[inline]
    pub fn num_routers(&self) -> u32 {
        self.num_routers
    }

    /// Bristling factor: NICs per router.
    #[inline]
    pub fn bristle(&self) -> u32 {
        self.bristle
    }

    /// Total number of network interfaces (processing nodes).
    #[inline]
    pub fn num_nics(&self) -> u32 {
        self.num_routers * self.bristle
    }

    /// Number of network (inter-router) ports on each router: two per
    /// dimension. On a mesh, boundary routers have some of these ports
    /// unconnected (see [`Topology::neighbor`]).
    #[inline]
    pub fn network_ports(&self) -> usize {
        2 * self.dims()
    }

    /// Total ports per router: network ports plus one local port per NIC.
    #[inline]
    pub fn ports_per_router(&self) -> usize {
        self.network_ports() + self.bristle as usize
    }

    /// The port id for travelling in `dir` along dimension `d`.
    #[inline]
    pub fn port(&self, d: usize, dir: Direction) -> PortId {
        debug_assert!(d < self.dims());
        PortId((2 * d + usize::from(dir == Direction::Minus)) as u8)
    }

    /// The local port attaching NIC `local` (0-based within the router).
    #[inline]
    pub fn local_port(&self, local: u32) -> PortId {
        debug_assert!(local < self.bristle);
        PortId((self.network_ports() + local as usize) as u8)
    }

    /// If `port` is a network port, returns `(dimension, direction)`.
    #[inline]
    pub fn port_dim_dir(&self, port: PortId) -> Option<(usize, Direction)> {
        let p = port.index();
        if p < self.network_ports() {
            let dir = if p.is_multiple_of(2) {
                Direction::Plus
            } else {
                Direction::Minus
            };
            Some((p / 2, dir))
        } else {
            None
        }
    }

    /// If `port` is a local port, returns the local NIC index.
    #[inline]
    pub fn port_local_index(&self, port: PortId) -> Option<u32> {
        let p = port.index();
        if p >= self.network_ports() && p < self.ports_per_router() {
            Some((p - self.network_ports()) as u32)
        } else {
            None
        }
    }

    /// Convert a router id to its coordinate.
    pub fn coord(&self, node: NodeId) -> Coord {
        debug_assert!(node.0 < self.num_routers);
        let mut v = Vec::with_capacity(self.dims());
        let mut rest = node.0;
        for &k in &self.radix {
            v.push(rest % k);
            rest /= k;
        }
        Coord(v)
    }

    /// Convert a coordinate to a router id.
    pub fn node(&self, coord: &Coord) -> NodeId {
        debug_assert_eq!(coord.dims(), self.dims());
        let mut id = 0;
        for (d, &c) in coord.0.iter().enumerate() {
            debug_assert!(c < self.radix[d]);
            id += c * self.stride[d];
        }
        NodeId(id)
    }

    /// Position of `node` along dimension `d` without materializing the full
    /// coordinate vector.
    #[inline]
    pub fn coord_along(&self, node: NodeId, d: usize) -> u32 {
        (node.0 / self.stride[d]) % self.radix[d]
    }

    /// The neighbor of `node` in direction `dir` along dimension `d`, or
    /// `None` if the link does not exist (mesh boundary).
    pub fn neighbor(&self, node: NodeId, d: usize, dir: Direction) -> Option<NodeId> {
        let k = self.radix[d];
        let c = self.coord_along(node, d);
        let nc = match (dir, self.kind) {
            (Direction::Plus, TopologyKind::Torus) => (c + 1) % k,
            (Direction::Minus, TopologyKind::Torus) => (c + k - 1) % k,
            (Direction::Plus, TopologyKind::Mesh) => {
                if c + 1 >= k {
                    return None;
                }
                c + 1
            }
            (Direction::Minus, TopologyKind::Mesh) => {
                if c == 0 {
                    return None;
                }
                c - 1
            }
        };
        let delta = (nc as i64 - c as i64) * self.stride[d] as i64;
        Some(NodeId((node.0 as i64 + delta) as u32))
    }

    /// True if travelling from `node` in direction `dir` along dimension `d`
    /// crosses that dimension's dateline (the wraparound link). Dateline
    /// crossings switch the dimension-order escape channel class from 0 to 1
    /// (Dally & Seitz).
    #[inline]
    pub fn crosses_dateline(&self, node: NodeId, d: usize, dir: Direction) -> bool {
        if self.kind != TopologyKind::Torus {
            return false;
        }
        let c = self.coord_along(node, d);
        match dir {
            Direction::Plus => c == self.radix[d] - 1,
            Direction::Minus => c == 0,
        }
    }

    /// The router hosting NIC `nic`.
    #[inline]
    pub fn nic_router(&self, nic: NicId) -> NodeId {
        NodeId(nic.0 / self.bristle)
    }

    /// The local index of NIC `nic` within its router.
    #[inline]
    pub fn nic_local_index(&self, nic: NicId) -> u32 {
        nic.0 % self.bristle
    }

    /// The NIC with local index `local` on router `node`.
    #[inline]
    pub fn nic_at(&self, node: NodeId, local: u32) -> NicId {
        debug_assert!(local < self.bristle);
        NicId(node.0 * self.bristle + local)
    }

    /// Iterate over all router ids.
    pub fn routers(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_routers).map(NodeId)
    }

    /// Iterate over all NIC ids.
    pub fn nics(&self) -> impl Iterator<Item = NicId> {
        (0..self.num_nics()).map(NicId)
    }

    /// Total number of unidirectional inter-router links.
    pub fn num_links(&self) -> usize {
        let mut count = 0;
        for node in self.routers() {
            for d in 0..self.dims() {
                for dir in [Direction::Plus, Direction::Minus] {
                    if self.neighbor(node, d, dir).is_some() {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Minimal hop distance between two routers.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let mut dist = 0;
        for d in 0..self.dims() {
            let k = self.radix[d];
            let ca = self.coord_along(a, d);
            let cb = self.coord_along(b, d);
            let fwd = (cb + k - ca) % k;
            dist += match self.kind {
                TopologyKind::Torus => fwd.min(k - fwd),
                TopologyKind::Mesh => ca.abs_diff(cb),
            };
        }
        dist
    }
}
