//! # mdd-topology
//!
//! Topology substrate for the message-dependent deadlock simulation
//! workspace: k-ary n-cube networks (tori and meshes), node/port addressing,
//! bristling (multiple network interfaces per router), minimal-routing
//! geometry with dateline bookkeeping, and the Hamiltonian-style ring used
//! by the Disha token tour and recovery lane.
//!
//! The paper (Song & Pinkston, IPPS 2001) evaluates 8x8 and 4x4 bidirectional
//! tori with bristling factors of 1, 2 and 4; everything here is general over
//! radix, dimension and bristling so those configurations (and the 2x4 / 2x2
//! bristled variants of Section 4.2.2) are all instances of one type.
//!
//! ## Addressing conventions
//!
//! * Routers are identified by [`NodeId`]; node 0 has coordinate (0, .., 0)
//!   and coordinates are mixed-radix little-endian (dimension 0 varies
//!   fastest).
//! * Router ports: for dimension `d`, the positive-direction port is `2*d`
//!   and the negative-direction port is `2*d + 1`. Local (NIC) ports follow
//!   the network ports: local port `l` is `2*n + l`.
//! * Network interfaces are identified globally by [`NicId`];
//!   `NicId = router * bristle + local_index`.

#![warn(missing_docs)]

mod capacity;
mod coord;
mod fault;
mod geometry;
mod ring;
mod torus;

pub use capacity::CapacityReport;
pub use coord::{Coord, NicId, NodeId};
pub use fault::{single_link_faults, FaultSet, UNREACHABLE};
pub use geometry::{Direction, HopGeometry, MinimalHops, MAX_DIMS};
pub use ring::{RecoveryRing, TourStop};
pub use torus::{PortId, Topology, TopologyKind};

#[cfg(test)]
mod tests;
