//! The recovery ring: a total order over all routers (and, interleaved,
//! their NICs) used both as the Disha token tour and as the deadlock-buffer
//! recovery lane.
//!
//! Disha Sequential requires a connected, deadlock-free path over the
//! deadlock buffers that reaches every endpoint; the paper notes the token
//! path "can be logical and, thus, configurable" (Section 3). We use a
//! boustrophedon (snake) order over the router coordinates, which visits
//! every router exactly once; consecutive routers in the order are
//! physically adjacent everywhere except (possibly) the wrap from the last
//! router back to the first, which the token and rescued flits traverse as
//! a logical link multiplexed over network bandwidth. Because at most one
//! rescued packet uses the lane at a time (token mutual exclusion), the
//! lane is trivially deadlock-free.

use crate::coord::{NicId, NodeId};
use crate::torus::Topology;

/// Precomputed snake-order ring over all routers, with per-router NIC
/// attachment for the token tour.
#[derive(Clone, Debug)]
pub struct RecoveryRing {
    /// `order[i]` is the i-th router on the ring.
    order: Vec<NodeId>,
    /// `position[r]` is the ring position of router `r`.
    position: Vec<u32>,
    bristle: u32,
}

impl RecoveryRing {
    /// Build the ring for `topo` in boustrophedon coordinate order.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.num_routers() as usize;
        let mut order = Vec::with_capacity(n);
        // Enumerate coordinates in snake order: dimension 0 sweeps forward
        // or backward depending on the parity of the sum of higher
        // coordinates, which makes consecutive entries physically adjacent
        // within the row structure.
        let dims = topo.dims();
        let mut coord = vec![0u32; dims];
        loop {
            // Apply snake reflection to dimension 0.
            let parity: u32 = coord[1..].iter().sum();
            let mut c = coord.clone();
            if parity % 2 == 1 {
                c[0] = topo.radix(0) - 1 - c[0];
            }
            order.push(topo.node(&crate::coord::Coord(c)));
            // Increment mixed-radix counter.
            let mut d = 0;
            loop {
                if d == dims {
                    let mut position = vec![0u32; n];
                    for (i, r) in order.iter().enumerate() {
                        position[r.index()] = i as u32;
                    }
                    return RecoveryRing {
                        order,
                        position,
                        bristle: topo.bristle(),
                    };
                }
                coord[d] += 1;
                if coord[d] < topo.radix(d) {
                    break;
                }
                coord[d] = 0;
                d += 1;
            }
        }
    }

    /// Number of routers on the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the ring is empty (never the case for a valid topology).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The router at ring position `pos`.
    #[inline]
    pub fn at(&self, pos: usize) -> NodeId {
        self.order[pos % self.order.len()]
    }

    /// The ring position of router `node`.
    #[inline]
    pub fn position(&self, node: NodeId) -> u32 {
        self.position[node.index()]
    }

    /// The next router after `node` on the ring.
    #[inline]
    pub fn next(&self, node: NodeId) -> NodeId {
        self.at(self.position(node) as usize + 1)
    }

    /// Ring distance (number of forward steps) from router `a` to router
    /// `b`. The lane is unidirectional, so this is the recovery-path length.
    pub fn ring_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let n = self.order.len() as u32;
        let pa = self.position(a);
        let pb = self.position(b);
        (pb + n - pa) % n
    }

    /// The token tour: the total sequence of stops, each router followed by
    /// its NICs. Stop counting restarts every circulation.
    pub fn tour_len(&self) -> usize {
        self.order.len() * (1 + self.bristle as usize)
    }

    /// Decode tour stop `i` into the visited entity.
    pub fn tour_stop(&self, i: usize) -> TourStop {
        let per = 1 + self.bristle as usize;
        let i = i % self.tour_len();
        let router = self.order[i / per];
        let off = i % per;
        if off == 0 {
            TourStop::Router(router)
        } else {
            TourStop::Nic(NicId(router.0 * self.bristle + (off as u32 - 1)))
        }
    }
}

/// One stop on the circulating token's tour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TourStop {
    /// The token is visiting a router (eligible to capture for
    /// routing-dependent deadlock recovery).
    Router(NodeId),
    /// The token is visiting a network interface (eligible to capture for
    /// message-dependent deadlock recovery).
    Nic(NicId),
}
