//! Theoretical capacity analysis: average distance, bisection width, and
//! the uniform-traffic saturation bound used to express loads as a
//! fraction of network capacity (the paper's Figure 6 axis).

use crate::coord::NodeId;
use crate::torus::{Topology, TopologyKind};

/// Capacity figures for a topology under uniform random traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityReport {
    /// Mean minimal hop distance between distinct router pairs.
    pub avg_distance: f64,
    /// Unidirectional channels crossing the worst-dimension bisection.
    pub bisection_channels: u32,
    /// Upper bound on sustainable uniform-traffic throughput in
    /// flits/node/cycle, from the bisection argument
    /// (`2·B / N` for traffic where half the packets cross the cut).
    pub bisection_bound: f64,
    /// Upper bound from total link bandwidth: `links / (N · avg_distance)`
    /// flits/node/cycle.
    pub link_bound: f64,
}

impl CapacityReport {
    /// The binding bound (minimum of the two).
    pub fn throughput_bound(&self) -> f64 {
        self.bisection_bound.min(self.link_bound)
    }
}

impl Topology {
    /// Mean minimal hop distance over ordered pairs of distinct routers.
    pub fn average_distance(&self) -> f64 {
        // Per-dimension mean distances are independent and additive.
        let mut total = 0.0;
        for d in 0..self.dims() {
            let k = self.radix(d) as f64;
            let mean_d = match self.kind() {
                // Ring of k nodes: mean over all ordered pairs including
                // self (k^2 pairs) is k/4 for even k; use the exact sum.
                TopologyKind::Torus => {
                    let k_int = self.radix(d);
                    let sum: u32 = (0..k_int)
                        .map(|delta| delta.min(k_int - delta))
                        .sum();
                    sum as f64 / k
                }
                // Path of k nodes: mean |i-j| over ordered pairs incl. self.
                TopologyKind::Mesh => {
                    let k_int = self.radix(d) as i64;
                    let sum: i64 = (0..k_int)
                        .flat_map(|i| (0..k_int).map(move |j| (i - j).abs()))
                        .sum();
                    sum as f64 / (k * k)
                }
            };
            total += mean_d;
        }
        // Rescale from "including self pairs" to distinct pairs.
        let n = self.num_routers() as f64;
        total * n / (n - 1.0)
    }

    /// Unidirectional channel count across the bisection of the widest
    /// dimension cut (the standard worst-case middle cut).
    pub fn bisection_channels(&self) -> u32 {
        // Cut the largest dimension in half: the number of crossing
        // unidirectional links is (routers / k) * (wrap ? 2 : 1) * 2 dirs.
        let (dmax, kmax) = (0..self.dims())
            .map(|d| (d, self.radix(d)))
            .max_by_key(|&(_, k)| k)
            .expect("at least one dimension");
        let _ = dmax;
        let rows = self.num_routers() / kmax;
        let cuts = match self.kind() {
            TopologyKind::Torus => 2,
            TopologyKind::Mesh => 1,
        };
        rows * cuts * 2
    }

    /// Full capacity report for uniform random traffic.
    pub fn capacity(&self) -> CapacityReport {
        let n = self.num_nics() as f64;
        let avg = self.average_distance();
        let b = self.bisection_channels();
        CapacityReport {
            avg_distance: avg,
            bisection_channels: b,
            bisection_bound: 2.0 * b as f64 / n,
            link_bound: self.num_links() as f64 / (n * avg.max(1e-9)),
        }
    }

    /// Exhaustive (O(N²)) mean distance, for validating the closed form in
    /// tests and for irregular analyses.
    pub fn average_distance_exhaustive(&self) -> f64 {
        let n = self.num_routers();
        let mut sum = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    sum += self.distance(NodeId(a), NodeId(b)) as u64;
                }
            }
        }
        sum as f64 / (n as f64 * (n as f64 - 1.0))
    }
}
