//! Unit and property tests for the topology substrate.

use crate::*;

fn torus88() -> Topology {
    Topology::new(TopologyKind::Torus, &[8, 8], 1)
}

#[test]
fn paper_default_is_8x8_torus() {
    let t = Topology::paper_default();
    assert_eq!(t.num_routers(), 64);
    assert_eq!(t.num_nics(), 64);
    assert_eq!(t.dims(), 2);
    assert_eq!(t.kind(), TopologyKind::Torus);
}

#[test]
fn coord_roundtrip() {
    let t = Topology::new(TopologyKind::Torus, &[4, 3, 2], 1);
    assert_eq!(t.num_routers(), 24);
    for node in t.routers() {
        let c = t.coord(node);
        assert_eq!(t.node(&c), node);
        for d in 0..t.dims() {
            assert_eq!(t.coord_along(node, d), c.get(d));
        }
    }
}

#[test]
fn neighbor_symmetry_torus() {
    let t = torus88();
    for node in t.routers() {
        for d in 0..t.dims() {
            for dir in [Direction::Plus, Direction::Minus] {
                let n = t.neighbor(node, d, dir).unwrap();
                let back = t.neighbor(n, d, dir.opposite()).unwrap();
                assert_eq!(back, node, "neighbor relation must be symmetric");
            }
        }
    }
}

#[test]
fn mesh_boundaries_have_no_neighbors() {
    let t = Topology::new(TopologyKind::Mesh, &[4, 4], 1);
    let origin = t.node(&Coord(vec![0, 0]));
    assert_eq!(t.neighbor(origin, 0, Direction::Minus), None);
    assert_eq!(t.neighbor(origin, 1, Direction::Minus), None);
    assert!(t.neighbor(origin, 0, Direction::Plus).is_some());
    let corner = t.node(&Coord(vec![3, 3]));
    assert_eq!(t.neighbor(corner, 0, Direction::Plus), None);
    assert_eq!(t.neighbor(corner, 1, Direction::Plus), None);
}

#[test]
fn torus_link_count() {
    let t = torus88();
    // 64 routers * 2 dims * 2 dirs unidirectional links.
    assert_eq!(t.num_links(), 64 * 4);
    let m = Topology::new(TopologyKind::Mesh, &[4, 4], 1);
    // Mesh: per dim, 3 bidirectional links per row * 4 rows * 2 dims,
    // counted unidirectionally (* 2).
    assert_eq!(m.num_links(), 3 * 4 * 2 * 2);
}

#[test]
fn dateline_only_at_wrap() {
    let t = torus88();
    for node in t.routers() {
        for d in 0..2 {
            let c = t.coord_along(node, d);
            assert_eq!(t.crosses_dateline(node, d, Direction::Plus), c == 7);
            assert_eq!(t.crosses_dateline(node, d, Direction::Minus), c == 0);
        }
    }
    let m = Topology::new(TopologyKind::Mesh, &[4, 4], 1);
    for node in m.routers() {
        assert!(!m.crosses_dateline(node, 0, Direction::Plus));
    }
}

#[test]
fn bristling_nic_mapping() {
    let t = Topology::new(TopologyKind::Torus, &[2, 4], 4);
    assert_eq!(t.num_routers(), 8);
    assert_eq!(t.num_nics(), 32);
    for nic in t.nics() {
        let r = t.nic_router(nic);
        let l = t.nic_local_index(nic);
        assert_eq!(t.nic_at(r, l), nic);
        assert!(l < 4);
    }
    assert_eq!(t.ports_per_router(), 4 + 4);
    assert_eq!(t.port_local_index(PortId(4)), Some(0));
    assert_eq!(t.port_local_index(PortId(7)), Some(3));
    assert_eq!(t.port_local_index(PortId(3)), None);
}

#[test]
fn port_dim_dir_roundtrip() {
    let t = torus88();
    for d in 0..t.dims() {
        for dir in [Direction::Plus, Direction::Minus] {
            let p = t.port(d, dir);
            assert_eq!(t.port_dim_dir(p), Some((d, dir)));
        }
    }
    assert_eq!(t.port_dim_dir(t.local_port(0)), None);
}

#[test]
fn distance_matches_minimal_hops() {
    let t = torus88();
    for a in t.routers().step_by(7) {
        for b in t.routers().step_by(5) {
            let mh = MinimalHops::new(&t, a, b);
            assert_eq!(mh.total_distance(), t.distance(a, b));
            assert_eq!(mh.arrived(), a == b);
        }
    }
}

#[test]
fn dor_direction_is_minimal() {
    let t = torus88();
    let a = t.node(&Coord(vec![0, 0]));
    let b = t.node(&Coord(vec![3, 6]));
    let mh = MinimalHops::new(&t, a, b);
    // dim 0: +3 is shorter than -5.
    assert_eq!(mh.dim(0).dor_direction(), Some(Direction::Plus));
    // dim 1: -2 is shorter than +6.
    assert_eq!(mh.dim(1).dor_direction(), Some(Direction::Minus));
    assert_eq!(mh.total_distance(), 5);
}

#[test]
fn even_radix_halfway_both_productive() {
    let t = torus88();
    let a = t.node(&Coord(vec![0, 0]));
    let b = t.node(&Coord(vec![4, 0]));
    let mh = MinimalHops::new(&t, a, b);
    let g = mh.dim(0);
    assert_eq!(g.plus, Some(4));
    assert_eq!(g.minus, Some(4));
    assert_eq!(g.dor_direction(), Some(Direction::Plus), "ties break Plus");
    assert_eq!(g.productive().count(), 2);
}

#[test]
fn ring_visits_every_router_once() {
    for radix in [[4u32, 4], [8, 8], [2, 4]] {
        let t = Topology::new(TopologyKind::Torus, &radix, 1);
        let ring = RecoveryRing::new(&t);
        assert_eq!(ring.len(), t.num_routers() as usize);
        let mut seen = vec![false; t.num_routers() as usize];
        for i in 0..ring.len() {
            let r = ring.at(i);
            assert!(!seen[r.index()], "router visited twice");
            seen[r.index()] = true;
            assert_eq!(ring.position(r) as usize, i);
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn ring_consecutive_routers_adjacent_within_snake() {
    // All consecutive pairs except the final wrap should be physical
    // neighbors in a 2D torus snake order.
    let t = torus88();
    let ring = RecoveryRing::new(&t);
    for i in 0..ring.len() - 1 {
        let a = ring.at(i);
        let b = ring.at(i + 1);
        assert_eq!(t.distance(a, b), 1, "snake step {i} not adjacent");
    }
}

#[test]
fn ring_distance_is_forward_steps() {
    let t = torus88();
    let ring = RecoveryRing::new(&t);
    let a = ring.at(3);
    let b = ring.at(10);
    assert_eq!(ring.ring_distance(a, b), 7);
    assert_eq!(ring.ring_distance(b, a), 64 - 7);
    assert_eq!(ring.ring_distance(a, a), 0);
    assert_eq!(ring.next(a), ring.at(4));
}

#[test]
fn tour_interleaves_nics() {
    let t = Topology::new(TopologyKind::Torus, &[2, 2], 2);
    let ring = RecoveryRing::new(&t);
    assert_eq!(ring.tour_len(), 4 * 3);
    // Stops per router: router itself, then NIC 0, then NIC 1.
    match ring.tour_stop(0) {
        TourStop::Router(r) => assert_eq!(r, ring.at(0)),
        _ => panic!("first stop must be a router"),
    }
    match ring.tour_stop(1) {
        TourStop::Nic(n) => assert_eq!(t.nic_router(n), ring.at(0)),
        _ => panic!("second stop must be a NIC"),
    }
    match ring.tour_stop(2) {
        TourStop::Nic(n) => {
            assert_eq!(t.nic_router(n), ring.at(0));
            assert_eq!(t.nic_local_index(n), 1);
        }
        _ => panic!("third stop must be a NIC"),
    }
    // Tour wraps around.
    assert_eq!(ring.tour_stop(12), ring.tour_stop(0));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_topo() -> impl Strategy<Value = Topology> {
        (
            prop_oneof![Just(TopologyKind::Torus), Just(TopologyKind::Mesh)],
            proptest::collection::vec(2u32..9, 1..4),
            1u32..4,
        )
            .prop_map(|(kind, radix, b)| Topology::new(kind, &radix, b))
    }

    proptest! {
        #[test]
        fn coord_roundtrip_any(topo in arb_topo(), raw in 0u32..10_000) {
            let node = NodeId(raw % topo.num_routers());
            prop_assert_eq!(topo.node(&topo.coord(node)), node);
        }

        #[test]
        fn distance_symmetric_and_triangle(topo in arb_topo(),
                                           ra in 0u32..10_000,
                                           rb in 0u32..10_000,
                                           rc in 0u32..10_000) {
            let n = topo.num_routers();
            let (a, b, c) = (NodeId(ra % n), NodeId(rb % n), NodeId(rc % n));
            prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
            prop_assert!(topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c));
            prop_assert_eq!(topo.distance(a, a), 0);
        }

        #[test]
        fn walking_dor_directions_reaches_destination(topo in arb_topo(),
                                                      ra in 0u32..10_000,
                                                      rb in 0u32..10_000) {
            let n = topo.num_routers();
            let (src, dst) = (NodeId(ra % n), NodeId(rb % n));
            let mut cur = src;
            let mut steps = 0u32;
            loop {
                let mh = MinimalHops::new(&topo, cur, dst);
                if mh.arrived() { break; }
                let d = mh.first_unaligned().unwrap();
                let dir = mh.dim(d).dor_direction().unwrap();
                cur = topo.neighbor(cur, d, dir).expect("minimal direction must exist");
                steps += 1;
                prop_assert!(steps <= topo.distance(src, dst),
                    "DOR walk exceeded the minimal distance");
            }
            prop_assert_eq!(steps, topo.distance(src, dst));
        }

        #[test]
        fn productive_moves_reduce_distance(topo in arb_topo(),
                                            ra in 0u32..10_000,
                                            rb in 0u32..10_000) {
            let n = topo.num_routers();
            let (src, dst) = (NodeId(ra % n), NodeId(rb % n));
            let mh = MinimalHops::new(&topo, src, dst);
            for d in 0..topo.dims() {
                for dir in mh.dim(d).productive() {
                    let next = topo.neighbor(src, d, dir).expect("productive link exists");
                    prop_assert_eq!(topo.distance(next, dst) + 1, topo.distance(src, dst));
                }
            }
        }

        #[test]
        fn ring_covers_all(topo in arb_topo()) {
            let ring = RecoveryRing::new(&topo);
            prop_assert_eq!(ring.len() as u32, topo.num_routers());
            let mut seen = vec![false; ring.len()];
            for i in 0..ring.len() {
                seen[ring.at(i).index()] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
            // Tour covers all NICs exactly once per circulation.
            let mut nic_seen = vec![0u32; topo.num_nics() as usize];
            for i in 0..ring.tour_len() {
                if let TourStop::Nic(nic) = ring.tour_stop(i) {
                    nic_seen[nic.index()] += 1;
                }
            }
            prop_assert!(nic_seen.iter().all(|&c| c == 1));
        }
    }
}

#[test]
fn average_distance_matches_exhaustive() {
    for (kind, radix) in [
        (TopologyKind::Torus, vec![8u32, 8]),
        (TopologyKind::Torus, vec![4, 4]),
        (TopologyKind::Torus, vec![2, 4]),
        (TopologyKind::Mesh, vec![4, 4]),
        (TopologyKind::Mesh, vec![3, 5]),
        (TopologyKind::Torus, vec![4, 4, 4]),
    ] {
        let t = Topology::new(kind, &radix, 1);
        let closed = t.average_distance();
        let exact = t.average_distance_exhaustive();
        assert!(
            (closed - exact).abs() < 1e-9,
            "{kind:?} {radix:?}: closed {closed} vs exhaustive {exact}"
        );
    }
}

#[test]
fn capacity_8x8_torus() {
    let t = Topology::paper_default();
    let cap = t.capacity();
    // 8-ring mean ring distance over distinct pairs: (sum over deltas
    // 1..7 of min(d, 8-d)) / 7 = 16/7 per dimension... doubled for 2D and
    // rescaled; the closed form is validated against the exhaustive count
    // above, so here just sanity-check the well-known figures.
    assert!((cap.avg_distance - 4.0 * 64.0 / 63.0).abs() < 1e-9);
    assert_eq!(cap.bisection_channels, 8 * 2 * 2);
    assert!((cap.bisection_bound - 1.0).abs() < 1e-9, "2*32/64 = 1.0");
    // Link bound: 256 links / (64 nodes * ~4.06 hops) ≈ 0.984 — the two
    // bounds nearly coincide on a square torus.
    let expect_link = 256.0 / (64.0 * cap.avg_distance);
    assert!((cap.link_bound - expect_link).abs() < 1e-9);
    assert!((cap.throughput_bound() - cap.bisection_bound.min(cap.link_bound)).abs() < 1e-12);
    assert!(cap.throughput_bound() > 0.95 && cap.throughput_bound() <= 1.0);
}

#[test]
fn mesh_capacity_is_lower() {
    let torus = Topology::new(TopologyKind::Torus, &[8, 8], 1);
    let mesh = Topology::new(TopologyKind::Mesh, &[8, 8], 1);
    assert!(mesh.average_distance() > torus.average_distance());
    assert!(mesh.capacity().throughput_bound() < torus.capacity().throughput_bound());
}

#[test]
fn bristling_divides_per_node_capacity() {
    let flat = Topology::new(TopologyKind::Torus, &[4, 4], 1);
    let bristled = Topology::new(TopologyKind::Torus, &[2, 2], 4);
    assert_eq!(flat.num_nics(), bristled.num_nics());
    // Same endpoints, quarter the routers: per-node capacity drops, which
    // is why Section 4.2.2 bristles the network to raise relative load.
    assert!(
        bristled.capacity().throughput_bound() < flat.capacity().throughput_bound()
    );
}
