//! Node, NIC and coordinate types.

use std::fmt;

/// Identifier of a router node in the network.
///
/// Routers are numbered `0..num_routers()` in mixed-radix little-endian
/// coordinate order (dimension 0 varies fastest).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index as a `usize`, for direct indexing into per-router
    /// vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a network interface (endpoint) in the network.
///
/// With bristling factor `b`, router `r` hosts NICs
/// `r*b .. r*b + b`. With `b = 1` (the paper's default, Table 2) the NIC id
/// equals the router id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NicId(pub u32);

impl NicId {
    /// The raw index as a `usize`, for direct indexing into per-NIC vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A mixed-radix coordinate of a router within a k-ary n-cube.
///
/// `coords[d]` is the position along dimension `d`, in `0..radix[d]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Coord(pub Vec<u32>);

impl Coord {
    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Position along dimension `d`.
    #[inline]
    pub fn get(&self, d: usize) -> u32 {
        self.0[d]
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}
