//! Minimal-routing geometry: productive directions, hop offsets, tie
//! handling on even-radix tori.

use crate::coord::NodeId;
use crate::torus::{Topology, TopologyKind};

/// Direction of travel along one dimension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Increasing coordinate (wrapping from `k-1` to `0` on a torus).
    Plus,
    /// Decreasing coordinate (wrapping from `0` to `k-1` on a torus).
    Minus,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Plus => Direction::Minus,
            Direction::Minus => Direction::Plus,
        }
    }
}

/// The remaining minimal hops in one dimension: which direction(s) are
/// productive and how many hops remain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HopGeometry {
    /// Hops remaining if travelling in the positive direction (`None` if the
    /// positive direction is not minimal).
    pub plus: Option<u32>,
    /// Hops remaining if travelling in the negative direction.
    pub minus: Option<u32>,
}

impl HopGeometry {
    /// True if the packet is already aligned in this dimension.
    #[inline]
    pub fn aligned(&self) -> bool {
        self.plus.is_none() && self.minus.is_none()
    }

    /// The deterministic direction used by dimension-order routing: the
    /// strictly shorter direction, with ties (radix/2 on an even torus)
    /// broken toward `Plus`.
    #[inline]
    pub fn dor_direction(&self) -> Option<Direction> {
        match (self.plus, self.minus) {
            (None, None) => None,
            (Some(_), None) => Some(Direction::Plus),
            (None, Some(_)) => Some(Direction::Minus),
            (Some(p), Some(m)) => Some(if p <= m {
                Direction::Plus
            } else {
                Direction::Minus
            }),
        }
    }

    /// All productive (minimal) directions, for adaptive routing.
    pub fn productive(&self) -> impl Iterator<Item = Direction> {
        self.plus
            .map(|_| Direction::Plus)
            .into_iter()
            .chain(self.minus.map(|_| Direction::Minus))
    }
}

/// Maximum supported torus/mesh dimensionality. Inline storage in
/// [`MinimalHops`] keeps the per-hop routing geometry allocation-free —
/// it is rebuilt on every route-computation attempt.
pub const MAX_DIMS: usize = 4;

/// All per-dimension minimal-hop information from `src` to `dst`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MinimalHops {
    per_dim: [HopGeometry; MAX_DIMS],
    ndims: u8,
}

impl MinimalHops {
    /// Compute the minimal-hop geometry between two routers.
    pub fn new(topo: &Topology, src: NodeId, dst: NodeId) -> Self {
        let ndims = topo.dims();
        assert!(ndims <= MAX_DIMS, "topology exceeds MAX_DIMS");
        let mut per_dim = [HopGeometry {
            plus: None,
            minus: None,
        }; MAX_DIMS];
        for (d, g) in per_dim.iter_mut().enumerate().take(ndims) {
            *g = hop_geometry(topo, src, dst, d);
        }
        MinimalHops {
            per_dim,
            ndims: ndims as u8,
        }
    }

    /// Geometry for dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> HopGeometry {
        debug_assert!(d < self.ndims as usize);
        self.per_dim[d]
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.ndims as usize
    }

    #[inline]
    fn live(&self) -> &[HopGeometry] {
        &self.per_dim[..self.ndims as usize]
    }

    /// True if source equals destination (no hops remain in any dimension).
    pub fn arrived(&self) -> bool {
        self.live().iter().all(HopGeometry::aligned)
    }

    /// The lowest unaligned dimension, which dimension-order routing
    /// corrects first.
    pub fn first_unaligned(&self) -> Option<usize> {
        self.live().iter().position(|g| !g.aligned())
    }

    /// Total minimal distance (taking the shorter way in each dimension).
    pub fn total_distance(&self) -> u32 {
        self.live()
            .iter()
            .map(|g| match (g.plus, g.minus) {
                (None, None) => 0,
                (Some(p), None) => p,
                (None, Some(m)) => m,
                (Some(p), Some(m)) => p.min(m),
            })
            .sum()
    }
}

/// Minimal-hop geometry for a single dimension.
pub fn hop_geometry(topo: &Topology, src: NodeId, dst: NodeId, d: usize) -> HopGeometry {
    let k = topo.radix(d);
    let cs = topo.coord_along(src, d);
    let cd = topo.coord_along(dst, d);
    if cs == cd {
        return HopGeometry {
            plus: None,
            minus: None,
        };
    }
    match topo.kind() {
        TopologyKind::Torus => {
            let fwd = (cd + k - cs) % k; // hops going Plus
            let bwd = k - fwd; // hops going Minus
            if fwd < bwd {
                HopGeometry {
                    plus: Some(fwd),
                    minus: None,
                }
            } else if bwd < fwd {
                HopGeometry {
                    plus: None,
                    minus: Some(bwd),
                }
            } else {
                // Even radix, exactly half-way: both directions are minimal.
                HopGeometry {
                    plus: Some(fwd),
                    minus: Some(bwd),
                }
            }
        }
        TopologyKind::Mesh => {
            if cd > cs {
                HopGeometry {
                    plus: Some(cd - cs),
                    minus: None,
                }
            } else {
                HopGeometry {
                    plus: None,
                    minus: Some(cs - cd),
                }
            }
        }
    }
}
