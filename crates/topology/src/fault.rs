//! Fault sets: degraded-topology deltas for the static analyzer.
//!
//! A [`FaultSet`] is a sparse delta over a base [`Topology`]: a bitset of
//! failed unidirectional inter-router links plus a bitset of failed
//! routers. The base topology object is never mutated — every consumer
//! (degraded routing, the incremental verifier) interprets the pair
//! `(topology, faults)` together, which is what makes fault sweeps cheap:
//! one immutable topology, hundreds of tiny deltas.
//!
//! Conventions:
//! * links fail **bidirectionally**: [`FaultSet::fail_link`] takes one
//!   directed end `(node, dim, dir)` and downs both directions of the
//!   physical channel;
//! * a failed router downs every link incident to it, and its NICs
//!   neither generate nor receive traffic;
//! * [`FaultSet::distance_field`] is the degraded-topology BFS distance
//!   to a destination router ([`UNREACHABLE`] when disconnected) — the
//!   geometry that degraded routing steers by.

use crate::coord::NodeId;
use crate::geometry::Direction;
use crate::torus::Topology;

/// Distance-field value for a router that cannot reach the destination
/// over the degraded topology (also assigned to failed routers).
pub const UNREACHABLE: u32 = u32::MAX;

/// A set of failed links and routers over a base [`Topology`].
///
/// ```
/// use mdd_topology::{Direction, FaultSet, NodeId, Topology, TopologyKind};
/// let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
/// let mut f = FaultSet::new(&topo);
/// assert!(f.is_empty());
/// f.fail_link(&topo, NodeId(0), 0, Direction::Plus);
/// assert!(f.link_down(NodeId(0), 0, Direction::Plus));
/// assert!(f.link_down(NodeId(1), 0, Direction::Minus), "links fail bidirectionally");
/// assert_eq!(f.distance_field(&topo, NodeId(1))[0], 3, "detour around the cut");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSet {
    /// Network ports per router (`2 * dims`), for link indexing.
    net_ports: usize,
    /// Bitset over `node * net_ports + port`: failed directed links.
    links: Vec<u64>,
    /// Bitset over routers: failed routers.
    routers: Vec<u64>,
    /// Failed directed links, in failure order (for labels and dirtiness).
    failed_links: Vec<(NodeId, usize, Direction)>,
    /// Failed routers, in failure order.
    failed_routers: Vec<NodeId>,
}

impl FaultSet {
    /// An empty fault set over `topo` (nothing failed).
    pub fn new(topo: &Topology) -> Self {
        let net_ports = topo.network_ports();
        let nbits = topo.num_routers() as usize * net_ports;
        FaultSet {
            net_ports,
            links: vec![0; nbits.div_ceil(64)],
            routers: vec![0; (topo.num_routers() as usize).div_ceil(64)],
            failed_links: Vec::new(),
            failed_routers: Vec::new(),
        }
    }

    /// True when nothing has failed: the degraded topology *is* the base
    /// topology, and every consumer short-circuits to the base behavior.
    pub fn is_empty(&self) -> bool {
        self.failed_links.is_empty() && self.failed_routers.is_empty()
    }

    /// Number of failed bidirectional links (router-incident downs not
    /// included — see [`FaultSet::num_failed_routers`]).
    pub fn num_failed_links(&self) -> usize {
        self.failed_links.len()
    }

    /// Number of failed routers.
    pub fn num_failed_routers(&self) -> usize {
        self.failed_routers.len()
    }

    fn link_bit(&self, node: NodeId, d: usize, dir: Direction) -> usize {
        let port = 2 * d + usize::from(dir == Direction::Minus);
        node.index() * self.net_ports + port
    }

    fn set_link_bit(&mut self, node: NodeId, d: usize, dir: Direction) {
        let b = self.link_bit(node, d, dir);
        self.links[b / 64] |= 1 << (b % 64);
    }

    /// Fail the physical channel leaving `node` in direction `dir` along
    /// dimension `d` — both directions go down. No-op on a mesh boundary
    /// where the link does not exist.
    pub fn fail_link(&mut self, topo: &Topology, node: NodeId, d: usize, dir: Direction) {
        let Some(peer) = topo.neighbor(node, d, dir) else {
            return;
        };
        if self.link_down(node, d, dir) {
            return;
        }
        self.set_link_bit(node, d, dir);
        self.set_link_bit(peer, d, dir.opposite());
        self.failed_links.push((node, d, dir));
    }

    /// Fail router `node`: the router itself plus every incident link.
    pub fn fail_router(&mut self, topo: &Topology, node: NodeId) {
        if self.router_down(node) {
            return;
        }
        self.routers[node.index() / 64] |= 1 << (node.index() % 64);
        self.failed_routers.push(node);
        for d in 0..topo.dims() {
            for dir in [Direction::Plus, Direction::Minus] {
                if let Some(peer) = topo.neighbor(node, d, dir) {
                    // Mark both directed ends down without recording a
                    // separate link fault (the router fault subsumes it).
                    self.set_link_bit(node, d, dir);
                    self.set_link_bit(peer, d, dir.opposite());
                }
            }
        }
    }

    /// True when the directed link leaving `node` in `dir` along `d` is
    /// down (either failed directly or incident to a failed router).
    #[inline]
    pub fn link_down(&self, node: NodeId, d: usize, dir: Direction) -> bool {
        let b = self.link_bit(node, d, dir);
        (self.links[b / 64] >> (b % 64)) & 1 == 1
    }

    /// True when router `node` has failed.
    #[inline]
    pub fn router_down(&self, node: NodeId) -> bool {
        (self.routers[node.index() / 64] >> (node.index() % 64)) & 1 == 1
    }

    /// The directly failed links, in failure order (one entry per
    /// bidirectional channel, as passed to [`FaultSet::fail_link`]).
    pub fn failed_links(&self) -> &[(NodeId, usize, Direction)] {
        &self.failed_links
    }

    /// The failed routers, in failure order.
    pub fn failed_routers(&self) -> &[NodeId] {
        &self.failed_routers
    }

    /// A short stable label for reports: `link r12+d0 | router r3`,
    /// `+`-joined for compound fault sets, `none` when empty.
    pub fn label(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let mut parts: Vec<String> = self
            .failed_routers
            .iter()
            .map(|r| format!("router r{}", r.index()))
            .collect();
        parts.extend(self.failed_links.iter().map(|&(n, d, dir)| {
            let sign = if dir == Direction::Plus { '+' } else { '-' };
            format!("link r{}{}d{}", n.index(), sign, d)
        }));
        parts.join(" + ")
    }

    /// BFS hop distances to `dst` over the degraded topology: entry `n`
    /// is the minimum number of live hops from router `n` to `dst`, or
    /// [`UNREACHABLE`] when no live path exists (failed routers
    /// included). With an empty fault set this equals
    /// [`Topology::distance`] everywhere.
    pub fn distance_field(&self, topo: &Topology, dst: NodeId) -> Vec<u32> {
        let nr = topo.num_routers() as usize;
        let mut dist = vec![UNREACHABLE; nr];
        if self.router_down(dst) {
            return dist;
        }
        dist[dst.index()] = 0;
        let mut frontier = vec![dst];
        let mut next = Vec::new();
        let mut hops = 0u32;
        while !frontier.is_empty() {
            hops += 1;
            for &x in &frontier {
                // In-neighbors of `x`: a router `y = neighbor(x, d, dir)`
                // reaches `x` over its own directed link `(y, d, !dir)`.
                for d in 0..topo.dims() {
                    for dir in [Direction::Plus, Direction::Minus] {
                        let Some(y) = topo.neighbor(x, d, dir) else {
                            continue;
                        };
                        if dist[y.index()] != UNREACHABLE
                            || self.router_down(y)
                            || self.link_down(y, d, dir.opposite())
                        {
                            continue;
                        }
                        dist[y.index()] = hops;
                        next.push(y);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        dist
    }

    /// Distance fields to every destination router, indexed by router id
    /// (entry `r` is [`FaultSet::distance_field`] for `NodeId(r)`).
    pub fn distance_fields(&self, topo: &Topology) -> Vec<Vec<u32>> {
        topo.routers().map(|r| self.distance_field(topo, r)).collect()
    }
}

/// Every single-bidirectional-link fault of `topo`, one [`FaultSet`] per
/// physical channel. Channels are enumerated canonically as `(node, d,
/// Plus)` — each bidirectional channel has exactly one positive-direction
/// end, so this covers all of them exactly once (mesh boundaries simply
/// lack the corresponding entries).
pub fn single_link_faults(topo: &Topology) -> Vec<FaultSet> {
    let mut out = Vec::new();
    for node in topo.routers() {
        for d in 0..topo.dims() {
            if topo.neighbor(node, d, Direction::Plus).is_none() {
                continue;
            }
            let mut f = FaultSet::new(topo);
            f.fail_link(topo, node, d, Direction::Plus);
            out.push(f);
        }
    }
    out
}
