//! Hot-path benchmark: end-to-end simulator throughput (cycles/sec) per
//! scheme on a saturated 8×8 torus — the number that bounds how many load
//! points per hour every figure harness can produce.
//!
//! Besides the criterion timing lines, the binary measures cycles/sec
//! directly and writes them as JSON for the perf trajectory:
//!
//! * `HOTPATH_OUT=<path>` — where to write the JSON (default
//!   `BENCH_hotpath.json` in the current directory);
//! * `HOTPATH_QUICK=1` — CI smoke mode: fewer samples, shorter runs.

use criterion::{black_box, Criterion};
use mdd_core::{PatternSpec, Scheme, SimConfig, Simulator};
use std::time::Instant;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn quick() -> bool {
    std::env::var("HOTPATH_QUICK").is_ok_and(|v| v != "0")
}

/// A simulator warmed into saturation steady state (no measurement
/// window: the benchmark drives cycles itself).
fn saturated(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64) -> Simulator {
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).expect("benchmark config is feasible");
    sim.run_cycles(if quick() { 500 } else { 2_000 });
    sim
}

/// The benchmarked scheme points. SA runs PAT100 (its 4-VC-feasible
/// pattern); DR and PR run PAT271 like the paper's saturation studies.
fn points() -> Vec<(&'static str, Simulator)> {
    vec![
        ("sa", saturated(SA, PatternSpec::pat100(), 4, 0.30)),
        (
            "dr",
            saturated(Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4, 0.30),
        ),
        (
            "pr",
            saturated(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.30),
        ),
    ]
}

fn bench_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    if quick() {
        g.sample_size(5);
    }
    for (name, mut sim) in points() {
        g.bench_function(format!("{name}_8x8_vc4_loaded_100cycles"), |b| {
            b.iter(|| {
                sim.run_cycles(100);
                black_box(sim.cycle())
            });
        });
    }
    g.finish();
}

/// Direct cycles/sec measurement (steady state, best of `reps` runs) —
/// what the JSON trajectory records.
fn cycles_per_sec(sim: &mut Simulator, cycles: u64, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        sim.run_cycles(cycles);
        best = best.min(t.elapsed().as_secs_f64());
    }
    cycles as f64 / best
}

fn write_json() {
    let (cycles, reps) = if quick() { (2_000, 3) } else { (10_000, 5) };
    let mut entries = Vec::new();
    for (name, mut sim) in points() {
        let cps = cycles_per_sec(&mut sim, cycles, reps);
        println!("hotpath/{name}: {cps:.0} cycles/sec");
        entries.push(format!(
            "  {{\"scheme\": \"{name}\", \"cycles_per_sec\": {cps:.1}, \"cycles\": {cycles}}}"
        ));
    }
    let out = std::env::var("HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    let json = format!(
        "{{\"bench\": \"hotpath\", \"topology\": \"8x8 torus\", \"vcs\": 4, \
         \"load\": 0.30, \"results\": [\n{}\n]}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    println!("wrote {out}");
}

fn main() {
    let mut criterion = Criterion::default();
    bench_hotpath(&mut criterion);
    write_json();
}
