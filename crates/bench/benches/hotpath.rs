//! Hot-path benchmark: end-to-end simulator throughput (cycles/sec) per
//! scheme on an 8×8 torus across a load ladder — the numbers that bound
//! how many load points per hour every figure harness can produce.
//!
//! Three rungs per scheme: 0.05 (nearly idle — the activity-driven
//! scheduler's home turf), 0.30 (the historical hotpath point) and 0.55
//! (approaching saturation — the dense-scan worst case). Besides the
//! criterion timing lines, the binary measures cycles/sec directly and
//! writes every rung, its wall time, and the activity-skip counters as
//! JSON for the perf trajectory:
//!
//! * `HOTPATH_OUT=<path>` — where to write the JSON (default
//!   `BENCH_hotpath.json` in the current directory);
//! * `HOTPATH_QUICK=1` — CI smoke mode: fewer samples, shorter runs.
//!
//! Both variables are parsed by [`mdd_bench::cli::hotpath_quick`] /
//! [`mdd_bench::cli::hotpath_out`]; malformed values abort with status 2
//! instead of silently benchmarking at the wrong scale.

use criterion::{black_box, Criterion};
use mdd_bench::cli::{hotpath_out, hotpath_quick};
use mdd_core::{PatternSpec, Scheme, SimConfig, Simulator};
use mdd_obs::CounterId;
use std::time::Instant;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

/// The benchmarked load ladder (flits/node/cycle).
const LOADS: [f64; 3] = [0.05, 0.30, 0.55];

fn quick() -> bool {
    hotpath_quick()
}

/// A simulator warmed into steady state at `load` (no measurement
/// window: the benchmark drives cycles itself).
fn warmed(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64) -> Simulator {
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).expect("benchmark config is feasible");
    sim.run_cycles(if quick() { 500 } else { 2_000 });
    sim
}

/// The benchmarked scheme points at one load. SA runs PAT100 (its
/// 4-VC-feasible pattern); DR and PR run PAT271 like the paper's
/// saturation studies.
fn points(load: f64) -> Vec<(&'static str, Simulator)> {
    vec![
        ("sa", warmed(SA, PatternSpec::pat100(), 4, load)),
        (
            "dr",
            warmed(Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4, load),
        ),
        (
            "pr",
            warmed(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, load),
        ),
    ]
}

fn bench_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    if quick() {
        g.sample_size(5);
    }
    for load in LOADS {
        for (name, mut sim) in points(load) {
            g.bench_function(format!("{name}_8x8_vc4_load{load:.2}_100cycles"), |b| {
                b.iter(|| {
                    sim.run_cycles(100);
                    black_box(sim.cycle())
                });
            });
        }
    }
    g.finish();
}

/// Direct cycles/sec measurement (steady state, best of `reps` runs) —
/// what the JSON trajectory records. Returns `(cycles_per_sec,
/// best_wall_secs)`.
fn cycles_per_sec(sim: &mut Simulator, cycles: u64, reps: u32) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        sim.run_cycles(cycles);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (cycles as f64 / best, best)
}

fn write_json() {
    let (cycles, reps) = if quick() { (2_000, 3) } else { (10_000, 5) };
    // Install the observability layer so the skip counters prove (or
    // disprove) that the activity-driven path actually engaged per rung.
    mdd_obs::install(16);
    let mut entries = Vec::new();
    for load in LOADS {
        for (name, mut sim) in points(load) {
            let skipped0 = (
                mdd_obs::counters_snapshot().get(CounterId::RouterTicksSkipped),
                mdd_obs::counters_snapshot().get(CounterId::NicTicksSkipped),
            );
            let (cps, wall) = cycles_per_sec(&mut sim, cycles, reps);
            let snap = mdd_obs::counters_snapshot();
            let router_skips = snap.get(CounterId::RouterTicksSkipped) - skipped0.0;
            let nic_skips = snap.get(CounterId::NicTicksSkipped) - skipped0.1;
            println!("hotpath/{name}@{load:.2}: {cps:.0} cycles/sec");
            entries.push(format!(
                "  {{\"scheme\": \"{name}\", \"load\": {load:.2}, \
                 \"cycles_per_sec\": {cps:.1}, \"cycles\": {cycles}, \
                 \"wall_secs\": {wall:.4}, \
                 \"router_ticks_skipped\": {router_skips}, \
                 \"nic_ticks_skipped\": {nic_skips}}}"
            ));
        }
    }
    mdd_obs::uninstall();
    let out = hotpath_out();
    let json = format!(
        "{{\"bench\": \"hotpath\", \"topology\": \"8x8 torus\", \"vcs\": 4, \
         \"loads\": [0.05, 0.30, 0.55], \"results\": [\n{}\n]}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    println!("wrote {}", out.display());
}

fn main() {
    let mut criterion = Criterion::default();
    bench_hotpath(&mut criterion);
    write_json();
}
