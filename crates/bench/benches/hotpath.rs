//! Hot-path benchmark: end-to-end simulator throughput (cycles/sec) per
//! scheme on an 8×8 torus across a load ladder — the numbers that bound
//! how many load points per hour every figure harness can produce.
//!
//! Three rungs per scheme: 0.05 (nearly idle — the activity-driven
//! scheduler's home turf), 0.30 (the historical hotpath point) and 0.55
//! (approaching saturation — the dense-scan worst case). Besides the
//! criterion timing lines, the binary measures cycles/sec directly and
//! writes every rung, its wall time, and the activity-skip counters as
//! JSON for the perf trajectory, plus a `shards` block timing the 64x64
//! saturated rung at shards 1/2/4 (single-run scaling):
//!
//! * `HOTPATH_OUT=<path>` — where to write the JSON (default
//!   `BENCH_hotpath.json` in the current directory);
//! * `HOTPATH_QUICK=1` — CI smoke mode: fewer samples, shorter runs.
//!
//! Both variables are parsed by [`mdd_bench::cli::hotpath_quick`] /
//! [`mdd_bench::cli::hotpath_out`]; malformed values abort with status 2
//! instead of silently benchmarking at the wrong scale.

use criterion::{black_box, Criterion};
use mdd_bench::cli::{hotpath_out, hotpath_quick};
use mdd_core::{PatternSpec, Scheme, SimConfig, Simulator};
use mdd_obs::CounterId;
use std::time::Instant;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

/// The benchmarked load ladder (flits/node/cycle).
const LOADS: [f64; 3] = [0.05, 0.30, 0.55];

/// Fixed per-node load for the size ladder (big-but-sparse: the regime
/// the lazily-materialized state and hierarchical wake sets target — a
/// mostly quiescent machine where dense per-router structure, not
/// activity, used to dominate per-cycle cost).
const LADDER_LOAD: f64 = 0.005;

fn quick() -> bool {
    hotpath_quick()
}

/// A simulator warmed into steady state at `load` (no measurement
/// window: the benchmark drives cycles itself).
fn warmed(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64) -> Simulator {
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).expect("benchmark config is feasible");
    sim.run_cycles(if quick() { 500 } else { 2_000 });
    sim
}

/// The benchmarked scheme points at one load. SA runs PAT100 (its
/// 4-VC-feasible pattern); DR and PR run PAT271 like the paper's
/// saturation studies.
fn points(load: f64) -> Vec<(&'static str, Simulator)> {
    vec![
        ("sa", warmed(SA, PatternSpec::pat100(), 4, load)),
        (
            "dr",
            warmed(Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4, load),
        ),
        (
            "pr",
            warmed(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, load),
        ),
    ]
}

fn bench_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    if quick() {
        g.sample_size(5);
    }
    for load in LOADS {
        for (name, mut sim) in points(load) {
            g.bench_function(format!("{name}_8x8_vc4_load{load:.2}_100cycles"), |b| {
                b.iter(|| {
                    sim.run_cycles(100);
                    black_box(sim.cycle())
                });
            });
        }
    }
    g.finish();
}

/// Direct cycles/sec measurement (steady state, best of `reps` runs) —
/// what the JSON trajectory records. Returns `(cycles_per_sec,
/// best_wall_secs)`.
fn cycles_per_sec(sim: &mut Simulator, cycles: u64, reps: u32) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        sim.run_cycles(cycles);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (cycles as f64 / best, best)
}

fn write_json() {
    let (cycles, reps) = if quick() { (2_000, 3) } else { (10_000, 5) };
    // Install the observability layer so the skip counters prove (or
    // disprove) that the activity-driven path actually engaged per rung.
    mdd_obs::install(16);
    let mut entries = Vec::new();
    for load in LOADS {
        for (name, mut sim) in points(load) {
            let skipped0 = (
                mdd_obs::counters_snapshot().get(CounterId::RouterTicksSkipped),
                mdd_obs::counters_snapshot().get(CounterId::NicTicksSkipped),
            );
            let (cps, wall) = cycles_per_sec(&mut sim, cycles, reps);
            let snap = mdd_obs::counters_snapshot();
            let router_skips = snap.get(CounterId::RouterTicksSkipped) - skipped0.0;
            let nic_skips = snap.get(CounterId::NicTicksSkipped) - skipped0.1;
            println!("hotpath/{name}@{load:.2}: {cps:.0} cycles/sec");
            entries.push(format!(
                "  {{\"scheme\": \"{name}\", \"load\": {load:.2}, \
                 \"cycles_per_sec\": {cps:.1}, \"cycles\": {cycles}, \
                 \"wall_secs\": {wall:.4}, \
                 \"router_ticks_skipped\": {router_skips}, \
                 \"nic_ticks_skipped\": {nic_skips}}}"
            ));
        }
    }
    // Size ladder: PR at a fixed per-node load across the torus rungs.
    // Destinations follow the Neighbor permutation and the protocol is
    // PAT100 (pure request-reply, no forwarded third-party chains) so the
    // hop count — and with it per-node activity — stays constant as the
    // network grows; under uniform or chain-forwarding traffic the
    // average path length scales with the radix and the comparison would
    // conflate simulator cost with traffic intensity. Arrivals are the
    // sparse geometric mode, so generation (like everything else on this
    // path) costs activity, not router count. With lazily-materialized
    // router state and the hierarchical wake set, per-cycle cost must
    // then track *activity*: going up each rung, wall cost per cycle may
    // grow by strictly less than the router-count multiple (sub-linear
    // growth; the dense baseline grows at least linearly).
    let ladder_cycles = if quick() { 1_000 } else { 5_000 };
    let mut ladder = Vec::new();
    let mut base_cost: Option<f64> = None;
    for rung in SimConfig::scale_ladder() {
        let topo = rung
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("x");
        let routers: u32 = rung.iter().product();
        let mut cfg = SimConfig::paper_default(
            Scheme::ProgressiveRecovery,
            PatternSpec::pat100(),
            4,
            LADDER_LOAD,
        );
        cfg.radix = rung.to_vec();
        cfg.dest = mdd_core::DestPattern::Neighbor;
        cfg.sparse_arrivals = true;
        // Gauge sampling walks every NIC, so a fixed period would charge
        // the big rungs O(N) observability cost per sample that the 8x8
        // rung never pays; scaling the period with the router count keeps
        // the *amortized per-router* cost identical across rungs (gauges
        // are excluded from the canonical config hash — they cannot
        // affect results).
        cfg.obs_sample_every = u64::from(routers).max(64);
        cfg.warmup = 0;
        cfg.measure = 0;
        let mut sim = Simulator::new(cfg).expect("ladder config is feasible");
        sim.run_cycles(if quick() { 500 } else { 2_000 });
        let (cps, wall) = cycles_per_sec(&mut sim, ladder_cycles, reps);
        let per_cycle_cost = 1.0 / cps;
        let base = *base_cost.get_or_insert(per_cycle_cost);
        let cost_ratio = per_cycle_cost / base;
        let node_ratio = f64::from(routers) / 64.0;
        println!(
            "hotpath/ladder pr@{LADDER_LOAD:.3} {topo}: {cps:.0} cycles/sec \
             (cost x{cost_ratio:.1} for x{node_ratio:.0} routers)"
        );
        assert!(
            cost_ratio < node_ratio || node_ratio <= 1.0,
            "per-cycle cost grew x{cost_ratio:.2} from 8x8 to {topo} — not \
             sub-linear in the x{node_ratio:.0} router growth"
        );
        ladder.push(format!(
            "  {{\"topo\": \"{topo}\", \"routers\": {routers}, \"scheme\": \"pr\", \
             \"load\": {LADDER_LOAD:.3}, \"cycles_per_sec\": {cps:.1}, \
             \"wall_secs\": {wall:.4}, \"cost_ratio_vs_8x8\": {cost_ratio:.3}, \
             \"router_ratio_vs_8x8\": {node_ratio:.1}}}"
        ));
    }
    // Sharded single-run scaling: the 64x64 saturated rung at shards
    // 1/2/4. Results are bit-identical at any shard count (enforced by
    // tests/sharding.rs and the ci.sh smoke), so this block measures
    // pure execution-strategy cost: the speedup column is what intra-run
    // parallelism buys on this host. On a single-core machine shards > 1
    // only adds mailbox/barrier overhead — the entries still get written
    // so the trajectory records that cost honestly.
    let shard_cycles = if quick() { 300 } else { 1_500 };
    let mut shard_entries = Vec::new();
    let mut shards1_cost: Option<f64> = None;
    for shards in [1u32, 2, 4] {
        let mut cfg = SimConfig::paper_default(
            Scheme::ProgressiveRecovery,
            PatternSpec::pat271(),
            4,
            0.30,
        );
        cfg.radix = vec![64, 64];
        cfg.shards = shards;
        cfg.obs_sample_every = 4_096;
        cfg.warmup = 0;
        cfg.measure = 0;
        let mut sim = Simulator::new(cfg).expect("shard rung config is feasible");
        sim.run_cycles(if quick() { 200 } else { 1_000 });
        let (cps, wall) = cycles_per_sec(&mut sim, shard_cycles, reps);
        let base = *shards1_cost.get_or_insert(cps);
        let speedup = cps / base;
        println!("hotpath/shards pr@0.30 64x64 shards={shards}: {cps:.0} cycles/sec (x{speedup:.2} vs shards=1)");
        shard_entries.push(format!(
            "  {{\"topo\": \"64x64\", \"scheme\": \"pr\", \"load\": 0.30, \
             \"shards\": {shards}, \"cycles_per_sec\": {cps:.1}, \
             \"wall_secs\": {wall:.4}, \"speedup_vs_shards1\": {speedup:.3}}}"
        ));
    }
    mdd_obs::uninstall();
    let out = hotpath_out();
    let json = format!(
        "{{\"bench\": \"hotpath\", \"topology\": \"8x8 torus\", \"vcs\": 4, \
         \"loads\": [0.05, 0.30, 0.55], \"results\": [\n{}\n],\n\
         \"ladder\": [\n{}\n],\n\
         \"shards\": [\n{}\n]}}\n",
        entries.join(",\n"),
        ladder.join(",\n"),
        shard_entries.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    println!("wrote {}", out.display());
}

fn main() {
    let mut criterion = Criterion::default();
    bench_hotpath(&mut criterion);
    write_json();
}
