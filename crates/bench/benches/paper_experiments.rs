//! Criterion benches, one per paper table/figure: each runs a scaled-down
//! but structurally identical slice of the corresponding experiment
//! (same topology, scheme wiring and measurement path), so `cargo bench`
//! exercises every harness and tracks simulator performance per
//! configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use mdd_bench::characterize_app;
use mdd_core::{run_point, PatternSpec, QueueOrg, Scheme, SimConfig};
use mdd_traffic::AppModel;
use std::hint::black_box;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

/// One short measurement at a moderate load for a figure configuration.
fn point(scheme: Scheme, pattern: PatternSpec, vcs: u8, org: Option<QueueOrg>) -> f64 {
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, 0.0);
    cfg.queue_org = org;
    cfg.warmup = 300;
    cfg.measure = 700;
    run_point(&cfg, 0.20).expect("feasible").throughput
}

fn bench_fig8_vc4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_vc4");
    g.sample_size(10);
    g.bench_function("pr_pat721", |b| {
        b.iter(|| black_box(point(Scheme::ProgressiveRecovery, PatternSpec::pat721(), 4, None)));
    });
    g.bench_function("dr_pat721", |b| {
        b.iter(|| black_box(point(Scheme::DeflectiveRecovery, PatternSpec::pat721(), 4, None)));
    });
    g.bench_function("sa_pat100", |b| {
        b.iter(|| black_box(point(SA, PatternSpec::pat100(), 4, None)));
    });
    g.finish();
}

fn bench_fig9_vc8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_vc8");
    g.sample_size(10);
    for (name, scheme) in [
        ("sa", SA),
        ("dr", Scheme::DeflectiveRecovery),
        ("pr", Scheme::ProgressiveRecovery),
    ] {
        g.bench_function(format!("{name}_pat271"), |b| {
            b.iter(|| black_box(point(scheme, PatternSpec::pat271(), 8, None)));
        });
    }
    g.finish();
}

fn bench_fig10_vc16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_vc16");
    g.sample_size(10);
    for (name, scheme) in [
        ("sa", SA),
        ("dr", Scheme::DeflectiveRecovery),
        ("pr", Scheme::ProgressiveRecovery),
    ] {
        g.bench_function(format!("{name}_pat451"), |b| {
            b.iter(|| black_box(point(scheme, PatternSpec::pat451(), 16, None)));
        });
    }
    g.finish();
}

fn bench_fig11_queue_sep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_queue_sep");
    g.sample_size(10);
    g.bench_function("pr_shared", |b| {
        b.iter(|| black_box(point(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 16, None)));
    });
    g.bench_function("pr_qa", |b| {
        b.iter(|| {
            black_box(point(
                Scheme::ProgressiveRecovery,
                PatternSpec::pat271(),
                16,
                Some(QueueOrg::PerType),
            ))
        });
    });
    g.bench_function("dr_qa", |b| {
        b.iter(|| {
            black_box(point(
                Scheme::DeflectiveRecovery,
                PatternSpec::pat271(),
                16,
                Some(QueueOrg::PerType),
            ))
        });
    });
    g.finish();
}

fn bench_fig6_loads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_loads");
    g.sample_size(10);
    g.bench_function("radix_4x4", |b| {
        b.iter(|| black_box(characterize_app(AppModel::radix(), &[4, 4], 1, 4_000, 42).mean_load));
    });
    g.finish();
}

fn bench_table1_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_traces");
    g.sample_size(10);
    g.bench_function("water_4x4", |b| {
        b.iter(|| black_box(characterize_app(AppModel::water(), &[4, 4], 1, 4_000, 42).table1));
    });
    g.finish();
}

fn bench_deadlock_freq(c: &mut Criterion) {
    let mut g = c.benchmark_group("deadlock_freq");
    g.sample_size(10);
    g.bench_function("bristled_2x2_fft", |b| {
        b.iter(|| black_box(characterize_app(AppModel::fft(), &[2, 2], 4, 4_000, 42).deadlocks));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig8_vc4,
    bench_fig9_vc8,
    bench_fig10_vc16,
    bench_fig11_queue_sep,
    bench_fig6_loads,
    bench_table1_traces,
    bench_deadlock_freq
);
criterion_main!(benches);
