//! Microbenchmarks of the simulator's hot kernels: the per-cycle network
//! pipeline, wait-for-graph construction and knot detection, the recovery
//! lane, and workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use mdd_core::{build_waitfor_graph, PatternSpec, Scheme, SimConfig, Simulator};
use mdd_deadlock::{RecoveryLane, WaitForGraph};
use mdd_protocol::{IdAlloc, PatternSpec as Pat};
use mdd_topology::{RecoveryRing, Topology, TopologyKind};
use mdd_traffic::{DestPattern, SyntheticTraffic, TrafficSource};
use std::hint::black_box;
use std::sync::Arc;

fn saturated_sim() -> Simulator {
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat271(),
        4,
        0.30,
    );
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).unwrap();
    sim.run_cycles(2_000); // reach steady state
    sim
}

fn bench_network_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("router_cycle");
    let mut sim = saturated_sim();
    g.bench_function("pr_8x8_vc4_loaded_100cycles", |b| {
        b.iter(|| {
            sim.run_cycles(100);
            black_box(sim.cycle())
        });
    });
    g.finish();
}

fn bench_cwg(c: &mut Criterion) {
    let mut g = c.benchmark_group("cwg_detection");
    let sim = saturated_sim();
    g.bench_function("build_8x8_loaded", |b| {
        b.iter(|| black_box(build_waitfor_graph(&sim).num_edges()));
    });
    g.bench_function("build_and_knots_8x8_loaded", |b| {
        b.iter(|| black_box(build_waitfor_graph(&sim).knots().len()));
    });
    let mut big = WaitForGraph::new(4096);
    let mut x = 12345u64;
    for _ in 0..16384 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (x >> 33) % 4096;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = (x >> 33) % 4096;
        big.add_edge(a as u32, b as u32);
    }
    g.bench_function("tarjan_4096v_16384e", |b| {
        b.iter(|| black_box(big.sccs().len()));
    });
    g.finish();
}

fn bench_recovery_lane(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_lane");
    let topo = Topology::new(TopologyKind::Torus, &[8, 8], 1);
    let ring = RecoveryRing::new(&topo);
    let pat = Pat::pat271();
    let mut tr = SyntheticTraffic::new(Arc::new(pat), 64, 0.2, DestPattern::Random, 1);
    let mut ids = IdAlloc::new();
    let msg = tr.make_request(mdd_topology::NicId(0), 0, &mut ids);
    let len = msg.length_flits;
    let mut store = mdd_protocol::MessageStore::new();
    let h = store.insert(msg);
    g.bench_function("send_poll_roundtrip", |b| {
        let mut lane = RecoveryLane::new(ring.clone(), 1);
        let mut now = 0u64;
        b.iter(|| {
            let arrive = lane.send(h, len, mdd_topology::NodeId(0), mdd_topology::NodeId(37), now);
            now = arrive;
            black_box(lane.poll(now).is_some())
        });
    });
    g.finish();
}

fn bench_traffic_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic_generation");
    let pat = Arc::new(Pat::pat271());
    g.bench_function("synthetic_64nodes_1kcycles", |b| {
        let mut tr = SyntheticTraffic::new(pat.clone(), 64, 0.4, DestPattern::Random, 7);
        let mut ids = IdAlloc::new();
        let mut store = mdd_protocol::MessageStore::new();
        let mut cycle = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                tr.tick(cycle, &mut ids, &mut store);
                cycle += 1;
            }
            // Drain the backlog so memory stays bounded across iterations.
            for n in 0..64 {
                while let Some(h) = tr.pop_pending(mdd_topology::NicId(n)) {
                    store.remove(h);
                }
            }
            black_box(tr.generated)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_network_cycle,
    bench_cwg,
    bench_recovery_lane,
    bench_traffic_gen
);
criterion_main!(benches);
