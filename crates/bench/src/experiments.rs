//! Per-experiment drivers (see DESIGN.md §4 for the experiment index).

use mdd_coherence::{CoherenceEngine, CoherentTraffic};
use mdd_core::{BnfCurve, PatternSpec, QueueOrg, Scheme, SimConfig, SimResult, Simulator};
use mdd_engine::Engine;
use mdd_stats::{Histogram, Table};
use mdd_traffic::AppModel;
use std::io::Write as _;
use std::path::Path;

/// Scale knob so Criterion benches can run the same experiments quickly.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Warm-up cycles per simulation.
    pub warmup: u64,
    /// Measured cycles per simulation.
    pub measure: u64,
    /// Number of applied-load points per curve.
    pub load_points: usize,
}

impl RunScale {
    /// Full paper scale: 30k measured cycles (Section 4.3.1).
    pub fn full() -> Self {
        RunScale {
            warmup: 10_000,
            measure: 30_000,
            load_points: 9,
        }
    }

    /// Reduced scale for constrained machines: shorter windows and fewer
    /// points, same topology and parameters. Shapes are preserved; only
    /// statistical resolution drops.
    pub fn fast() -> Self {
        RunScale {
            warmup: 4_000,
            measure: 12_000,
            load_points: 7,
        }
    }

    /// Small scale for Criterion benches and smoke tests.
    pub fn smoke() -> Self {
        RunScale {
            warmup: 1_000,
            measure: 2_000,
            load_points: 3,
        }
    }
}

/// One scheme entry of a figure panel: label, scheme, optional queue-org
/// override.
#[derive(Clone, Copy, Debug)]
pub struct SchemeEntry {
    /// Row label ("SA", "DR", "PR", "DR-QA", ...).
    pub label: &'static str,
    /// The scheme.
    pub scheme: Scheme,
    /// Queue-organization override (the QA configurations).
    pub org: Option<QueueOrg>,
}

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn entry(label: &'static str, scheme: Scheme) -> SchemeEntry {
    SchemeEntry {
        label,
        scheme,
        org: None,
    }
}

/// The BNF panels of one figure: per pattern, the curves of every
/// applicable scheme.
#[derive(Debug)]
pub struct FigureResult {
    /// Figure id ("fig8", ...).
    pub id: &'static str,
    /// `(pattern name, curves)` per panel.
    pub panels: Vec<(String, Vec<BnfCurve>)>,
    /// Points freshly simulated while producing this figure.
    pub points_simulated: u64,
    /// Points served from the persistent result cache.
    pub points_cached: u64,
    /// Points that failed (reported, not fatal — curves are assembled
    /// from the surviving points).
    pub points_failed: u64,
}

impl FigureResult {
    /// Render all panels as one aligned table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "pattern", "scheme", "load", "throughput", "latency", "deadlocks",
        ]);
        for (pat, curves) in &self.panels {
            for c in curves {
                for p in &c.points {
                    t.row(vec![
                        pat.clone(),
                        c.label.clone(),
                        format!("{:.3}", p.applied_load),
                        format!("{:.4}", p.throughput),
                        format!("{:.1}", p.latency),
                        p.deadlocks.to_string(),
                    ]);
                }
            }
        }
        t.render()
    }

    /// Render the saturation-throughput summary (the paper's headline
    /// comparison per panel).
    pub fn render_summary(&self) -> String {
        let mut t = Table::new(vec!["pattern", "scheme", "saturation throughput"]);
        for (pat, curves) in &self.panels {
            for c in curves {
                t.row(vec![
                    pat.clone(),
                    c.label.clone(),
                    format!("{:.4}", c.saturation_throughput()),
                ]);
            }
        }
        t.render()
    }

    /// ASCII BNF plots, one per panel (the visual form of the paper's
    /// figures).
    pub fn render_plots(&self) -> String {
        let mut out = String::new();
        for (pat, curves) in &self.panels {
            out.push_str(&format!("--- {pat} ---\n"));
            out.push_str(&mdd_stats::render_bnf(curves, 64, 18));
            out.push('\n');
        }
        out
    }

    /// One-line account of where the points came from, e.g.
    /// `fig8: 27 points simulated, 0 cached`.
    pub fn engine_summary(&self) -> String {
        let mut s = format!(
            "{}: {} points simulated, {} cached",
            self.id, self.points_simulated, self.points_cached
        );
        if self.points_failed > 0 {
            s.push_str(&format!(", {} FAILED", self.points_failed));
        }
        s
    }

    /// CSV of every point.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec![
            "pattern", "scheme", "load", "throughput", "latency", "deadlocks", "messages",
        ]);
        for (pat, curves) in &self.panels {
            for c in curves {
                for p in &c.points {
                    t.row(vec![
                        pat.clone(),
                        c.label.clone(),
                        format!("{:.4}", p.applied_load),
                        format!("{:.6}", p.throughput),
                        format!("{:.3}", p.latency),
                        p.deadlocks.to_string(),
                        p.messages_delivered.to_string(),
                    ]);
                }
            }
        }
        t.to_csv()
    }
}

/// Run one figure panel set through `engine`: for each pattern, each
/// applicable scheme is swept over `loads(max_load)`. Infeasible
/// combinations are omitted at build time (as the paper omits them from
/// the figures); points that fail mid-sweep are reported and the curve
/// is assembled from the survivors.
fn run_figure(
    engine: &Engine,
    id: &'static str,
    vcs: u8,
    panels: &[(&PatternSpec, Vec<SchemeEntry>, f64)],
    scale: RunScale,
) -> FigureResult {
    let mut out = Vec::new();
    let (mut simulated, mut cached, mut failed) = (0u64, 0u64, 0u64);
    for (pattern, entries, max_load) in panels {
        let loads = mdd_core::default_loads(0.05, *max_load, scale.load_points);
        let mut curves = Vec::new();
        for e in entries {
            let cfg = match SimConfig::builder()
                .scheme(e.scheme)
                .pattern((*pattern).clone())
                .vcs(vcs)
                .queue_org(e.org)
                .windows(scale.warmup, scale.measure)
                .build()
            {
                Ok(cfg) => cfg,
                Err(err) => {
                    eprintln!("{id}: skipping {} on {}: {err}", e.label, pattern.name());
                    continue;
                }
            };
            let report = engine.submit_sweep(&cfg, &loads, e.label).wait();
            for err in report.errors() {
                eprintln!("{id}: {err}");
            }
            simulated += report.simulated();
            cached += report.cached();
            failed += report.failed();
            curves.push(report.curve(e.label));
        }
        out.push((pattern.name().to_string(), curves));
    }
    FigureResult {
        id,
        panels: out,
        points_simulated: simulated,
        points_cached: cached,
        points_failed: failed,
    }
}

/// Figure 8: 4 virtual channels. SA appears only for PAT100 (it needs
/// `E_m = 8` channels for chain length 4); DR appears for every pattern
/// except PAT100 (two types make DR collapse onto SA).
pub fn figure8(scale: RunScale) -> FigureResult {
    figure8_with(&Engine::new(), scale)
}

/// [`figure8`] through a caller-configured engine (cache, `--jobs`).
pub fn figure8_with(engine: &Engine, scale: RunScale) -> FigureResult {
    let p100 = PatternSpec::pat100();
    let p721 = PatternSpec::pat721();
    let p451 = PatternSpec::pat451();
    let p271 = PatternSpec::pat271();
    let p280 = PatternSpec::pat280();
    let pr = entry("PR", Scheme::ProgressiveRecovery);
    let dr = entry("DR", Scheme::DeflectiveRecovery);
    let panels = vec![
        (&p100, vec![entry("SA", SA), pr], 0.45),
        (&p721, vec![dr, pr], 0.42),
        (&p451, vec![dr, pr], 0.42),
        (&p271, vec![dr, pr], 0.42),
        (&p280, vec![dr, pr], 0.42),
    ];
    run_figure(engine, "fig8", 4, &panels, scale)
}

/// Figure 9: 8 virtual channels — SA becomes feasible everywhere.
pub fn figure9(scale: RunScale) -> FigureResult {
    figure9_with(&Engine::new(), scale)
}

/// [`figure9`] through a caller-configured engine (cache, `--jobs`).
pub fn figure9_with(engine: &Engine, scale: RunScale) -> FigureResult {
    let p100 = PatternSpec::pat100();
    let p721 = PatternSpec::pat721();
    let p451 = PatternSpec::pat451();
    let p271 = PatternSpec::pat271();
    let p280 = PatternSpec::pat280();
    let pr = entry("PR", Scheme::ProgressiveRecovery);
    let dr = entry("DR", Scheme::DeflectiveRecovery);
    let sa = entry("SA", SA);
    let panels = vec![
        (&p100, vec![sa, pr], 0.50),
        (&p721, vec![sa, dr, pr], 0.45),
        (&p451, vec![sa, dr, pr], 0.45),
        (&p271, vec![sa, dr, pr], 0.45),
        (&p280, vec![sa, dr, pr], 0.45),
    ];
    run_figure(engine, "fig9", 8, &panels, scale)
}

/// Figure 10: 16 virtual channels, the four multi-type patterns.
pub fn figure10(scale: RunScale) -> FigureResult {
    figure10_with(&Engine::new(), scale)
}

/// [`figure10`] through a caller-configured engine (cache, `--jobs`).
pub fn figure10_with(engine: &Engine, scale: RunScale) -> FigureResult {
    let p721 = PatternSpec::pat721();
    let p451 = PatternSpec::pat451();
    let p271 = PatternSpec::pat271();
    let p280 = PatternSpec::pat280();
    let pr = entry("PR", Scheme::ProgressiveRecovery);
    let dr = entry("DR", Scheme::DeflectiveRecovery);
    let sa = entry("SA", SA);
    let panels = vec![
        (&p721, vec![sa, dr, pr], 0.50),
        (&p451, vec![sa, dr, pr], 0.50),
        (&p271, vec![sa, dr, pr], 0.50),
        (&p280, vec![sa, dr, pr], 0.50),
    ];
    run_figure(engine, "fig10", 16, &panels, scale)
}

/// Figure 11: message-buffer organization ablation at 16 VCs on PAT271 —
/// DR and PR with their default (shared-ish) queues versus per-type "QA"
/// queues, against SA.
pub fn figure11(scale: RunScale) -> FigureResult {
    figure11_with(&Engine::new(), scale)
}

/// [`figure11`] through a caller-configured engine (cache, `--jobs`).
pub fn figure11_with(engine: &Engine, scale: RunScale) -> FigureResult {
    let p271 = PatternSpec::pat271();
    let panels = vec![(
        &p271,
        vec![
            entry("SA", SA),
            entry("DR", Scheme::DeflectiveRecovery),
            SchemeEntry {
                label: "DR-QA",
                scheme: Scheme::DeflectiveRecovery,
                org: Some(QueueOrg::PerType),
            },
            entry("PR", Scheme::ProgressiveRecovery),
            SchemeEntry {
                label: "PR-QA",
                scheme: Scheme::ProgressiveRecovery,
                org: Some(QueueOrg::PerType),
            },
        ],
        0.50,
    )];
    run_figure(engine, "fig11", 16, &panels, scale)
}

/// One application's characterization results (Figure 6 + Table 1 row +
/// the Section 4.2.2 deadlock count).
#[derive(Debug)]
pub struct AppCharacterization {
    /// Application name.
    pub app: &'static str,
    /// (direct, invalidation, forwarding) fractions — the Table 1 row.
    pub table1: (f64, f64, f64),
    /// Load-rate histogram over [0, 0.5) network capacity — Figure 6.
    pub load_hist: Histogram,
    /// Mean injected load (fraction of capacity).
    pub mean_load: f64,
    /// Fraction of execution time under 5% of capacity.
    pub under_5pct: f64,
    /// Message-dependent deadlocks detected during the run.
    pub deadlocks: u64,
    /// Transactions carried.
    pub transactions: u64,
}

/// Run one application over the network with the MSI engine.
///
/// `radix`/`bristle` select the (possibly bristled) topology of
/// Section 4.2.2: `([4,4],1)`, `([2,4],2)` or `([2,2],4)` — all 16
/// processors.
pub fn characterize_app(
    app: AppModel,
    radix: &[u32],
    bristle: u32,
    horizon: u64,
    seed: u64,
) -> AppCharacterization {
    let name = app.name;
    let traffic = CoherentTraffic::new(app, 16, horizon, seed);
    let mut cfg = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        CoherenceEngine::msi_pattern(),
        4,
        0.0, // load comes from the application model
    );
    cfg.radix = radix.to_vec();
    cfg.bristle = bristle;
    cfg.warmup = 0;
    cfg.measure = horizon;
    let mut sim =
        Simulator::with_traffic(cfg, Box::new(traffic)).expect("PR always configurable");
    sim.set_measuring(true);
    sim.run_cycles(horizon);
    let agg = sim.aggregate_stats();
    // Recompute the source-side characterization from an identically
    // seeded engine run (the simulator owns the original source).
    let mut probe = CoherentTraffic::new(
        AppModel::all().into_iter().find(|a| a.name == name).unwrap(),
        16,
        horizon,
        seed,
    );
    let mut ids = mdd_protocol::IdAlloc::new();
    let mut store = mdd_protocol::MessageStore::new();
    for c in 0..horizon {
        mdd_traffic::TrafficSource::tick(&mut probe, c, &mut ids, &mut store);
    }
    let mut hist = Histogram::new(0.0, 0.5, 50);
    for &s in &probe.load_samples {
        hist.add(s);
    }
    AppCharacterization {
        app: name,
        table1: probe.engine().table1_row(),
        under_5pct: hist.fraction_below(0.05),
        mean_load: probe.mean_load(),
        load_hist: hist,
        deadlocks: agg.deadlocks_detected,
        transactions: agg.transactions_completed,
    }
}

/// Table 1 + Figure 6 for all four applications on the 4x4 torus.
pub fn characterize_all(horizon: u64) -> Vec<AppCharacterization> {
    AppModel::all()
        .into_iter()
        .map(|app| characterize_app(app, &[4, 4], 1, horizon, 42))
        .collect()
}

/// Section 4.2.2: deadlock frequency under bristling (2 and 4 processors
/// per router). Returns `(config label, per-app results)`.
pub fn bristling_characterization(horizon: u64) -> Vec<(String, Vec<AppCharacterization>)> {
    let configs: [(&[u32], u32, &str); 3] = [
        (&[4, 4], 1, "4x4 torus, bristle 1"),
        (&[2, 4], 2, "2x4 torus, bristle 2"),
        (&[2, 2], 4, "2x2 torus, bristle 4"),
    ];
    configs
        .iter()
        .map(|&(radix, b, label)| {
            let rows = AppModel::all()
                .into_iter()
                .map(|app| characterize_app(app, radix, b, horizon, 42))
                .collect();
            (label.to_string(), rows)
        })
        .collect()
}

/// E8: synthetic deadlock frequency versus applied load (PR, PAT271,
/// 4 VCs): the normalized number of deadlocks stays ~0 until deep
/// saturation.
pub fn synthetic_deadlock_frequency(scale: RunScale) -> Vec<SimResult> {
    synthetic_deadlock_frequency_with(&Engine::new(), scale)
}

/// [`synthetic_deadlock_frequency`] through a caller-configured engine.
pub fn synthetic_deadlock_frequency_with(engine: &Engine, scale: RunScale) -> Vec<SimResult> {
    let loads = mdd_core::default_loads(0.05, 0.50, scale.load_points.max(6));
    let cfg = SimConfig::builder()
        .scheme(Scheme::ProgressiveRecovery)
        .pattern(PatternSpec::pat271())
        .vcs(4)
        .windows(scale.warmup, scale.measure)
        // Cross-check the threshold detector against the CWG oracle
        // every 50 cycles, as FlexSim does (Section 4.1).
        .cwg_interval(Some(50))
        .build()
        .expect("PR always configurable");
    let report = engine.submit_sweep(&cfg, &loads, "PR").wait();
    for err in report.errors() {
        eprintln!("deadlock_freq: {err}");
    }
    report.into_results()
}

/// Write `contents` under `dir` (created on demand), returning the path
/// written.
pub fn write_results_in(
    dir: impl AsRef<Path>,
    name: &str,
    contents: &str,
) -> std::io::Result<String> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(contents.as_bytes())?;
    Ok(path.display().to_string())
}

/// Write `contents` under the default `results/` directory.
pub fn write_results(name: &str, contents: &str) -> std::io::Result<String> {
    write_results_in("results", name, contents)
}
