//! Deadlock-frequency characterization:
//!
//! * default mode — Section 4.2.2: the four applications on the plain and
//!   bristled tori (4x4/b1, 2x4/b2, 2x2/b4; 16 processors throughout),
//!   reporting mean network load and detected message-dependent deadlocks
//!   (the paper observed none);
//! * `--synthetic` — the Section 4.3 companion: normalized deadlock count
//!   versus applied load for PR on PAT271 with 4 VCs (deadlocks appear
//!   only beyond saturation, confirming \[7\]).
//!
//! `cargo run -p mdd-bench --release --bin deadlock_freq [--synthetic]
//!  [--smoke] [--out DIR] [--jobs N] [--no-cache]`
//!
//! Only the synthetic mode uses the result cache: the trace-driven mode
//! drives the simulator with an application traffic source that is not
//! captured by a `SimConfig`, so its points are not content-addressable.

use mdd_bench::cli::BenchCli;
use mdd_bench::{bristling_characterization, synthetic_deadlock_frequency_with};
use mdd_stats::Table;

fn main() {
    let cli = BenchCli::parse();
    if cli.flag("--synthetic") {
        synthetic(&cli);
    } else {
        trace_driven(&cli);
    }
}

fn trace_driven(cli: &BenchCli) {
    let horizon = if cli.smoke { 15_000 } else { 80_000 };
    let mut t = Table::new(vec!["configuration", "app", "mean load", "txns", "deadlocks"]);
    let mut csv = String::from("config,app,mean_load,txns,deadlocks\n");
    for (label, rows) in bristling_characterization(horizon) {
        for r in rows {
            t.row(vec![
                label.clone(),
                r.app.to_string(),
                format!("{:.1}%", r.mean_load * 100.0),
                r.transactions.to_string(),
                r.deadlocks.to_string(),
            ]);
            csv.push_str(&format!(
                "{},{},{:.6},{},{}\n",
                label, r.app, r.mean_load, r.transactions, r.deadlocks
            ));
        }
    }
    println!("Section 4.2.2 — trace-driven deadlock frequency (bristled tori)\n");
    print!("{}", t.render());
    println!(
        "\nPaper: no deadlock was observed for any application on any of \
         the three configurations."
    );
    cli.write_reported("deadlock_freq_trace.csv", &csv);
}

fn synthetic(cli: &BenchCli) {
    let results = synthetic_deadlock_frequency_with(&cli.engine(), cli.scale);
    let mut t = Table::new(vec![
        "load",
        "throughput",
        "deadlocks",
        "router rescues",
        "normalized",
        "oracle knots",
    ]);
    let mut csv =
        String::from("load,throughput,deadlocks,router_rescues,normalized,cwg_deadlocked_checks,cwg_checks\n");
    for r in &results {
        t.row(vec![
            format!("{:.3}", r.applied_load),
            format!("{:.4}", r.throughput),
            r.deadlocks.to_string(),
            r.router_rescues.to_string(),
            format!("{:.6}", r.normalized_deadlocks()),
            format!("{}/{}", r.cwg_deadlocked_checks, r.cwg_checks),
        ]);
        csv.push_str(&format!(
            "{:.4},{:.6},{},{},{:.8},{},{}\n",
            r.applied_load,
            r.throughput,
            r.deadlocks,
            r.router_rescues,
            r.normalized_deadlocks(),
            r.cwg_deadlocked_checks,
            r.cwg_checks
        ));
    }
    println!("Synthetic deadlock frequency — PR, PAT271, 4 VCs, 8x8 torus\n");
    print!("{}", t.render());
    println!(
        "\nPaper ([7], confirmed in Section 4.2): message-dependent \
         deadlocks occur only once the network is driven into deep \
         saturation."
    );
    cli.write_reported("deadlock_freq_synthetic.csv", &csv);
}
