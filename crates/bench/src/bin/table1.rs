//! Regenerate Table 1: types and frequencies of responses to request
//! messages for the four modelled Splash-2 applications.
//!
//! `cargo run -p mdd-bench --release --bin table1 [--smoke] [--out DIR]`
//!
//! Trace-driven characterization binaries drive the simulator with an
//! application traffic source that is not captured by a `SimConfig`, so
//! they share the CLI but not the result cache.

use mdd_bench::{characterize_all, cli::BenchCli};
use mdd_stats::Table;

fn main() {
    let cli = BenchCli::parse();
    let horizon = if cli.smoke { 20_000 } else { 120_000 };
    let rows = characterize_all(horizon);

    let paper = [
        ("FFT", 98.7, 0.9, 0.4),
        ("LU", 96.5, 3.0, 0.5),
        ("Radix", 95.5, 3.6, 0.8),
        ("Water", 15.2, 50.1, 34.7),
    ];
    let mut t = Table::new(vec![
        "app",
        "direct",
        "inval",
        "fwd",
        "paper direct",
        "paper inval",
        "paper fwd",
    ]);
    let mut csv = String::from("app,direct,inval,fwd\n");
    for r in &rows {
        let (d, i, f) = r.table1;
        let p = paper.iter().find(|(n, ..)| *n == r.app).unwrap();
        t.row(vec![
            r.app.to_string(),
            format!("{:.1}%", d * 100.0),
            format!("{:.1}%", i * 100.0),
            format!("{:.1}%", f * 100.0),
            format!("{:.1}%", p.1),
            format!("{:.1}%", p.2),
            format!("{:.1}%", p.3),
        ]);
        csv.push_str(&format!("{},{d:.6},{i:.6},{f:.6}\n", r.app));
    }
    println!("Table 1 — response types to request messages\n");
    print!("{}", t.render());
    cli.write_reported("table1.csv", &csv);
}
