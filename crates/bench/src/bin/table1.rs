//! Regenerate Table 1: types and frequencies of responses to request
//! messages for the four modelled Splash-2 applications.
//!
//! `cargo run -p mdd-bench --release --bin table1 [--smoke]`

use mdd_bench::{characterize_all, write_results};
use mdd_stats::Table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let horizon = if smoke { 20_000 } else { 120_000 };
    let rows = characterize_all(horizon);

    let paper = [
        ("FFT", 98.7, 0.9, 0.4),
        ("LU", 96.5, 3.0, 0.5),
        ("Radix", 95.5, 3.6, 0.8),
        ("Water", 15.2, 50.1, 34.7),
    ];
    let mut t = Table::new(vec![
        "app",
        "direct",
        "inval",
        "fwd",
        "paper direct",
        "paper inval",
        "paper fwd",
    ]);
    let mut csv = String::from("app,direct,inval,fwd\n");
    for r in &rows {
        let (d, i, f) = r.table1;
        let p = paper.iter().find(|(n, ..)| *n == r.app).unwrap();
        t.row(vec![
            r.app.to_string(),
            format!("{:.1}%", d * 100.0),
            format!("{:.1}%", i * 100.0),
            format!("{:.1}%", f * 100.0),
            format!("{:.1}%", p.1),
            format!("{:.1}%", p.2),
            format!("{:.1}%", p.3),
        ]);
        csv.push_str(&format!("{},{d:.6},{i:.6},{f:.6}\n", r.app));
    }
    println!("Table 1 — response types to request messages\n");
    print!("{}", t.render());
    match write_results("table1.csv", &csv) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
