//! Regenerate Figure 6: load-rate distributions of the four modelled
//! Splash-2 applications on the 4x4 torus (16 processors, MSI directory).
//!
//! `cargo run -p mdd-bench --release --bin fig6 [--smoke] [--out DIR]`
//!
//! Trace-driven characterization binaries drive the simulator with an
//! application traffic source that is not captured by a `SimConfig`, so
//! they share the CLI but not the result cache.

use mdd_bench::{characterize_all, cli::BenchCli};
use mdd_stats::Table;

fn main() {
    let cli = BenchCli::parse();
    let horizon = if cli.smoke { 20_000 } else { 120_000 };
    let rows = characterize_all(horizon);

    // Histogram table: fraction of execution time per load bucket.
    let buckets = [
        (0.00, 0.05),
        (0.05, 0.10),
        (0.10, 0.15),
        (0.15, 0.20),
        (0.20, 0.25),
        (0.25, 0.30),
        (0.30, 0.50),
    ];
    let mut t = Table::new(vec![
        "app", "<5%", "5-10%", "10-15%", "15-20%", "20-25%", "25-30%", ">=30%", "mean",
    ]);
    let mut csv_rows = String::from("app,bucket_lo,bucket_hi,fraction\n");
    for r in &rows {
        let mut cells = vec![r.app.to_string()];
        for &(lo, hi) in &buckets {
            let frac = r.load_hist.fraction_below(hi) - r.load_hist.fraction_below(lo);
            cells.push(format!("{:.1}%", frac * 100.0));
            csv_rows.push_str(&format!("{},{lo},{hi},{frac:.6}\n", r.app));
        }
        cells.push(format!("{:.1}%", r.mean_load * 100.0));
        t.row(cells);
    }
    println!("Figure 6 — load-rate distributions (fraction of execution time)\n");
    print!("{}", t.render());
    println!(
        "\nPaper: FFT/LU/Water under 5% of capacity for 92-99% of execution \
         time;\nRadix up to 30% of capacity, under 5% for ~50% of the time, \
         mean 19.4%."
    );
    cli.write_reported("fig6.csv", &csv_rows);
}
