//! Regenerate Figure 9: BNF curves with 8 virtual channels per link on
//! the 8x8 torus.
//!
//! `cargo run -p mdd-bench --release --bin fig9 [--smoke] [--out DIR]
//!  [--jobs N] [--no-cache] [--cache-dir DIR]`

use mdd_bench::{cli::BenchCli, figure9_with};

fn main() {
    let cli = BenchCli::parse();
    let fig = figure9_with(&cli.engine(), cli.scale);
    print!("{}", fig.render());
    println!();
    print!("{}", fig.render_plots());
    print!("{}", fig.render_summary());
    println!("\n{}", fig.engine_summary());
    cli.write_reported("fig9.csv", &fig.to_csv());
}
