//! Regenerate Figure 10: BNF curves with 16 virtual channels per link on
//! the 8x8 torus.
//!
//! `cargo run -p mdd-bench --release --bin fig10 [--smoke]`

use mdd_bench::{figure10, write_results, RunScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::smoke()
    } else if args.iter().any(|a| a == "--fast") {
        RunScale::fast()
    } else {
        RunScale::full()
    };
    let fig = figure10(scale);
    print!("{}", fig.render());
    println!();
    print!("{}", fig.render_plots());
    print!("{}", fig.render_summary());
    match write_results("fig10.csv", &fig.to_csv()) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
