//! Regenerate Figure 10: BNF curves with 16 virtual channels per link on
//! the 8x8 torus.
//!
//! `cargo run -p mdd-bench --release --bin fig10 [--smoke] [--out DIR]
//!  [--jobs N] [--no-cache] [--cache-dir DIR]`

use mdd_bench::{cli::BenchCli, figure10_with};

fn main() {
    let cli = BenchCli::parse();
    let fig = figure10_with(&cli.engine(), cli.scale);
    print!("{}", fig.render());
    println!();
    print!("{}", fig.render_plots());
    print!("{}", fig.render_summary());
    println!("\n{}", fig.engine_summary());
    cli.write_reported("fig10.csv", &fig.to_csv());
}
