//! Channel-utilization analysis: quantify the paper's Section 4.3.2
//! explanation that strict avoidance's partitioning causes "unbalanced
//! use of network resources" while fully shared routing spreads traffic
//! evenly. Reports mean/max per-VC utilization and the coefficient of
//! variation for each scheme across VC counts.
//!
//! `cargo run -p mdd-bench --release --bin utilization [--smoke]
//!  [--out DIR] [--jobs N] [--no-cache]`

use mdd_bench::cli::BenchCli;
use mdd_core::{PatternSpec, Scheme, SimConfig};
use mdd_engine::Job;
use mdd_stats::Table;

fn main() {
    let cli = BenchCli::parse();
    let engine = cli.engine();
    let load = 0.25; // below every scheme's saturation: equal delivered load
    let mut jobs = Vec::new();
    for vcs in [8u8, 16] {
        for (label, scheme) in [
            (
                "SA",
                Scheme::StrictAvoidance {
                    shared_adaptive: false,
                },
            ),
            (
                "SA+",
                Scheme::StrictAvoidance {
                    shared_adaptive: true,
                },
            ),
            ("DR", Scheme::DeflectiveRecovery),
            ("PR", Scheme::ProgressiveRecovery),
        ] {
            let cfg = SimConfig::builder()
                .scheme(scheme)
                .pattern(PatternSpec::pat721())
                .vcs(vcs)
                .windows(cli.scale.warmup, cli.scale.measure)
                .build()
                .expect("feasible at 8+ VCs");
            jobs.push(Job::new(jobs.len(), label, cfg.at_load(load)));
        }
    }
    let report = engine.submit(jobs).wait();
    let mut t = Table::new(vec![
        "vcs",
        "scheme",
        "throughput",
        "vc util mean",
        "vc util max",
        "imbalance (CV)",
    ]);
    let mut csv = String::from("vcs,scheme,throughput,util_mean,util_max,util_cv\n");
    for o in &report.outcomes {
        let vcs = o.job.cfg.vcs;
        let label = &o.job.label;
        match &o.result {
            Ok(r) => {
                t.row(vec![
                    vcs.to_string(),
                    label.to_string(),
                    format!("{:.4}", r.throughput),
                    format!("{:.4}", r.vc_util_mean),
                    format!("{:.4}", r.vc_util_max),
                    format!("{:.3}", r.vc_util_cv),
                ]);
                csv.push_str(&format!(
                    "{vcs},{label},{:.6},{:.6},{:.6},{:.6}\n",
                    r.throughput, r.vc_util_mean, r.vc_util_max, r.vc_util_cv
                ));
            }
            Err(e) => eprintln!("utilization: {e}"),
        }
    }
    println!(
        "Channel-utilization balance at equal delivered load ({load} \
         flits/node/cycle, PAT721)\n"
    );
    print!("{}", t.render());
    println!(
        "\nHigher CV = more unbalanced channel usage. The paper attributes \
         SA's early\nsaturation to exactly this imbalance (Section 4.3.2)."
    );
    println!("{}", report.summary());
    cli.write_reported("utilization.csv", &csv);
}
