//! Channel-utilization analysis: quantify the paper's Section 4.3.2
//! explanation that strict avoidance's partitioning causes "unbalanced
//! use of network resources" while fully shared routing spreads traffic
//! evenly. Reports mean/max per-VC utilization and the coefficient of
//! variation for each scheme across VC counts.
//!
//! `cargo run -p mdd-bench --release --bin utilization [--smoke]`

use mdd_bench::{write_results, RunScale};
use mdd_core::{run_point, PatternSpec, Scheme, SimConfig};
use mdd_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::smoke()
    } else if args.iter().any(|a| a == "--fast") {
        RunScale::fast()
    } else {
        RunScale::full()
    };
    let load = 0.25; // below every scheme's saturation: equal delivered load
    let mut t = Table::new(vec![
        "vcs",
        "scheme",
        "throughput",
        "vc util mean",
        "vc util max",
        "imbalance (CV)",
    ]);
    let mut csv = String::from("vcs,scheme,throughput,util_mean,util_max,util_cv\n");
    for vcs in [8u8, 16] {
        for (label, scheme) in [
            (
                "SA",
                Scheme::StrictAvoidance {
                    shared_adaptive: false,
                },
            ),
            (
                "SA+",
                Scheme::StrictAvoidance {
                    shared_adaptive: true,
                },
            ),
            ("DR", Scheme::DeflectiveRecovery),
            ("PR", Scheme::ProgressiveRecovery),
        ] {
            let mut cfg = SimConfig::paper_default(scheme, PatternSpec::pat721(), vcs, 0.0);
            cfg.warmup = scale.warmup;
            cfg.measure = scale.measure;
            let r = run_point(&cfg, load).expect("feasible at 8+ VCs");
            t.row(vec![
                vcs.to_string(),
                label.to_string(),
                format!("{:.4}", r.throughput),
                format!("{:.4}", r.vc_util_mean),
                format!("{:.4}", r.vc_util_max),
                format!("{:.3}", r.vc_util_cv),
            ]);
            csv.push_str(&format!(
                "{vcs},{label},{:.6},{:.6},{:.6},{:.6}\n",
                r.throughput, r.vc_util_mean, r.vc_util_max, r.vc_util_cv
            ));
        }
    }
    println!(
        "Channel-utilization balance at equal delivered load ({load} \
         flits/node/cycle, PAT721)\n"
    );
    print!("{}", t.render());
    println!(
        "\nHigher CV = more unbalanced channel usage. The paper attributes \
         SA's early\nsaturation to exactly this imbalance (Section 4.3.2)."
    );
    match write_results("utilization.csv", &csv) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
