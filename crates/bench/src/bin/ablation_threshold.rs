//! Ablation A2: sensitivity of PR to the detection time-out `T`
//! (Section 4.1 fixes T = 25 because CWG detection "typically takes 25
//! cycles on average"). A too-small T triggers rescues for transient
//! congestion; a too-large T delays genuine recovery.
//!
//! `cargo run -p mdd-bench --release --bin ablation_threshold [--smoke]`

use mdd_bench::{write_results, RunScale};
use mdd_core::{run_point, PatternSpec, Scheme, SimConfig};
use mdd_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::smoke()
    } else if args.iter().any(|a| a == "--fast") {
        RunScale::fast()
    } else {
        RunScale::full()
    };
    let mut t = Table::new(vec![
        "T", "load", "throughput", "latency", "detections", "rescues",
    ]);
    let mut csv = String::from("threshold,load,throughput,latency,detections,rescues\n");
    for threshold in [10u64, 25, 50, 100, 200] {
        for load in [0.30, 0.38] {
            let mut cfg = SimConfig::paper_default(
                Scheme::ProgressiveRecovery,
                PatternSpec::pat271(),
                4,
                0.0,
            );
            cfg.detect_threshold = threshold;
            cfg.warmup = scale.warmup;
            cfg.measure = scale.measure;
            let r = run_point(&cfg, load).expect("PR always configurable");
            t.row(vec![
                threshold.to_string(),
                format!("{load:.2}"),
                format!("{:.4}", r.throughput),
                format!("{:.1}", r.avg_latency),
                r.deadlocks.to_string(),
                r.rescues.to_string(),
            ]);
            csv.push_str(&format!(
                "{threshold},{load:.4},{:.6},{:.3},{},{}\n",
                r.throughput, r.avg_latency, r.deadlocks, r.rescues
            ));
        }
    }
    println!("Ablation A2 — PR detection time-out sensitivity (PAT271, 4 VCs)\n");
    print!("{}", t.render());
    match write_results("ablation_threshold.csv", &csv) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
