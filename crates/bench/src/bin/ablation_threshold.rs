//! Ablation A2: sensitivity of PR to the detection time-out `T`
//! (Section 4.1 fixes T = 25 because CWG detection "typically takes 25
//! cycles on average"). A too-small T triggers rescues for transient
//! congestion; a too-large T delays genuine recovery.
//!
//! `cargo run -p mdd-bench --release --bin ablation_threshold [--smoke]
//!  [--out DIR] [--jobs N] [--no-cache]`

use mdd_bench::cli::BenchCli;
use mdd_core::{PatternSpec, Scheme, SimConfig};
use mdd_engine::Job;
use mdd_stats::Table;

fn main() {
    let cli = BenchCli::parse();
    let engine = cli.engine();
    let mut jobs = Vec::new();
    for threshold in [10u64, 25, 50, 100, 200] {
        for load in [0.30, 0.38] {
            let cfg = SimConfig::builder()
                .scheme(Scheme::ProgressiveRecovery)
                .pattern(PatternSpec::pat271())
                .vcs(4)
                .detect_threshold(threshold)
                .windows(cli.scale.warmup, cli.scale.measure)
                .build()
                .expect("PR always configurable");
            jobs.push(Job::new(jobs.len(), format!("T={threshold}"), cfg.at_load(load)));
        }
    }
    let report = engine.submit(jobs).wait();
    let mut t = Table::new(vec![
        "T", "load", "throughput", "latency", "detections", "rescues",
    ]);
    let mut csv = String::from("threshold,load,throughput,latency,detections,rescues\n");
    for o in &report.outcomes {
        let threshold = o.job.cfg.detect_threshold;
        let load = o.job.load();
        match &o.result {
            Ok(r) => {
                t.row(vec![
                    threshold.to_string(),
                    format!("{load:.2}"),
                    format!("{:.4}", r.throughput),
                    format!("{:.1}", r.avg_latency),
                    r.deadlocks.to_string(),
                    r.rescues.to_string(),
                ]);
                csv.push_str(&format!(
                    "{threshold},{load:.4},{:.6},{:.3},{},{}\n",
                    r.throughput, r.avg_latency, r.deadlocks, r.rescues
                ));
            }
            Err(e) => eprintln!("ablation_threshold: {e}"),
        }
    }
    println!("Ablation A2 — PR detection time-out sensitivity (PAT271, 4 VCs)\n");
    print!("{}", t.render());
    println!("{}", report.summary());
    cli.write_reported("ablation_threshold.csv", &csv);
}
