//! Regenerate Figure 11: queue-organization ablation (QA) at 16 VCs on
//! the 8x8 torus.
//!
//! `cargo run -p mdd-bench --release --bin fig11 [--smoke] [--out DIR]
//!  [--jobs N] [--no-cache] [--cache-dir DIR]`

use mdd_bench::{cli::BenchCli, figure11_with};

fn main() {
    let cli = BenchCli::parse();
    let fig = figure11_with(&cli.engine(), cli.scale);
    print!("{}", fig.render());
    println!();
    print!("{}", fig.render_plots());
    print!("{}", fig.render_summary());
    println!("\n{}", fig.engine_summary());
    cli.write_reported("fig11.csv", &fig.to_csv());
}
