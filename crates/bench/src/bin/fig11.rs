//! Regenerate Figure 11: queue-organization ablation (QA) at 16 VCs on
//! the 8x8 torus.
//!
//! `cargo run -p mdd-bench --release --bin fig11 [--smoke]`

use mdd_bench::{figure11, write_results, RunScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::smoke()
    } else if args.iter().any(|a| a == "--fast") {
        RunScale::fast()
    } else {
        RunScale::full()
    };
    let fig = figure11(scale);
    print!("{}", fig.render());
    println!();
    print!("{}", fig.render_plots());
    print!("{}", fig.render_summary());
    match write_results("fig11.csv", &fig.to_csv()) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
