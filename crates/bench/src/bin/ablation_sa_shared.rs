//! Ablation A1: the Martinez-Torrellas-Duato shared-adaptive variant of
//! strict avoidance (\[21\], discussed in Section 2.1) against plain SA —
//! only the escape channels stay partitioned per type; all remaining
//! channels form a common adaptive pool.
//!
//! `cargo run -p mdd-bench --release --bin ablation_sa_shared [--smoke]`

use mdd_core::{default_loads, run_curve, PatternSpec, Scheme, SimConfig};
use mdd_bench::{write_results, RunScale};
use mdd_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::smoke()
    } else if args.iter().any(|a| a == "--fast") {
        RunScale::fast()
    } else {
        RunScale::full()
    };
    let mut t = Table::new(vec!["vcs", "scheme", "load", "throughput", "latency"]);
    let mut csv = String::from("vcs,scheme,load,throughput,latency\n");
    for vcs in [8u8, 16] {
        let loads = default_loads(0.05, 0.50, scale.load_points);
        for (label, shared) in [("SA", false), ("SA+", true)] {
            let mut cfg = SimConfig::paper_default(
                Scheme::StrictAvoidance {
                    shared_adaptive: shared,
                },
                PatternSpec::pat271(),
                vcs,
                0.0,
            );
            cfg.warmup = scale.warmup;
            cfg.measure = scale.measure;
            let (curve, _) = run_curve(&cfg, &loads, label).expect("feasible at 8+ VCs");
            for p in &curve.points {
                t.row(vec![
                    vcs.to_string(),
                    label.to_string(),
                    format!("{:.3}", p.applied_load),
                    format!("{:.4}", p.throughput),
                    format!("{:.1}", p.latency),
                ]);
                csv.push_str(&format!(
                    "{vcs},{label},{:.4},{:.6},{:.3}\n",
                    p.applied_load, p.throughput, p.latency
                ));
            }
        }
    }
    println!("Ablation A1 — SA vs SA+ (shared adaptive pool), PAT271\n");
    print!("{}", t.render());
    match write_results("ablation_sa_shared.csv", &csv) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
