//! Ablation A1: the Martinez-Torrellas-Duato shared-adaptive variant of
//! strict avoidance (\[21\], discussed in Section 2.1) against plain SA —
//! only the escape channels stay partitioned per type; all remaining
//! channels form a common adaptive pool.
//!
//! `cargo run -p mdd-bench --release --bin ablation_sa_shared [--smoke]
//!  [--out DIR] [--jobs N] [--no-cache]`

use mdd_bench::cli::BenchCli;
use mdd_core::{default_loads, PatternSpec, Scheme, SimConfig};
use mdd_stats::Table;

fn main() {
    let cli = BenchCli::parse();
    let engine = cli.engine();
    let mut t = Table::new(vec!["vcs", "scheme", "load", "throughput", "latency"]);
    let mut csv = String::from("vcs,scheme,load,throughput,latency\n");
    for vcs in [8u8, 16] {
        let loads = default_loads(0.05, 0.50, cli.scale.load_points);
        for (label, shared) in [("SA", false), ("SA+", true)] {
            let cfg = SimConfig::builder()
                .scheme(Scheme::StrictAvoidance {
                    shared_adaptive: shared,
                })
                .pattern(PatternSpec::pat271())
                .vcs(vcs)
                .windows(cli.scale.warmup, cli.scale.measure)
                .build()
                .expect("feasible at 8+ VCs");
            let report = engine.submit_sweep(&cfg, &loads, label).wait();
            for err in report.errors() {
                eprintln!("ablation_sa_shared: {err}");
            }
            for p in &report.curve(label).points {
                t.row(vec![
                    vcs.to_string(),
                    label.to_string(),
                    format!("{:.3}", p.applied_load),
                    format!("{:.4}", p.throughput),
                    format!("{:.1}", p.latency),
                ]);
                csv.push_str(&format!(
                    "{vcs},{label},{:.4},{:.6},{:.3}\n",
                    p.applied_load, p.throughput, p.latency
                ));
            }
        }
    }
    println!("Ablation A1 — SA vs SA+ (shared adaptive pool), PAT271\n");
    print!("{}", t.render());
    cli.write_reported("ablation_sa_shared.csv", &csv);
}
