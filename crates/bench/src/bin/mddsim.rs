//! `mddsim` — ad-hoc simulation driver.
//!
//! Run a single configuration or a load sweep from the command line:
//!
//! ```text
//! mddsim --scheme pr --pattern pat271 --vcs 4 --load 0.30
//! mddsim --scheme dr --pattern pat721 --vcs 8 --sweep 0.05:0.45:9 --plot
//! mddsim --scheme sa --pattern pat100 --vcs 4 --radix 4x4 --measure 10000
//! ```
//!
//! Options (defaults in brackets):
//!
//! ```text
//! --scheme sa|sa+|dr|pr        [pr]
//! --pattern pat100|pat721|pat451|pat271|pat280  [pat271]
//! --vcs N                      [4]
//! --load F                     [0.2]   (ignored with --sweep)
//! --sweep LO:HI:N              run a Burton-Normal-Form sweep
//! --radix KxK[xK...]           [8x8]
//! --topo KxK[xK...]            alias of --radix: the scale-ladder preset
//!                              grammar (8x8, 16x16, 64x64, 8x8x8), parsed
//!                              and bounds-checked by SimConfig::parse_topo
//! --bristle N                  [1]
//! --queue-org shared|pernet|pertype   [scheme default]
//! --warmup N / --measure N     [10000 / 30000]
//! --seed N                     [0x5eed]
//! --plot                       render the ASCII BNF plot (sweep mode)
//! --verify                     statically verify the configuration and
//!                              exit without simulating: prints
//!                              `verdict: ProvenFree|RecoverableCycles|Unsafe`
//!                              plus the witness cycle when one exists.
//!                              Exit status 0 unless the verdict is
//!                              Unsafe (then 3). A VC budget infeasible
//!                              for the scheme is verified against the
//!                              degraded map it would force.
//! --analyze                    like --verify, plus the minimal-VC
//!                              synthesis diagnostic: prints the smallest
//!                              per-link VC budget that makes the scheme
//!                              statically safe (searching up to the
//!                              128-slot router occupancy cap) and the
//!                              probe trail. Same exit-status contract.
//! ```
//!
//! Engine flags (shared with every bench binary):
//!
//! ```text
//! --jobs N                     cap simulation worker threads
//! --shards N                   execution shards inside each run [1]
//!                              (bit-identical results at any N; use
//!                              --jobs for across-point parallelism and
//!                              --shards to speed up one big run)
//! --no-cache                   disable the persistent result cache
//! --cache-dir DIR              cache location [results/cache]
//! ```
//!
//! Points are served from the content-addressed result cache when an
//! identical configuration was simulated before (by any binary sharing
//! the cache directory); cache-served points carry no obs snapshot.
//!
//! Observability (either flag installs the global mdd-obs layer):
//!
//! ```text
//! --counters-out PATH          final counter snapshot; `.csv` writes
//!                              CSV, anything else one JSON object
//! --trace-out PATH             cycle-level event trace; `.csv` writes
//!                              CSV, anything else JSON Lines
//! --trace-cap N                [1048576] ring-buffer capacity; once
//!                              full the oldest events are dropped
//! ```
//!
//! Counters are process-wide: with --sweep they aggregate every point of
//! the sweep (which runs points in parallel), and the trace interleaves
//! their events. The engine's own progress counters (points_started,
//! points_completed, points_cached, points_failed, point_wall_micros)
//! appear in the same snapshot.

use mdd_bench::cli::BenchCli;
use mdd_core::{default_loads, PatternSpec, QueueOrg, Scheme, SimConfig};
use mdd_stats::{render_bnf, Table};
use std::io::Write;

fn die(msg: &str) -> ! {
    eprintln!("mddsim: {msg}\nsee the module docs (--help is this header)");
    std::process::exit(2)
}

/// Write the final counter snapshot and/or event trace to the requested
/// paths, picking the format from each file extension.
fn write_obs_outputs(counters_out: Option<&str>, trace_out: Option<&str>) {
    if let Some(path) = counters_out {
        let snap = mdd_obs::counters_snapshot();
        let mut buf = Vec::new();
        if path.ends_with(".csv") {
            mdd_obs::sink::write_counters_csv(&mut buf, &snap)
        } else {
            mdd_obs::sink::write_counters_json(&mut buf, &snap)
        }
        .expect("in-memory write cannot fail");
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(&buf))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    }
    if let Some(path) = trace_out {
        let (events, recorded, dropped) =
            mdd_obs::trace_snapshot().expect("obs layer installed");
        let mut buf = Vec::new();
        if path.ends_with(".csv") {
            mdd_obs::sink::write_trace_csv(&mut buf, &events)
        } else {
            mdd_obs::sink::write_trace_jsonl(&mut buf, &events)
        }
        .expect("in-memory write cannot fail");
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(&buf))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        if dropped > 0 {
            eprintln!(
                "mddsim: trace ring filled — kept the newest {} of {recorded} events \
                 (raise --trace-cap to keep more)",
                events.len()
            );
        }
    }
}

fn main() {
    let cli = BenchCli::parse();
    if cli.flag("--help") || cli.flag("-h") {
        println!("{}", include_str!("mddsim.rs").lines().take_while(|l| l.starts_with("//!")).map(|l| l.trim_start_matches("//!").trim_start()).filter(|l| !l.starts_with("```")).collect::<Vec<_>>().join("\n"));
        return;
    }
    let scheme = match cli.value("--scheme").unwrap_or("pr") {
        "sa" => Scheme::StrictAvoidance {
            shared_adaptive: false,
        },
        "sa+" => Scheme::StrictAvoidance {
            shared_adaptive: true,
        },
        "dr" => Scheme::DeflectiveRecovery,
        "pr" => Scheme::ProgressiveRecovery,
        other => die(&format!("unknown scheme {other}")),
    };
    let pattern = match cli.value("--pattern").unwrap_or("pat271") {
        "pat100" => PatternSpec::pat100(),
        "pat721" => PatternSpec::pat721(),
        "pat451" => PatternSpec::pat451(),
        "pat271" => PatternSpec::pat271(),
        "pat280" => PatternSpec::pat280(),
        other => die(&format!("unknown pattern {other}")),
    };
    let vcs: u8 = cli.parse_value("--vcs", 4);
    let load: f64 = cli.parse_value("--load", 0.2);
    if cli.value("--radix").is_some() && cli.value("--topo").is_some() {
        die("--radix and --topo are aliases; give only one");
    }
    let radix: Vec<u32> = match cli.value("--topo").or_else(|| cli.value("--radix")) {
        None => vec![8, 8],
        Some(s) => SimConfig::parse_topo(s)
            .unwrap_or_else(|e| die(&format!("bad topology spec: {e}"))),
    };
    let queue_org = match cli.value("--queue-org") {
        None => None,
        Some("shared") => Some(QueueOrg::Shared),
        Some("pernet") => Some(QueueOrg::PerNetwork),
        Some("pertype") => Some(QueueOrg::PerType),
        Some(other) => die(&format!("unknown queue org {other}")),
    };
    let builder = SimConfig::builder()
        .scheme(scheme)
        .pattern(pattern)
        .vcs(vcs)
        .load(load)
        .radix(&radix)
        .bristle(cli.parse_value("--bristle", 1))
        .windows(
            cli.parse_value("--warmup", 10_000),
            cli.parse_value("--measure", 30_000),
        )
        .seed(cli.parse_value("--seed", 0x5eed))
        .shards(cli.shards)
        .queue_org(queue_org);
    if cli.flag("--verify") || cli.flag("--analyze") {
        // Static verification mode: classify, print, exit — no simulation.
        // Deliberately skips feasibility validation so infeasible VC
        // budgets can be explained via the degraded map.
        let cfg = builder.build_unchecked();
        let counters_out = cli.value("--counters-out").map(str::to_string);
        if counters_out.is_some() {
            mdd_obs::install(cli.parse_value("--trace-cap", 1 << 20));
        }
        let verdict = mdd_core::verify_config(&cfg).unwrap_or_else(|e| {
            eprintln!("mddsim: {e}; verifying the degraded channel map it would force");
            mdd_core::verify_config_degraded(&cfg)
        });
        println!(
            "config: scheme {} pattern {} vcs {} radix {} queue-org {:?}",
            scheme.label(),
            cli.value("--pattern").unwrap_or("pat271"),
            vcs,
            cli.value("--topo").or_else(|| cli.value("--radix")).unwrap_or("8x8"),
            cfg.effective_queue_org(),
        );
        println!("verdict: {}", verdict.name());
        if let Some(w) = verdict.witness() {
            println!("witness cycle:\n{w}");
        }
        if cli.flag("--analyze") {
            // Minimal-VC synthesis: how cheap could this scheme get (or,
            // when unsafe, how many VCs would fix it).
            let report = mdd_core::min_safe_vcs(&cfg);
            match (report.min_vcs, &report.verdict) {
                (Some(n), Some(v)) => println!("min safe VCs: {n} (verdict {})", v.name()),
                _ => println!(
                    "min safe VCs: none within the 128-slot router occupancy cap"
                ),
            }
            let trail: Vec<String> = report
                .probes
                .iter()
                .map(|(n, v)| format!("{n}:{v}"))
                .collect();
            println!("probes: {}", trail.join(" "));
        }
        write_obs_outputs(counters_out.as_deref(), None);
        std::process::exit(if verdict.is_unsafe() { 3 } else { 0 });
    }
    let cfg = builder
        .build()
        .unwrap_or_else(|e| die(&format!("infeasible configuration: {e}")));
    let counters_out = cli.value("--counters-out").map(str::to_string);
    let trace_out = cli.value("--trace-out").map(str::to_string);
    if counters_out.is_some() || trace_out.is_some() {
        mdd_obs::install(cli.parse_value("--trace-cap", 1 << 20));
    }
    let engine = cli.engine();

    if let Some(sweep) = cli.value("--sweep") {
        let parts: Vec<&str> = sweep.split(':').collect();
        if parts.len() != 3 {
            die("--sweep wants LO:HI:N");
        }
        let lo: f64 = parts[0].parse().unwrap_or_else(|_| die("bad sweep lo"));
        let hi: f64 = parts[1].parse().unwrap_or_else(|_| die("bad sweep hi"));
        let n: usize = parts[2].parse().unwrap_or_else(|_| die("bad sweep n"));
        let loads = default_loads(lo, hi, n);
        // Stream points as they complete (progress on stderr), then
        // assemble the deterministically ordered report.
        let mut handle = engine.submit_sweep(&cfg, &loads, scheme.label());
        while let Some(outcome) = handle.recv() {
            eprintln!(
                "mddsim: point {}/{} done (load {:.3}{})",
                handle.received(),
                handle.total(),
                outcome.job.load(),
                if outcome.from_cache { ", cached" } else { "" }
            );
        }
        let report = handle.wait();
        for err in report.errors() {
            eprintln!("mddsim: {err}");
        }
        let mut t = Table::new(vec![
            "load", "throughput", "latency", "txns", "deadlocks", "deflects", "rescues",
        ]);
        for r in report.results() {
            t.row(vec![
                format!("{:.3}", r.applied_load),
                format!("{:.4}", r.throughput),
                format!("{:.1}", r.avg_latency),
                r.transactions.to_string(),
                r.deadlocks.to_string(),
                r.deflections.to_string(),
                r.rescues.to_string(),
            ]);
        }
        print!("{}", t.render());
        let curve = report.curve(scheme.label());
        if cli.flag("--plot") {
            println!();
            print!("{}", render_bnf(std::slice::from_ref(&curve), 64, 18));
        }
        println!("\n{}", report.summary());
        println!("saturation throughput: {:.4}", curve.saturation_throughput());
    } else {
        let report = engine.submit_sweep(&cfg, &[load], scheme.label()).wait();
        let outcome = report.outcomes.first().expect("one job was scheduled");
        let r = match &outcome.result {
            Ok(r) => r,
            Err(e) => die(&format!("simulation failed: {e}")),
        };
        println!(
            "scheme {} | load {:.3} -> throughput {:.4} flits/node/cycle, \
             latency {:.1} cycles{}",
            scheme.label(),
            r.applied_load,
            r.throughput,
            r.avg_latency,
            if outcome.from_cache { " (cached)" } else { "" }
        );
        println!(
            "transactions {} | messages {} | deadlocks {} | deflections {} | \
             rescues {} | router rescues {} | MC util {:.1}%",
            r.transactions,
            r.messages_delivered,
            r.deadlocks,
            r.deflections,
            r.rescues,
            r.router_rescues,
            r.mc_utilization * 100.0
        );
        if let Some(obs) = &r.obs {
            use mdd_obs::CounterId;
            println!(
                "obs: deadlocks detected {} / recovered {} | token hops {} | \
                 lane transfers {} | events {}",
                obs.get(CounterId::DeadlocksDetected),
                obs.get(CounterId::DeadlocksRecovered),
                obs.get(CounterId::TokenHops),
                obs.get(CounterId::LaneTransfers),
                obs.events_recorded
            );
        }
    }
    write_obs_outputs(counters_out.as_deref(), trace_out.as_deref());
}
