//! `mddsim` — ad-hoc simulation driver.
//!
//! Run a single configuration or a load sweep from the command line:
//!
//! ```text
//! mddsim --scheme pr --pattern pat271 --vcs 4 --load 0.30
//! mddsim --scheme dr --pattern pat721 --vcs 8 --sweep 0.05:0.45:9 --plot
//! mddsim --scheme sa --pattern pat100 --vcs 4 --radix 4x4 --measure 10000
//! ```
//!
//! Options (defaults in brackets):
//!
//! ```text
//! --scheme sa|sa+|dr|pr        [pr]
//! --pattern pat100|pat721|pat451|pat271|pat280  [pat271]
//! --vcs N                      [4]
//! --load F                     [0.2]   (ignored with --sweep)
//! --sweep LO:HI:N              run a Burton-Normal-Form sweep
//! --radix KxK[xK...]           [8x8]
//! --bristle N                  [1]
//! --queue-org shared|pernet|pertype   [scheme default]
//! --warmup N / --measure N     [10000 / 30000]
//! --seed N                     [0x5eed]
//! --plot                       render the ASCII BNF plot (sweep mode)
//! ```
//!
//! Observability (either flag installs the global mdd-obs layer):
//!
//! ```text
//! --counters-out PATH          final counter snapshot; `.csv` writes
//!                              CSV, anything else one JSON object
//! --trace-out PATH             cycle-level event trace; `.csv` writes
//!                              CSV, anything else JSON Lines
//! --trace-cap N                [1048576] ring-buffer capacity; once
//!                              full the oldest events are dropped
//! ```
//!
//! Counters are process-wide: with --sweep they aggregate every point of
//! the sweep (which runs points in parallel), and the trace interleaves
//! their events.

use mdd_core::{
    default_loads, run_curve, run_point, PatternSpec, QueueOrg, Scheme, SimConfig,
};
use mdd_stats::{render_bnf, Table};
use std::io::Write;

fn die(msg: &str) -> ! {
    eprintln!("mddsim: {msg}\nsee the module docs (--help is this header)");
    std::process::exit(2)
}

/// Write the final counter snapshot and/or event trace to the requested
/// paths, picking the format from each file extension.
fn write_obs_outputs(counters_out: Option<&str>, trace_out: Option<&str>) {
    if let Some(path) = counters_out {
        let snap = mdd_obs::counters_snapshot();
        let mut buf = Vec::new();
        if path.ends_with(".csv") {
            mdd_obs::sink::write_counters_csv(&mut buf, &snap)
        } else {
            mdd_obs::sink::write_counters_json(&mut buf, &snap)
        }
        .expect("in-memory write cannot fail");
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(&buf))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    }
    if let Some(path) = trace_out {
        let (events, recorded, dropped) =
            mdd_obs::trace_snapshot().expect("obs layer installed");
        let mut buf = Vec::new();
        if path.ends_with(".csv") {
            mdd_obs::sink::write_trace_csv(&mut buf, &events)
        } else {
            mdd_obs::sink::write_trace_jsonl(&mut buf, &events)
        }
        .expect("in-memory write cannot fail");
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(&buf))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        if dropped > 0 {
            eprintln!(
                "mddsim: trace ring filled — kept the newest {} of {recorded} events \
                 (raise --trace-cap to keep more)",
                events.len()
            );
        }
    }
}

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
    fn value(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }
    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for {name}: {v}"))),
        }
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        println!("{}", include_str!("mddsim.rs").lines().take_while(|l| l.starts_with("//!")).map(|l| l.trim_start_matches("//!").trim_start()).filter(|l| !l.starts_with("```")).collect::<Vec<_>>().join("\n"));
        return;
    }
    let scheme = match args.value("--scheme").unwrap_or("pr") {
        "sa" => Scheme::StrictAvoidance {
            shared_adaptive: false,
        },
        "sa+" => Scheme::StrictAvoidance {
            shared_adaptive: true,
        },
        "dr" => Scheme::DeflectiveRecovery,
        "pr" => Scheme::ProgressiveRecovery,
        other => die(&format!("unknown scheme {other}")),
    };
    let pattern = match args.value("--pattern").unwrap_or("pat271") {
        "pat100" => PatternSpec::pat100(),
        "pat721" => PatternSpec::pat721(),
        "pat451" => PatternSpec::pat451(),
        "pat271" => PatternSpec::pat271(),
        "pat280" => PatternSpec::pat280(),
        other => die(&format!("unknown pattern {other}")),
    };
    let vcs: u8 = args.parse("--vcs", 4);
    let load: f64 = args.parse("--load", 0.2);
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    if let Some(radix) = args.value("--radix") {
        cfg.radix = radix
            .split('x')
            .map(|k| k.parse().unwrap_or_else(|_| die("bad --radix")))
            .collect();
    }
    cfg.bristle = args.parse("--bristle", 1);
    cfg.warmup = args.parse("--warmup", 10_000);
    cfg.measure = args.parse("--measure", 30_000);
    cfg.seed = args.parse("--seed", 0x5eed);
    cfg.queue_org = match args.value("--queue-org") {
        None => None,
        Some("shared") => Some(QueueOrg::Shared),
        Some("pernet") => Some(QueueOrg::PerNetwork),
        Some("pertype") => Some(QueueOrg::PerType),
        Some(other) => die(&format!("unknown queue org {other}")),
    };
    let counters_out = args.value("--counters-out").map(str::to_string);
    let trace_out = args.value("--trace-out").map(str::to_string);
    if counters_out.is_some() || trace_out.is_some() {
        mdd_obs::install(args.parse("--trace-cap", 1 << 20));
    }

    if let Some(sweep) = args.value("--sweep") {
        let parts: Vec<&str> = sweep.split(':').collect();
        if parts.len() != 3 {
            die("--sweep wants LO:HI:N");
        }
        let lo: f64 = parts[0].parse().unwrap_or_else(|_| die("bad sweep lo"));
        let hi: f64 = parts[1].parse().unwrap_or_else(|_| die("bad sweep hi"));
        let n: usize = parts[2].parse().unwrap_or_else(|_| die("bad sweep n"));
        let loads = default_loads(lo, hi, n);
        let (curve, results) = match run_curve(&cfg, &loads, scheme.label()) {
            Ok(x) => x,
            Err(e) => die(&format!("infeasible configuration: {e}")),
        };
        let mut t = Table::new(vec![
            "load", "throughput", "latency", "txns", "deadlocks", "deflects", "rescues",
        ]);
        for r in &results {
            t.row(vec![
                format!("{:.3}", r.applied_load),
                format!("{:.4}", r.throughput),
                format!("{:.1}", r.avg_latency),
                r.transactions.to_string(),
                r.deadlocks.to_string(),
                r.deflections.to_string(),
                r.rescues.to_string(),
            ]);
        }
        print!("{}", t.render());
        if args.flag("--plot") {
            println!();
            print!("{}", render_bnf(std::slice::from_ref(&curve), 64, 18));
        }
        println!("\nsaturation throughput: {:.4}", curve.saturation_throughput());
    } else {
        let r = match run_point(&cfg, load) {
            Ok(r) => r,
            Err(e) => die(&format!("infeasible configuration: {e}")),
        };
        println!(
            "scheme {} | load {:.3} -> throughput {:.4} flits/node/cycle, \
             latency {:.1} cycles",
            scheme.label(),
            r.applied_load,
            r.throughput,
            r.avg_latency
        );
        println!(
            "transactions {} | messages {} | deadlocks {} | deflections {} | \
             rescues {} | router rescues {} | MC util {:.1}%",
            r.transactions,
            r.messages_delivered,
            r.deadlocks,
            r.deflections,
            r.rescues,
            r.router_rescues,
            r.mc_utilization * 100.0
        );
        if let Some(obs) = &r.obs {
            use mdd_obs::CounterId;
            println!(
                "obs: deadlocks detected {} / recovered {} | token hops {} | \
                 lane transfers {} | events {}",
                obs.get(CounterId::DeadlocksDetected),
                obs.get(CounterId::DeadlocksRecovered),
                obs.get(CounterId::TokenHops),
                obs.get(CounterId::LaneTransfers),
                obs.events_recorded
            );
        }
    }
    write_obs_outputs(counters_out.as_deref(), trace_out.as_deref());
}
