//! `mdd-analyze` — the static-analysis CLI: verdict tables, fault
//! frontiers, and minimal-VC synthesis, no simulation anywhere.
//!
//! Modes (give exactly one):
//!
//! ```text
//! --verdicts     classify the golden scheme x vcs x topology x pattern
//!                matrix and write results/verdicts.json (the committed
//!                copy is a CI golden: the stage re-runs this mode and
//!                diffs bit-for-bit)
//! --frontier     enumerate all single-link faults (plus --doubles N
//!                sampled double-link faults) for the SA/DR/PR frontier
//!                configurations, classify each fault point as
//!                verdict-preserving or verdict-degrading through the
//!                engine's worker pool, and write
//!                results/fault_frontier.json
//! --min-vc       binary-search the smallest per-link VC budget that
//!                keeps each scheme statically safe (up to the 128-slot
//!                router occupancy cap) and print the probe table
//! ```
//!
//! Options:
//!
//! ```text
//! --topo KxK[xK...]   restrict --frontier / --min-vc to one topology
//!                     [frontier: 8x8 and 16x16; min-vc: 8x8]
//! --pattern NAME      pattern for --min-vc [pat271]
//! --doubles N         add N sampled double-link fault points [0]
//! --seed N            sampling seed for --doubles [42]
//! --out DIR           results directory [results]
//! --jobs N            worker threads for the per-orbit re-verdicts
//! ```
//!
//! The frontier sweep groups fault points by their translation orbit
//! along the failed link's own dimension (`mdd_verify::fault_orbit_key`)
//! and re-verifies one representative per orbit on the engine pool; in
//! debug builds every replicated point is cross-checked against a full
//! incremental re-verdict on topologies small enough to afford it.

use mdd_bench::cli::{die, BenchCli};
use mdd_core::{PatternSpec, Scheme, SimConfig};
use mdd_stats::Table;
use mdd_verify::{sampled_double_link_faults, single_link_faults, FaultClass};
use std::fmt::Write as _;
use std::time::Instant;

fn scheme_of(label: &str) -> Scheme {
    match label {
        "sa" => Scheme::StrictAvoidance {
            shared_adaptive: false,
        },
        "sa+" => Scheme::StrictAvoidance {
            shared_adaptive: true,
        },
        "dr" => Scheme::DeflectiveRecovery,
        "pr" => Scheme::ProgressiveRecovery,
        other => die(&format!("unknown scheme {other}")),
    }
}

fn pattern_of(label: &str) -> PatternSpec {
    match label {
        "pat100" => PatternSpec::pat100(),
        "pat721" => PatternSpec::pat721(),
        "pat451" => PatternSpec::pat451(),
        "pat271" => PatternSpec::pat271(),
        "pat280" => PatternSpec::pat280(),
        other => die(&format!("unknown pattern {other}")),
    }
}

fn sim_cfg(scheme: &str, pattern: &str, vcs: u8, topo: &str) -> SimConfig {
    let radix =
        SimConfig::parse_topo(topo).unwrap_or_else(|e| die(&format!("bad topology spec: {e}")));
    SimConfig::builder()
        .scheme(scheme_of(scheme))
        .pattern(pattern_of(pattern))
        .vcs(vcs)
        .radix(&radix)
        .build_unchecked()
}

/// The golden verdict matrix: every scheme at the paper's interesting VC
/// budgets, on the ladder's small rungs, for a one-net and a two-net
/// pattern. Infeasible budgets classify via the degraded map they would
/// force, exactly like `mddsim --verify`.
fn verdicts(cli: &BenchCli) {
    let mut json = String::from("{\n  \"verdicts\": [\n");
    let mut table = Table::new(vec!["scheme", "pattern", "vcs", "topo", "verdict"]);
    let mut first = true;
    for topo in ["4x4", "8x8", "16x16"] {
        for scheme in ["sa", "sa+", "dr", "pr"] {
            for pattern in ["pat100", "pat271"] {
                for vcs in [2u8, 4, 8] {
                    let cfg = sim_cfg(scheme, pattern, vcs, topo);
                    let verdict = mdd_core::verify_config(&cfg)
                        .unwrap_or_else(|_| mdd_core::verify_config_degraded(&cfg));
                    table.row(vec![
                        scheme.into(),
                        pattern.into(),
                        vcs.to_string(),
                        topo.into(),
                        verdict.name().into(),
                    ]);
                    if !first {
                        json.push_str(",\n");
                    }
                    first = false;
                    let _ = write!(
                        json,
                        "    {{\"scheme\": \"{scheme}\", \"pattern\": \"{pattern}\", \
                         \"vcs\": {vcs}, \"topo\": \"{topo}\", \"verdict\": \"{}\"}}",
                        verdict.name()
                    );
                }
            }
        }
    }
    json.push_str("\n  ]\n}\n");
    print!("{}", table.render());
    cli.write_reported("verdicts.json", &json);
}

/// The frontier configurations: each scheme at the cheapest budget that
/// is statically interesting (SA needs its full partition set to start
/// `ProvenFree`; DR and PR are recoverable already at 4).
const FRONTIER_CONFIGS: &[(&str, u8)] = &[("sa", 8), ("dr", 4), ("pr", 4)];

fn frontier(cli: &BenchCli) {
    let engine = cli.engine();
    let doubles: usize = cli.parse_value("--doubles", 0);
    let seed: u64 = cli.parse_value("--seed", 42);
    let topos: Vec<&str> = match cli.value("--topo") {
        Some(t) => vec![t],
        None => vec!["8x8", "16x16"],
    };
    let mut json = String::from("{\n  \"configs\": [\n");
    let mut first_cfg = true;
    for topo in topos {
        for &(scheme, vcs) in FRONTIER_CONFIGS {
            let cfg = sim_cfg(scheme, "pat271", vcs, topo);
            let analysis = mdd_core::analysis_config(&cfg)
                .unwrap_or_else(|e| die(&format!("infeasible frontier config: {e}")));
            let mut faults = single_link_faults(analysis.topo());
            if doubles > 0 {
                faults.extend(sampled_double_link_faults(analysis.topo(), doubles, seed));
            }
            let t0 = Instant::now();
            let report = engine.fault_frontier(analysis, faults);
            let secs = t0.elapsed().as_secs_f64();
            println!(
                "frontier: {scheme} pat271 vcs {vcs} {topo} -> base {} | {} points: \
                 {} preserving, {} degrading ({secs:.2}s)",
                report.base_verdict,
                report.points.len(),
                report.preserving,
                report.degrading,
            );
            if !first_cfg {
                json.push_str(",\n");
            }
            first_cfg = false;
            let _ = write!(
                json,
                "    {{\"scheme\": \"{scheme}\", \"pattern\": \"pat271\", \"vcs\": {vcs}, \
                 \"topo\": \"{topo}\",\n     \"base_verdict\": \"{}\", \"base_rank\": {}, \
                 \"preserving\": {}, \"degrading\": {},\n     \"points\": [\n",
                report.base_verdict, report.base_rank, report.preserving, report.degrading,
            );
            for (i, p) in report.points.iter().enumerate() {
                let sep = if i + 1 == report.points.len() { "" } else { "," };
                let _ = writeln!(
                    json,
                    "      {{\"fault\": \"{}\", \"verdict\": \"{}\", \"rank\": {}, \
                     \"class\": \"{}\"}}{sep}",
                    p.label,
                    p.verdict,
                    p.rank,
                    match p.class {
                        FaultClass::Preserving => "preserving",
                        FaultClass::Degrading => "degrading",
                    },
                );
            }
            json.push_str("     ]}");
        }
    }
    json.push_str("\n  ]\n}\n");
    cli.write_reported("fault_frontier.json", &json);
}

fn min_vc(cli: &BenchCli) {
    let topo = cli.value("--topo").unwrap_or("8x8");
    let pattern = cli.value("--pattern").unwrap_or("pat271");
    let mut table = Table::new(vec!["scheme", "pattern", "topo", "min safe vcs", "verdict", "probes"]);
    for scheme in ["sa", "sa+", "dr", "pr"] {
        let cfg = sim_cfg(scheme, pattern, 4, topo);
        let report = mdd_core::min_safe_vcs(&cfg);
        table.row(vec![
            scheme.into(),
            pattern.into(),
            topo.into(),
            report
                .min_vcs
                .map_or_else(|| "none".into(), |n| n.to_string()),
            report
                .verdict
                .as_ref()
                .map_or("Unsafe", mdd_core::Verdict::name)
                .into(),
            report
                .probes
                .iter()
                .map(|(n, v)| format!("{n}:{v}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    print!("{}", table.render());
}

fn main() {
    let cli = BenchCli::parse();
    if cli.flag("--help") || cli.flag("-h") {
        println!(
            "{}",
            include_str!("mdd_analyze.rs")
                .lines()
                .take_while(|l| l.starts_with("//!"))
                .map(|l| l.trim_start_matches("//!").trim_start())
                .filter(|l| !l.starts_with("```"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        return;
    }
    let modes =
        [cli.flag("--verdicts"), cli.flag("--frontier"), cli.flag("--min-vc")];
    match modes {
        [true, false, false] => verdicts(&cli),
        [false, true, false] => frontier(&cli),
        [false, false, true] => min_vc(&cli),
        _ => die("give exactly one of --verdicts, --frontier, --min-vc (see --help)"),
    }
}
