//! Scratch driver for profiling one hotpath rung under gprofng.

use mdd_core::{PatternSpec, Scheme, SimConfig, Simulator};

fn main() {
    let scheme = std::env::args().nth(1).unwrap_or_else(|| "sa".into());
    let load: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.30);
    let cycles: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let (scheme, pattern, vcs) = match scheme.as_str() {
        "sa" => (
            Scheme::StrictAvoidance {
                shared_adaptive: false,
            },
            PatternSpec::pat100(),
            4,
        ),
        "dr" => (Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4),
        _ => (Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4),
    };
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).expect("config feasible");
    sim.run_cycles(2_000);
    mdd_obs::install(0);
    let t = std::time::Instant::now();
    sim.run_cycles(cycles);
    let dt = t.elapsed().as_secs_f64();
    println!(
        "{} cycles in {:.3}s = {:.0} cycles/sec (cycle={})",
        cycles,
        dt,
        cycles as f64 / dt,
        sim.cycle()
    );
    use mdd_obs::CounterId as C;
    let snap = mdd_obs::counters_snapshot();
    for id in [C::FusedPassRouters, C::RouterTicksSkipped, C::FlitsRouted, C::VcAllocs, C::VcStalls, C::LinkBurstFlits, C::NicTicksSkipped] {
        println!("{} = {} ({:.2}/cycle)", id.name(), snap.get(id), snap.get(id) as f64 / cycles as f64);
    }
}
