//! Scratch driver for profiling one hotpath rung under gprofng.

use mdd_core::{PatternSpec, Scheme, SimConfig, Simulator};

fn main() {
    let scheme = std::env::args().nth(1).unwrap_or_else(|| "sa".into());
    let load: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.30);
    let cycles: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    // Optional 4th arg: a `KxK[xK]` topo spec switches to the scale-ladder
    // configuration (Neighbor destinations, PAT100, sparse arrivals) on
    // that torus instead of the 8x8 paper default.
    let topo = std::env::args().nth(4);
    let (scheme, pattern, vcs) = match (scheme.as_str(), topo.is_some()) {
        (_, true) => (Scheme::ProgressiveRecovery, PatternSpec::pat100(), 4),
        ("sa", _) => (
            Scheme::StrictAvoidance {
                shared_adaptive: false,
            },
            PatternSpec::pat100(),
            4,
        ),
        ("dr", _) => (Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4),
        _ => (Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4),
    };
    let mut cfg = SimConfig::paper_default(scheme, pattern, vcs, load);
    if let Some(spec) = &topo {
        cfg.radix = SimConfig::parse_topo(spec).expect("valid topo spec");
        cfg.dest = mdd_core::DestPattern::Neighbor;
        cfg.sparse_arrivals = true;
        cfg.obs_sample_every = u64::from(cfg.radix.iter().product::<u32>()).max(64);
    }
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).expect("config feasible");
    sim.run_cycles(2_000);
    mdd_obs::install(0);
    let t = std::time::Instant::now();
    sim.run_cycles(cycles);
    let dt = t.elapsed().as_secs_f64();
    println!(
        "{} cycles in {:.3}s = {:.0} cycles/sec (cycle={})",
        cycles,
        dt,
        cycles as f64 / dt,
        sim.cycle()
    );
    use mdd_obs::CounterId as C;
    let snap = mdd_obs::counters_snapshot();
    for id in [C::FusedPassRouters, C::RouterTicksSkipped, C::FlitsRouted, C::VcAllocs, C::VcStalls, C::LinkBurstFlits, C::NicTicksSkipped] {
        println!("{} = {} ({:.2}/cycle)", id.name(), snap.get(id), snap.get(id) as f64 / cycles as f64);
    }
}
