//! mddsim-client — talk to a running `mddsimd`.
//!
//! ```text
//! mddsim-client [--socket PATH] submit --sweep LO:HI:N [--label L]
//!               [--scheme sa|sa+|dr|pr] [--pattern pat100|pat721|pat451|pat271|pat280]
//!               [--vcs N] [--radix AxB | --topo AxB[xC]] [--bristle N]
//!               [--queue-org shared|pernet|pertype]
//!               [--warmup N] [--measure N] [--seed N] [--shards N]
//! mddsim-client [--socket PATH] status
//! mddsim-client [--socket PATH] cancel JOB
//! mddsim-client [--socket PATH] shutdown
//! ```
//!
//! `submit` streams one line per point as the daemon completes it and
//! finishes with the familiar sweep summary
//! (`N points: X simulated, Y cached`). Exits 1 if any point failed,
//! 2 on usage errors, 3 if the daemon cannot be reached.
//!
//! Defaults mirror `mddsim`: scheme `pr`, pattern `pat271`, 4 VCs on an
//! 8x8 torus.

use mdd_engine::proto::{Event, Request, SweepSpec};
use mdd_engine::DEFAULT_SOCKET;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let socket = value("--socket").unwrap_or_else(|| DEFAULT_SOCKET.to_string());
    let mut positional = args.iter().enumerate().filter(|(i, a)| {
        !a.starts_with("--") && !matches!(i.checked_sub(1).and_then(|p| args.get(p)), Some(prev) if prev.starts_with("--"))
    });
    let command = positional.next().map_or_else(
        || die("missing command (submit | status | cancel JOB | shutdown)"),
        |(_, a)| a.clone(),
    );
    let operand = positional.next().map(|(_, a)| a.clone());

    let request = match command.as_str() {
        "submit" => Request::Submit(spec_from_flags(&value)),
        "status" => Request::Status,
        "cancel" => Request::Cancel {
            job: operand
                .unwrap_or_else(|| die("cancel wants a job id"))
                .parse()
                .unwrap_or_else(|_| die("bad job id")),
        },
        "shutdown" => Request::Shutdown,
        other => die(&format!("unknown command {other:?}")),
    };

    let stream = UnixStream::connect(&socket).unwrap_or_else(|e| {
        eprintln!("error: cannot reach mddsimd at {socket}: {e}");
        std::process::exit(3)
    });
    let mut writer = stream.try_clone().unwrap_or_else(|e| die(&format!("clone failed: {e}")));
    let mut line = request.encode();
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .unwrap_or_else(|e| die(&format!("send failed: {e}")));

    let mut failed_points = 0u64;
    for line in BufReader::new(stream).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => die(&format!("connection lost: {e}")),
        };
        let event = match Event::decode(&line) {
            Ok(e) => e,
            Err(msg) => die(&format!("bad event from daemon ({msg}): {line}")),
        };
        match event {
            Event::Accepted { job, points } => {
                eprintln!("job {job} accepted ({points} points)");
            }
            Event::Point(p) => match &p.result {
                Ok(r) => println!(
                    "point {} load {:.3} -> throughput {:.4}, latency {:.1}{}",
                    p.id,
                    p.load,
                    r.throughput,
                    r.avg_latency,
                    if p.cached { " (cached)" } else { "" }
                ),
                Err(msg) => {
                    failed_points += 1;
                    println!("point {} load {:.3} -> FAILED: {msg}", p.id, p.load);
                }
            },
            Event::Done {
                points,
                simulated,
                cached,
                failed,
                cancelled,
                ..
            } => {
                let mut s = format!("{points} points: {simulated} simulated, {cached} cached");
                if failed > 0 {
                    s.push_str(&format!(", {failed} FAILED"));
                }
                if cancelled > 0 {
                    s.push_str(&format!(", {cancelled} cancelled"));
                }
                println!("{s}");
                break;
            }
            Event::Status {
                jobs,
                pool,
                cache_points,
            } => {
                println!(
                    "pool: {} threads, {} busy, {} queued, {} steals, {} executed",
                    pool.threads, pool.busy, pool.queued, pool.steals, pool.executed
                );
                match cache_points {
                    Some(n) => println!("cache: {n} points"),
                    None => println!("cache: off"),
                }
                if jobs.is_empty() {
                    println!("no jobs");
                }
                for j in jobs {
                    println!(
                        "job {} [{}] {}: {}/{} points",
                        j.job, j.label, j.state, j.done, j.total
                    );
                }
                break;
            }
            Event::Cancelled { job } => {
                println!("job {job} cancelled");
                break;
            }
            Event::ShuttingDown => {
                println!("daemon shutting down");
                break;
            }
            Event::Error { message } => {
                eprintln!("daemon error: {message}");
                std::process::exit(1);
            }
        }
    }
    if failed_points > 0 {
        std::process::exit(1);
    }
}

fn spec_from_flags(value: &dyn Fn(&str) -> Option<String>) -> SweepSpec {
    let mut spec = SweepSpec::default();
    let sweep = value("--sweep").unwrap_or_else(|| die("submit wants --sweep LO:HI:N"));
    let parts: Vec<&str> = sweep.split(':').collect();
    if parts.len() != 3 {
        die("--sweep wants LO:HI:N");
    }
    let lo: f64 = parts[0].parse().unwrap_or_else(|_| die("bad sweep lo"));
    let hi: f64 = parts[1].parse().unwrap_or_else(|_| die("bad sweep hi"));
    let n: usize = parts[2].parse().unwrap_or_else(|_| die("bad sweep n"));
    spec.loads = mdd_core::default_loads(lo, hi, n);
    if let Some(v) = value("--scheme") {
        spec.scheme = v;
    }
    if let Some(v) = value("--pattern") {
        spec.pattern = v;
    }
    if let Some(v) = value("--label") {
        spec.label = v;
    } else {
        spec.label = spec.scheme.to_uppercase();
    }
    if let Some(v) = value("--vcs") {
        spec.vcs = v.parse().unwrap_or_else(|_| die("bad --vcs"));
    }
    if value("--radix").is_some() && value("--topo").is_some() {
        die("--radix and --topo are aliases; give only one");
    }
    if let Some(v) = value("--topo").or_else(|| value("--radix")) {
        spec.radix = mdd_core::SimConfig::parse_topo(&v)
            .unwrap_or_else(|e| die(&format!("bad topology spec: {e}")));
    }
    if let Some(v) = value("--bristle") {
        spec.bristle = v.parse().unwrap_or_else(|_| die("bad --bristle"));
    }
    if let Some(v) = value("--queue-org") {
        spec.queue_org = Some(v);
    }
    if let Some(v) = value("--warmup") {
        spec.warmup = v.parse().unwrap_or_else(|_| die("bad --warmup"));
    }
    if let Some(v) = value("--measure") {
        spec.measure = v.parse().unwrap_or_else(|_| die("bad --measure"));
    }
    if let Some(v) = value("--seed") {
        spec.seed = v.parse().unwrap_or_else(|_| die("bad --seed"));
    }
    if let Some(v) = value("--shards") {
        spec.shards = match v.parse() {
            Ok(0) => die("--shards needs at least one shard (got 0)"),
            Ok(n) => n,
            Err(_) => die("bad --shards"),
        };
    }
    spec
}
