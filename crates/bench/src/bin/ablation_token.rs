//! Ablation A3: cost of the token/recovery-lane path. The paper notes the
//! token "can be transmitted as a control packet multiplexed over network
//! bandwidth" — here the per-hop latency of the token tour and of the
//! recovery lane is scaled x1/x2/x4 to bound how much a slower (shared)
//! path would cost PR.
//!
//! `cargo run -p mdd-bench --release --bin ablation_token [--smoke]
//!  [--out DIR] [--jobs N] [--no-cache]`

use mdd_bench::cli::BenchCli;
use mdd_core::{PatternSpec, Scheme, SimConfig};
use mdd_engine::Job;
use mdd_stats::Table;

fn main() {
    let cli = BenchCli::parse();
    let engine = cli.engine();
    let mut jobs = Vec::new();
    for hop in [1u64, 2, 4] {
        for load in [0.30, 0.38] {
            let cfg = SimConfig::builder()
                .scheme(Scheme::ProgressiveRecovery)
                .pattern(PatternSpec::pat271())
                .vcs(4)
                .token_hop(hop)
                .lane_hop(hop)
                .windows(cli.scale.warmup, cli.scale.measure)
                .build()
                .expect("PR always configurable");
            jobs.push(Job::new(jobs.len(), format!("x{hop}"), cfg.at_load(load)));
        }
    }
    let report = engine.submit(jobs).wait();
    let mut t = Table::new(vec![
        "hop cost",
        "load",
        "throughput",
        "latency",
        "detections",
        "rescues",
    ]);
    let mut csv = String::from("hop,load,throughput,latency,detections,rescues\n");
    for o in &report.outcomes {
        let hop = o.job.cfg.token_hop;
        let load = o.job.load();
        match &o.result {
            Ok(r) => {
                t.row(vec![
                    format!("x{hop}"),
                    format!("{load:.2}"),
                    format!("{:.4}", r.throughput),
                    format!("{:.1}", r.avg_latency),
                    r.deadlocks.to_string(),
                    r.rescues.to_string(),
                ]);
                csv.push_str(&format!(
                    "{hop},{load:.4},{:.6},{:.3},{},{}\n",
                    r.throughput, r.avg_latency, r.deadlocks, r.rescues
                ));
            }
            Err(e) => eprintln!("ablation_token: {e}"),
        }
    }
    println!("Ablation A3 — token/lane per-hop cost (PR, PAT271, 4 VCs)\n");
    print!("{}", t.render());
    println!("{}", report.summary());
    cli.write_reported("ablation_token.csv", &csv);
}
