//! Ablation A3: cost of the token/recovery-lane path. The paper notes the
//! token "can be transmitted as a control packet multiplexed over network
//! bandwidth" — here the per-hop latency of the token tour and of the
//! recovery lane is scaled x1/x2/x4 to bound how much a slower (shared)
//! path would cost PR.
//!
//! `cargo run -p mdd-bench --release --bin ablation_token [--smoke]`

use mdd_bench::{write_results, RunScale};
use mdd_core::{run_point, PatternSpec, Scheme, SimConfig};
use mdd_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::smoke()
    } else if args.iter().any(|a| a == "--fast") {
        RunScale::fast()
    } else {
        RunScale::full()
    };
    let mut t = Table::new(vec![
        "hop cost",
        "load",
        "throughput",
        "latency",
        "detections",
        "rescues",
    ]);
    let mut csv = String::from("hop,load,throughput,latency,detections,rescues\n");
    for hop in [1u64, 2, 4] {
        for load in [0.30, 0.38] {
            let mut cfg = SimConfig::paper_default(
                Scheme::ProgressiveRecovery,
                PatternSpec::pat271(),
                4,
                0.0,
            );
            cfg.token_hop = hop;
            cfg.lane_hop = hop;
            cfg.warmup = scale.warmup;
            cfg.measure = scale.measure;
            let r = run_point(&cfg, load).expect("PR always configurable");
            t.row(vec![
                format!("x{hop}"),
                format!("{load:.2}"),
                format!("{:.4}", r.throughput),
                format!("{:.1}", r.avg_latency),
                r.deadlocks.to_string(),
                r.rescues.to_string(),
            ]);
            csv.push_str(&format!(
                "{hop},{load:.4},{:.6},{:.3},{},{}\n",
                r.throughput, r.avg_latency, r.deadlocks, r.rescues
            ));
        }
    }
    println!("Ablation A3 — token/lane per-hop cost (PR, PAT271, 4 VCs)\n");
    print!("{}", t.render());
    match write_results("ablation_token.csv", &csv) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
