//! mddsimd — the persistent sweep service.
//!
//! Listens on a Unix domain socket and serves the line-delimited JSON
//! protocol of [`mdd_engine::proto`]: clients `submit` load sweeps, the
//! daemon schedules them on one shared work-stealing pool (and one
//! shared result cache), and each completed point streams back on the
//! submitting connection the moment it finishes — the socket protocol
//! is a serialization of the same streaming `Engine::submit` /
//! `JobHandle::recv` API local callers use.
//!
//! ```text
//! mddsimd [--socket PATH] [--jobs N] [--out DIR] [--cache-dir DIR] [--no-cache]
//!
//! --socket PATH      listen here [/tmp/mddsimd.sock]
//! --jobs N           worker threads, N >= 1 [machine parallelism]
//! --cache-dir DIR    shared result cache [results/cache]
//! --no-cache         simulate every point
//! ```
//!
//! One connection handles any number of requests in sequence; concurrent
//! jobs come from concurrent connections, all feeding the same pool.
//! `cancel` (from any connection) marks a job's unstarted points
//! cancelled; `shutdown` lets in-flight jobs finish streaming, then the
//! daemon removes its socket and exits 0.

use mdd_bench::cli::{die, BenchCli};
use mdd_engine::proto::{Event, JobStatus, Request};
use mdd_engine::{Canceller, Engine, PointOutcome};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct JobRecord {
    id: u64,
    label: String,
    total: u64,
    done: Arc<AtomicU64>,
    canceller: Canceller,
    finished: Arc<AtomicBool>,
}

impl JobRecord {
    fn status(&self) -> JobStatus {
        let state = if self.canceller.is_cancelled() {
            "cancelled"
        } else if self.finished.load(Ordering::SeqCst) {
            "done"
        } else {
            "running"
        };
        JobStatus {
            job: self.id,
            label: self.label.clone(),
            state: state.to_string(),
            done: self.done.load(Ordering::SeqCst),
            total: self.total,
        }
    }
}

struct Daemon {
    engine: Engine,
    socket: PathBuf,
    jobs: Mutex<Vec<JobRecord>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

fn main() {
    let cli = BenchCli::parse();
    let socket = PathBuf::from(
        cli.value("--socket")
            .unwrap_or(mdd_engine::DEFAULT_SOCKET),
    );
    remove_stale_socket(&socket);
    let engine = cli.engine();
    let listener = UnixListener::bind(&socket)
        .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", socket.display())));
    let stats = engine.pool_stats();
    eprintln!(
        "mddsimd: listening on {} ({} worker{}, cache: {})",
        socket.display(),
        stats.threads,
        if stats.threads == 1 { "" } else { "s" },
        engine
            .cache()
            .map_or_else(|| "off".to_string(), |c| c.dir().display().to_string()),
    );
    let daemon = Arc::new(Daemon {
        engine,
        socket: socket.clone(),
        jobs: Mutex::new(Vec::new()),
        next_id: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
    });
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if daemon.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let daemon = Arc::clone(&daemon);
                handlers.push(std::thread::spawn(move || serve(&daemon, stream)));
            }
            Err(e) => eprintln!("mddsimd: accept failed: {e}"),
        }
    }
    // Let every connection finish streaming its in-flight jobs.
    for h in handlers {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(&socket);
    eprintln!("mddsimd: bye");
}

/// A pre-existing socket file is either a live daemon (refuse to fight
/// it) or a leftover from a crash (remove it and proceed).
fn remove_stale_socket(path: &Path) {
    if !path.exists() {
        return;
    }
    if UnixStream::connect(path).is_ok() {
        die(&format!(
            "another mddsimd is already listening on {}",
            path.display()
        ));
    }
    if let Err(e) = std::fs::remove_file(path) {
        die(&format!(
            "cannot remove stale socket {}: {e}",
            path.display()
        ));
    }
}

/// One connection: requests in, events out, until EOF or shutdown.
fn serve(daemon: &Daemon, stream: UnixStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            eprintln!("mddsimd: cannot clone connection: {e}");
            return;
        }
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let keep_going = match Request::decode(&line) {
            Err(msg) => send(&mut writer, &Event::Error { message: msg }),
            Ok(Request::Submit(spec)) => match spec.jobs() {
                Err(msg) => send(&mut writer, &Event::Error { message: msg }),
                Ok(jobs) => run_submit(daemon, &mut writer, &spec.label, jobs),
            },
            Ok(Request::Status) => {
                let rows = daemon
                    .jobs
                    .lock()
                    .expect("job registry poisoned")
                    .iter()
                    .map(JobRecord::status)
                    .collect();
                send(
                    &mut writer,
                    &Event::Status {
                        jobs: rows,
                        pool: daemon.engine.pool_stats().into(),
                        cache_points: daemon.engine.cache().map(|c| c.len() as u64),
                    },
                )
            }
            Ok(Request::Cancel { job }) => {
                let registry = daemon.jobs.lock().expect("job registry poisoned");
                match registry.iter().find(|r| r.id == job) {
                    Some(record) => {
                        record.canceller.cancel();
                        drop(registry);
                        send(&mut writer, &Event::Cancelled { job })
                    }
                    None => {
                        drop(registry);
                        send(
                            &mut writer,
                            &Event::Error {
                                message: format!("no such job: {job}"),
                            },
                        )
                    }
                }
            }
            Ok(Request::Shutdown) => {
                send(&mut writer, &Event::ShuttingDown);
                daemon.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it can notice the flag.
                let _ = UnixStream::connect(&daemon.socket);
                false
            }
        };
        if !keep_going {
            break;
        }
    }
}

/// Schedule a batch and stream every outcome back in completion order.
/// Always drains the handle — if the client disconnects mid-stream, the
/// rest of the batch is cancelled (no point simulating for no one) and
/// drained silently so the accounting still closes.
fn run_submit(
    daemon: &Daemon,
    writer: &mut UnixStream,
    label: &str,
    jobs: Vec<mdd_engine::Job>,
) -> bool {
    let id = daemon.next_id.fetch_add(1, Ordering::SeqCst);
    let total = jobs.len() as u64;
    let mut handle = daemon.engine.submit(jobs);
    let done = Arc::new(AtomicU64::new(0));
    let finished = Arc::new(AtomicBool::new(false));
    daemon.jobs.lock().expect("job registry poisoned").push(JobRecord {
        id,
        label: label.to_string(),
        total,
        done: Arc::clone(&done),
        canceller: handle.canceller(),
        finished: Arc::clone(&finished),
    });
    let mut alive = send(writer, &Event::Accepted { job: id, points: total });
    let (mut simulated, mut cached, mut failed, mut cancelled) = (0, 0, 0, 0);
    while let Some(outcome) = handle.recv() {
        done.fetch_add(1, Ordering::SeqCst);
        tally(&outcome, &mut simulated, &mut cached, &mut failed, &mut cancelled);
        if alive && !send(writer, &Event::point(id, &outcome)) {
            alive = false;
            handle.cancel();
        }
    }
    finished.store(true, Ordering::SeqCst);
    alive
        && send(
            writer,
            &Event::Done {
                job: id,
                points: total,
                simulated,
                cached,
                failed,
                cancelled,
            },
        )
}

fn tally(o: &PointOutcome, simulated: &mut u64, cached: &mut u64, failed: &mut u64, cancelled: &mut u64) {
    if o.cancelled() {
        *cancelled += 1;
    } else if o.result.is_err() {
        *failed += 1;
    } else if o.from_cache {
        *cached += 1;
    } else {
        *simulated += 1;
    }
}

/// Write one event line; false once the client is gone.
fn send(writer: &mut UnixStream, event: &Event) -> bool {
    let mut line = event.encode();
    line.push('\n');
    writer.write_all(line.as_bytes()).is_ok()
}
