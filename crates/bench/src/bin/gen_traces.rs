//! Record application traces to disk (the Section 4.2.1 methodology:
//! access streams with timing, later replayed through the simulator).
//!
//! `cargo run -p mdd-bench --release --bin gen_traces [--horizon N]`
//!
//! Writes `results/traces/<app>.trace` in the line format
//! `cycle proc addr r|w`.

use mdd_coherence::record_app_trace;
use mdd_traffic::AppModel;

fn main() {
    let horizon = std::env::args()
        .skip_while(|a| a != "--horizon")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000u64);
    std::fs::create_dir_all("results/traces").expect("create results/traces");
    for app in AppModel::all() {
        let log = record_app_trace(&app, 16, horizon, 42);
        let path = format!("results/traces/{}.trace", app.name.to_lowercase());
        let f = std::fs::File::create(&path).expect("create trace file");
        let mut w = std::io::BufWriter::new(f);
        log.save(&mut w).expect("write trace");
        println!("{path}: {} accesses over {horizon} cycles", log.len());
    }
    println!("\nReplay with TraceReplayTraffic (see crates/coherence/src/replay.rs).");
}
