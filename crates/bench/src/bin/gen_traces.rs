//! Record application traces to disk (the Section 4.2.1 methodology:
//! access streams with timing, later replayed through the simulator).
//!
//! `cargo run -p mdd-bench --release --bin gen_traces [--horizon N] [--out DIR]`
//!
//! Writes `<out>/traces/<app>.trace` in the line format
//! `cycle proc addr r|w`.

use mdd_bench::cli::BenchCli;
use mdd_coherence::record_app_trace;
use mdd_traffic::AppModel;

fn main() {
    let cli = BenchCli::parse();
    let horizon: u64 = cli.parse_value("--horizon", 60_000);
    let dir = cli.out_dir.join("traces");
    std::fs::create_dir_all(&dir).expect("create traces directory");
    for app in AppModel::all() {
        let log = record_app_trace(&app, 16, horizon, 42);
        let path = dir.join(format!("{}.trace", app.name.to_lowercase()));
        let f = std::fs::File::create(&path).expect("create trace file");
        let mut w = std::io::BufWriter::new(f);
        log.save(&mut w).expect("write trace");
        println!("{}: {} accesses over {horizon} cycles", path.display(), log.len());
    }
    println!("\nReplay with TraceReplayTraffic (see crates/coherence/src/replay.rs).");
}
