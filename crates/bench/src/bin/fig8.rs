//! Regenerate Figure 8: BNF curves for all five transaction patterns on
//! the 8x8 torus with 4 virtual channels per link.
//!
//! `cargo run -p mdd-bench --release --bin fig8 [--smoke]`

use mdd_bench::{figure8, write_results, RunScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        RunScale::smoke()
    } else if args.iter().any(|a| a == "--fast") {
        RunScale::fast()
    } else {
        RunScale::full()
    };
    let fig = figure8(scale);
    print!("{}", fig.render());
    println!();
    print!("{}", fig.render_plots());
    print!("{}", fig.render_summary());
    match write_results("fig8.csv", &fig.to_csv()) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
