//! Regenerate Figure 8: BNF curves for all five transaction patterns on
//! the 8x8 torus with 4 virtual channels per link.
//!
//! `cargo run -p mdd-bench --release --bin fig8 [--smoke] [--out DIR]
//!  [--jobs N] [--no-cache] [--cache-dir DIR]`

use mdd_bench::{cli::BenchCli, figure8_with};

fn main() {
    let cli = BenchCli::parse();
    let fig = figure8_with(&cli.engine(), cli.scale);
    print!("{}", fig.render());
    println!();
    print!("{}", fig.render_plots());
    print!("{}", fig.render_summary());
    println!("\n{}", fig.engine_summary());
    cli.write_reported("fig8.csv", &fig.to_csv());
}
