//! # mdd-bench
//!
//! The experiment harness: one module per paper table/figure, shared by
//! the full-scale binaries in `src/bin/` and the scaled-down Criterion
//! benches in `benches/`. Every function is deterministic given its
//! configuration, prints the same rows/series the paper reports, and
//! returns structured results so benches and tests can assert on them.

#![warn(missing_docs)]

pub mod cli;
pub mod experiments;

pub use experiments::*;
