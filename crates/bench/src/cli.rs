//! Shared command-line handling for the experiment binaries.
//!
//! Every binary in `src/bin/` accepts the same base flags:
//!
//! ```text
//! --smoke            smallest scale (smoke-test windows, 3 load points)
//! --fast             reduced scale for constrained machines
//! --out DIR          results directory [results]
//! --jobs N           simulation worker threads, N >= 1
//!                    [default: machine parallelism]
//! --shards N         execution shards inside each single run, N >= 1
//!                    (bit-identical results at any N) [default: 1]
//! --no-cache         disable the persistent result cache
//! --cache-dir DIR    cache location [<out>/cache]
//! ```
//!
//! plus binary-specific flags reachable through [`BenchCli::flag`] /
//! [`BenchCli::value`] / [`BenchCli::parse_value`]. [`BenchCli::engine`]
//! turns the cache/jobs flags into a configured [`Engine`].

use crate::experiments::{write_results_in, RunScale};
use mdd_engine::Engine;
use std::path::PathBuf;

/// Parsed common flags plus the raw argument list for per-binary extras.
#[derive(Clone, Debug)]
pub struct BenchCli {
    args: Vec<String>,
    /// Experiment scale selected by `--smoke` / `--fast` (full otherwise).
    pub scale: RunScale,
    /// True when `--smoke` was given (some characterization binaries use
    /// a horizon rather than a [`RunScale`]).
    pub smoke: bool,
    /// Results directory (`--out`, default `results`).
    pub out_dir: PathBuf,
    /// Worker-thread count (`--jobs`; `None` = machine parallelism).
    /// `--jobs 0` is rejected at parse time — there is no pool to run on.
    pub jobs: Option<usize>,
    /// Execution shards inside each single run (`--shards`, default 1).
    /// `--shards 0` is rejected at parse time, mirroring `--jobs 0`
    /// (and [`ConfigError::ZeroShards`] guards hand-built configs).
    /// Orthogonal to `--jobs`: jobs parallelize *across* sweep points,
    /// shards parallelize *inside* one run, bit-identically.
    ///
    /// [`ConfigError::ZeroShards`]: mdd_core::ConfigError::ZeroShards
    pub shards: u32,
    /// True when `--no-cache` was given.
    pub no_cache: bool,
    /// Result-cache directory (`--cache-dir`, default `<out>/cache`).
    pub cache_dir: PathBuf,
}

impl BenchCli {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parse an explicit argument list (for tests).
    pub fn from_args(args: Vec<String>) -> Self {
        let flag = |name: &str| args.iter().any(|a| a == name);
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let smoke = flag("--smoke");
        let scale = if smoke {
            RunScale::smoke()
        } else if flag("--fast") {
            RunScale::fast()
        } else {
            RunScale::full()
        };
        let out_dir = PathBuf::from(value("--out").unwrap_or_else(|| "results".into()));
        let jobs = value("--jobs").map(|v| match v.parse() {
            Ok(0) => die("--jobs needs at least one worker (got 0); omit the flag for the machine default"),
            Ok(n) => n,
            Err(_) => die(&format!("bad --jobs: {v}")),
        });
        let shards = value("--shards").map_or(1, |v| match v.parse() {
            Ok(0) => die("--shards needs at least one shard (got 0); omit the flag for the sequential default"),
            Ok(n) => n,
            Err(_) => die(&format!("bad --shards: {v}")),
        });
        let cache_dir = value("--cache-dir").map_or_else(|| out_dir.join("cache"), PathBuf::from);
        BenchCli {
            smoke,
            scale,
            out_dir,
            jobs,
            shards,
            no_cache: flag("--no-cache"),
            cache_dir,
            args,
        }
    }

    /// True when the bare flag `name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The argument following `name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Parse the argument following `name`, exiting with a message on a
    /// malformed value; `default` when absent.
    pub fn parse_value<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for {name}: {v}"))),
        }
    }

    /// An [`Engine`] honoring `--jobs`, `--no-cache` and `--cache-dir`.
    /// With `--jobs N` the engine runs on its own pool of exactly `N`
    /// workers; otherwise it shares the process-global pool sized to the
    /// machine. A cache that cannot be opened degrades to uncached with
    /// a warning rather than aborting the experiment.
    pub fn engine(&self) -> Engine {
        let with_jobs = |b: mdd_engine::EngineBuilder| match self.jobs {
            Some(n) => b.jobs(n),
            None => b,
        };
        if !self.no_cache {
            match with_jobs(Engine::builder().cache_dir(&self.cache_dir)).build() {
                Ok(e) => return e,
                Err(e) => eprintln!(
                    "warning: cannot open result cache at {}: {e}; running uncached",
                    self.cache_dir.display()
                ),
            }
        }
        with_jobs(Engine::builder())
            .build()
            .expect("an uncached engine with a positive worker count cannot fail")
    }

    /// Write `contents` under the selected results directory, returning
    /// the path written.
    pub fn write(&self, name: &str, contents: &str) -> std::io::Result<String> {
        write_results_in(&self.out_dir, name, contents)
    }

    /// Write a result file and report it on stdout/stderr (the shared
    /// tail of every binary's `main`).
    pub fn write_reported(&self, name: &str, contents: &str) {
        match self.write(name, contents) {
            Ok(p) => println!("\nwrote {p}"),
            Err(e) => eprintln!("could not write results: {e}"),
        }
    }
}

/// Exit with an argument-error message (status 2, like the classic CLIs).
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// `HOTPATH_QUICK` — CI smoke mode for the hotpath benchmark: unset or
/// `0` selects the full runs, `1` the short ones. Any other value is a
/// hard error (status 2): a typo like `HOTPATH_QUICK=ture` silently
/// running the full benchmark wastes a CI hour, and silently running the
/// quick one publishes numbers measured at the wrong scale.
pub fn hotpath_quick() -> bool {
    match std::env::var("HOTPATH_QUICK") {
        Err(std::env::VarError::NotPresent) => false,
        Err(e) => die(&format!("HOTPATH_QUICK: {e}")),
        Ok(v) if v == "0" => false,
        Ok(v) if v == "1" => true,
        Ok(v) => die(&format!("bad HOTPATH_QUICK (want 0 or 1): {v:?}")),
    }
}

/// `HOTPATH_OUT` — where the hotpath benchmark writes its JSON (default
/// `BENCH_hotpath.json` in the current directory). Present-but-empty or
/// non-unicode values are hard errors rather than a silently misplaced
/// results file.
pub fn hotpath_out() -> PathBuf {
    match std::env::var("HOTPATH_OUT") {
        Err(std::env::VarError::NotPresent) => PathBuf::from("BENCH_hotpath.json"),
        Err(e) => die(&format!("HOTPATH_OUT: {e}")),
        Ok(v) if v.is_empty() => die("HOTPATH_OUT is set but empty"),
        Ok(v) => PathBuf::from(v),
    }
}
