//! Integration tests of the experiment harness itself: every figure
//! driver runs at tiny scale, produces the expected panels/curves/CSV
//! structure, and respects the feasibility gating the paper's figures
//! encode.

use mdd_bench::{characterize_app, figure11, figure8, RunScale};
use mdd_traffic::AppModel;

fn tiny() -> RunScale {
    RunScale {
        warmup: 200,
        measure: 600,
        load_points: 2,
    }
}

#[test]
fn figure8_structure_and_gating() {
    let fig = figure8(tiny());
    assert_eq!(fig.id, "fig8");
    assert_eq!(fig.panels.len(), 5, "one panel per pattern");
    let by_name: std::collections::HashMap<_, _> = fig
        .panels
        .iter()
        .map(|(n, c)| (n.as_str(), c))
        .collect();
    // PAT100: SA + PR (no DR); multi-type patterns: DR + PR (no SA at 4 VCs).
    let p100: Vec<&str> = by_name["PAT100"].iter().map(|c| c.label.as_str()).collect();
    assert_eq!(p100, vec!["SA", "PR"]);
    for pat in ["PAT721", "PAT451", "PAT271", "PAT280"] {
        let labels: Vec<&str> = by_name[pat].iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["DR", "PR"], "{pat}");
    }
    // Every curve has every load point and positive throughput somewhere.
    for (_, curves) in &fig.panels {
        for c in curves {
            assert_eq!(c.points.len(), 2);
            assert!(c.saturation_throughput() > 0.0);
        }
    }
    // Render paths.
    let table = fig.render();
    assert!(table.contains("PAT721"));
    let csv = fig.to_csv();
    assert_eq!(csv.lines().count(), 1 + 5 * 2 * 2, "header + rows");
    assert!(fig.render_plots().contains("latency"));
    assert!(fig.render_summary().contains("saturation"));
}

#[test]
fn figure11_has_qa_variants() {
    let fig = figure11(tiny());
    let labels: Vec<&str> = fig.panels[0].1.iter().map(|c| c.label.as_str()).collect();
    assert_eq!(labels, vec!["SA", "DR", "DR-QA", "PR", "PR-QA"]);
}

#[test]
fn characterization_produces_consistent_rows() {
    let c = characterize_app(AppModel::fft(), &[4, 4], 1, 3_000, 1);
    let (d, i, f) = c.table1;
    assert!((d + i + f - 1.0).abs() < 1e-9 || d + i + f == 0.0);
    assert!(c.mean_load >= 0.0 && c.mean_load < 0.5);
    assert_eq!(c.app, "FFT");
    assert!(c.load_hist.total() > 0);
}
