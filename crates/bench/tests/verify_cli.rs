//! The `mddsim --verify` / `--analyze` exit-code contract, in-tree.
//!
//! ci.sh exercises the same contract with greps against the release
//! binary; this test pins it against the debug binary so a regression
//! fails `cargo test` directly:
//!
//! * exit 0 for statically safe configurations (`ProvenFree` and
//!   `RecoverableCycles` both simulate),
//! * exit 3 plus `verdict: Unsafe` for configurations the analyzer
//!   rejects,
//! * an infeasible VC budget falls back to verifying the degraded
//!   channel map it would force (stderr notice), instead of dying on the
//!   builder error,
//! * `--analyze` additionally reports the minimal safe VC budget.

use std::process::{Command, Output};

fn mddsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mddsim"))
        .args(args)
        .output()
        .expect("spawn mddsim")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn safe_configurations_verify_with_exit_zero() {
    for (scheme, vcs, expected) in
        [("sa", "8", "verdict: ProvenFree"), ("pr", "4", "verdict: RecoverableCycles")]
    {
        let out = mddsim(&[
            "--verify", "--scheme", scheme, "--pattern", "pat271", "--vcs", vcs, "--radix", "4x4",
        ]);
        assert_eq!(out.status.code(), Some(0), "{scheme} vcs {vcs}: {}", stdout(&out));
        assert!(stdout(&out).contains(expected), "{scheme} vcs {vcs}: {}", stdout(&out));
    }
}

#[test]
fn crippled_sa_exits_three_via_the_degraded_vc_fallback() {
    // One VC short of SA's partition budget: the strict map is
    // infeasible, so --verify explains the degraded map it would force
    // (stderr notice) and reports it Unsafe (exit 3).
    let out = mddsim(&[
        "--verify", "--scheme", "sa", "--pattern", "pat271", "--vcs", "7", "--radix", "4x4",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stdout(&out));
    assert!(stdout(&out).contains("verdict: Unsafe"), "{}", stdout(&out));
    assert!(stdout(&out).contains("witness cycle:"), "{}", stdout(&out));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("degraded channel map"), "stderr: {err}");
}

#[test]
fn analyze_reports_the_minimal_safe_budget_with_the_same_exit_contract() {
    let out = mddsim(&[
        "--analyze", "--scheme", "sa", "--pattern", "pat271", "--vcs", "7", "--radix", "4x4",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stdout(&out));
    // 4 partition types x 2 dateline classes: 8 VCs is SA's floor here.
    assert!(stdout(&out).contains("min safe VCs: 8"), "{}", stdout(&out));
    assert!(stdout(&out).contains("probes: "), "{}", stdout(&out));

    let out = mddsim(&[
        "--analyze", "--scheme", "pr", "--pattern", "pat271", "--vcs", "4", "--radix", "4x4",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("min safe VCs: 1"), "{}", stdout(&out));
}
