//! The unit of engine work: one configuration to simulate.

use mdd_core::SimConfig;

/// One schedulable simulation point: a fully resolved [`SimConfig`] plus
/// the curve label and point id it reports under. The configuration is
/// final — for sweep points the load and the per-point seed derivation
/// of [`SimConfig::at_load`] have already been applied — so the job's
/// cache key is simply the config's content hash.
#[derive(Clone, Debug)]
pub struct Job {
    /// Position of this point within its batch (used to keep report
    /// order stable and to name failed points).
    pub id: usize,
    /// The label of the curve/series this point belongs to ("PR",
    /// "DR-QA", ...).
    pub label: String,
    /// The exact configuration to simulate.
    pub cfg: SimConfig,
}

impl Job {
    /// A job from its parts.
    pub fn new(id: usize, label: impl Into<String>, cfg: SimConfig) -> Self {
        Job {
            id,
            label: label.into(),
            cfg,
        }
    }

    /// The jobs of a load sweep: `base` evaluated at each load, with the
    /// same per-point seed decorrelation `run_point` applies.
    pub fn points(base: &SimConfig, loads: &[f64], label: &str) -> Vec<Job> {
        loads
            .iter()
            .enumerate()
            .map(|(id, &l)| Job::new(id, label, base.at_load(l)))
            .collect()
    }

    /// The content-addressed cache key of this job (the configuration's
    /// canonical hash, in hex).
    pub fn key(&self) -> String {
        self.cfg.content_hash_hex()
    }

    /// The applied load of this point.
    pub fn load(&self) -> f64 {
        self.cfg.load
    }
}
