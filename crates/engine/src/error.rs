//! Typed per-point failures.

use mdd_core::SchemeConfigError;

/// Why one point of a batch failed. Other points are unaffected: the
/// engine isolates each simulation, so a poisoned point surfaces here
/// instead of killing the sweep.
#[derive(Clone, PartialEq, Debug)]
pub enum PointFailure {
    /// The scheme could not be configured for this point's parameters.
    Config(SchemeConfigError),
    /// The simulation panicked; the payload is the panic message. The
    /// panic was caught at the point boundary (`catch_unwind`), the
    /// worker thread survived, and every other point ran to completion.
    Panic(String),
    /// The batch was cancelled before this point started. The point was
    /// never simulated; its slot in the stream is filled by this marker
    /// so a drain still sees every outcome.
    Cancelled,
}

/// One failed point of a batch: which job, under which label, at which
/// load, and why.
#[derive(Clone, PartialEq, Debug)]
pub struct PointError {
    /// Id of the failed [`Job`](crate::Job) within its batch.
    pub job: usize,
    /// The curve/series label of the failed point.
    pub label: String,
    /// The applied load of the failed point.
    pub load: f64,
    /// The failure itself.
    pub failure: PointFailure,
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {} ({} @ load {:.4}): ",
            self.job, self.label, self.load
        )?;
        match &self.failure {
            PointFailure::Config(e) => write!(f, "{e}"),
            PointFailure::Panic(msg) => write!(f, "simulation panicked: {msg}"),
            PointFailure::Cancelled => write!(f, "cancelled before start"),
        }
    }
}

impl std::error::Error for PointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.failure {
            PointFailure::Config(e) => Some(e),
            PointFailure::Panic(_) | PointFailure::Cancelled => None,
        }
    }
}
