//! The content-addressed persistent result cache.
//!
//! Layout: one append-only JSON Lines file, `points.jsonl`, in the cache
//! directory (`results/cache/` by convention). Each line is one completed
//! simulation point keyed by the canonical hash of its full
//! [`SimConfig`](mdd_core::SimConfig) (see `SimConfig::canonical_string`
//! for exactly what the key covers). Properties that fall out of this
//! design:
//!
//! * **Invalidation is automatic and per-point.** Change any semantic
//!   field — scheme, pattern, load, seed, windows, topology — and the key
//!   changes, so the point re-simulates; untouched points keep hitting.
//!   Nothing ever needs manual invalidation short of deleting the
//!   directory (which is always safe: the cache is a pure memo).
//! * **Resume after interrupt is free.** Completed points were already
//!   appended and flushed; a re-run re-simulates only what is missing. A
//!   line truncated by the interrupt fails to decode and is skipped.
//! * **Duplicate keys collapse to the newest line**, so concurrent
//!   writers or repeated runs stay harmless (last writer wins, and both
//!   wrote identical results anyway — simulations are deterministic).
//! * Cache-served results carry `obs: None`; counter snapshots are not
//!   meaningful across processes (see `codec`).

use crate::codec;
use mdd_core::SimResult;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Name of the JSONL file inside the cache directory.
pub const CACHE_FILE: &str = "points.jsonl";

/// A persistent key → [`SimResult`] store, safe to share across the
/// engine's worker threads.
pub struct ResultCache {
    dir: PathBuf,
    entries: Mutex<HashMap<String, SimResult>>,
    writer: Mutex<BufWriter<File>>,
    hits: std::sync::atomic::AtomicU64,
}

impl ResultCache {
    /// Open (creating on demand) the cache rooted at `dir`, loading every
    /// decodable line of `dir/points.jsonl`. Corrupt or truncated lines
    /// and lines of other format versions are skipped silently.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(CACHE_FILE);
        let mut entries = HashMap::new();
        let mut unterminated = false;
        match File::open(&path) {
            Ok(f) => {
                let mut reader = BufReader::new(f);
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        break;
                    }
                    // A final line with no newline is a write cut short
                    // by a crash; remember to terminate it before
                    // appending, or the next entry would glue onto it.
                    unterminated = !line.ends_with('\n');
                    if let Some((key, _label, result)) = codec::decode_line(line.trim_end()) {
                        entries.insert(key, result);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if unterminated {
            file.write_all(b"\n")?;
        }
        Ok(ResultCache {
            dir,
            entries: Mutex::new(entries),
            writer: Mutex::new(BufWriter::new(file)),
            hits: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The directory this cache persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of distinct points currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache map poisoned").len()
    }

    /// True when no points are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits served since this handle was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Look up a point by key.
    pub fn get(&self, key: &str) -> Option<SimResult> {
        let hit = self.entries.lock().expect("cache map poisoned").get(key).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        hit
    }

    /// Record a completed point: remembered in memory and appended +
    /// flushed to `points.jsonl` so an interrupt cannot lose it.
    pub fn put(&self, key: &str, label: &str, result: &SimResult) -> io::Result<()> {
        self.entries
            .lock()
            .expect("cache map poisoned")
            .insert(key.to_string(), result.clone());
        let line = codec::encode_line(key, label, result);
        let mut w = self.writer.lock().expect("cache writer poisoned");
        writeln!(w, "{line}")?;
        w.flush()
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("dir", &self.dir)
            .field("len", &self.len())
            .finish()
    }
}
