//! The content-addressed persistent result cache, sharded by key prefix.
//!
//! Layout: sixteen append-only JSON Lines files, `shard-0.jsonl` …
//! `shard-f.jsonl`, in the cache directory (`results/cache/` by
//! convention), plus read-only support for the pre-shard single-file
//! layout (`points.jsonl`). Each line is one completed simulation point
//! keyed by the canonical hash of its full
//! [`SimConfig`](mdd_core::SimConfig) (see `SimConfig::canonical_string`
//! for exactly what the key covers); the first hex digit of the key picks
//! the shard. Properties that fall out of this design:
//!
//! * **Invalidation is automatic and per-point.** Change any semantic
//!   field — scheme, pattern, load, seed, windows, topology — and the key
//!   changes, so the point re-simulates; untouched points keep hitting.
//!   Nothing ever needs manual invalidation short of deleting the
//!   directory (which is always safe: the cache is a pure memo).
//! * **Resume after interrupt is free.** Completed points were already
//!   appended and flushed; a re-run re-simulates only what is missing. A
//!   line truncated by the interrupt fails to decode and is skipped.
//! * **Duplicate keys collapse to the newest line**, so concurrent
//!   writers or repeated runs stay harmless (last writer wins, and both
//!   wrote identical results anyway — simulations are deterministic).
//! * **Concurrent jobs do not contend on one file.** Every shard has its
//!   own lock guarding both the in-memory map and the appender, so
//!   points landing in different shards (the common case — FNV keys
//!   spread uniformly) commit in parallel.
//! * **Concurrent *processes* interleave at line granularity.** Shard
//!   files are opened in append mode and every point is committed as one
//!   `write` of a complete line, so two engines sharing a directory never
//!   splice bytes into each other's entries. The unterminated-tail repair
//!   (a crash artifact) happens under the shard lock at open and only
//!   ever *appends* a newline — it cannot drop a completed point, and the
//!   worst concurrent outcome is a harmless blank line.
//! * Cache-served results carry `obs: None`; counter snapshots are not
//!   meaningful across processes (see `codec`).

use crate::codec;
use mdd_core::SimResult;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Name of the legacy single-file JSONL cache inside the cache directory.
/// Still *read* (so pre-shard caches keep hitting) but never written;
/// new points go to their [`ResultCache::shard_file`].
pub const CACHE_FILE: &str = "points.jsonl";

/// Number of key-prefix shards (one hex digit).
pub const CACHE_SHARDS: usize = 16;

/// One shard: its decoded entries and its appender, guarded together so
/// a lookup never races a commit to the same shard.
struct Shard {
    entries: HashMap<String, SimResult>,
    file: File,
}

/// A persistent key → [`SimResult`] store, safe to share across the
/// engine's worker threads (and, at line granularity, across processes).
pub struct ResultCache {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
}

/// The shard index of a cache key: its first hex digit (keys are FNV-1a
/// hashes in lowercase hex). Unrecognized first characters fall back to
/// shard 0 rather than failing — such keys only arise from hand-edited
/// files.
fn shard_index(key: &str) -> usize {
    key.chars()
        .next()
        .and_then(|c| c.to_digit(16))
        .map_or(0, |d| d as usize)
}

impl ResultCache {
    /// Open (creating on demand) the cache rooted at `dir`, loading every
    /// decodable line of each `shard-*.jsonl` (and of a legacy
    /// `points.jsonl`, read-only). Corrupt or truncated lines and lines
    /// of other format versions are skipped silently. A final line left
    /// unterminated by a crashed writer is repaired (newline-terminated)
    /// before this handle appends anything.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Pre-shard caches: single read-only file, entries routed to the
        // shard their key belongs to.
        let mut legacy: Vec<HashMap<String, SimResult>> =
            (0..CACHE_SHARDS).map(|_| HashMap::new()).collect();
        match File::open(dir.join(CACHE_FILE)) {
            Ok(f) => {
                let mut unterminated = false;
                read_entries(f, &mut unterminated, |key, result| {
                    legacy[shard_index(&key)].insert(key, result);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut shards = Vec::with_capacity(CACHE_SHARDS);
        for (s, mut entries) in legacy.into_iter().enumerate() {
            let path = dir.join(format!("shard-{s:x}.jsonl"));
            let mut unterminated = false;
            match File::open(&path) {
                Ok(f) => read_entries(f, &mut unterminated, |key, result| {
                    entries.insert(key, result);
                }),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            if unterminated {
                // A final line with no newline is a write cut short by a
                // crash; terminate it before appending, or the next entry
                // would glue onto it. Append-only, so concurrent repairs
                // at worst leave a blank line (skipped on read).
                file.write_all(b"\n")?;
            }
            shards.push(Mutex::new(Shard { entries, file }));
        }
        Ok(ResultCache {
            dir,
            shards,
            hits: AtomicU64::new(0),
        })
    }

    /// The directory this cache persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard file `key` lives in (for tests and tooling; the path may
    /// not exist yet if nothing hashed into that shard).
    pub fn shard_file(&self, key: &str) -> PathBuf {
        self.dir.join(format!("shard-{:x}.jsonl", shard_index(key)))
    }

    /// Number of distinct points currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// True when no points are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits served since this handle was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Look up a point by key.
    pub fn get(&self, key: &str) -> Option<SimResult> {
        let hit = self.shards[shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
            .entries
            .get(key)
            .cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Record a completed point: remembered in memory and appended +
    /// flushed to its shard file so an interrupt cannot lose it. The
    /// whole line (newline included) is committed in a single write, so
    /// concurrent writers — threads of this process serialized by the
    /// shard lock, or other processes interleaved by the kernel's
    /// append-mode offset handling — never corrupt each other's lines.
    pub fn put(&self, key: &str, label: &str, result: &SimResult) -> io::Result<()> {
        let mut line = codec::encode_line(key, label, result);
        line.push('\n');
        let mut shard = self.shards[shard_index(key)]
            .lock()
            .expect("cache shard poisoned");
        shard.entries.insert(key.to_string(), result.clone());
        shard.file.write_all(line.as_bytes())
    }
}

/// Read every decodable line of `f` into `insert`, flagging whether the
/// final line was missing its newline (a crashed append).
fn read_entries(f: File, unterminated: &mut bool, mut insert: impl FnMut(String, SimResult)) {
    let mut reader = BufReader::new(f);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            // An unreadable tail behaves like a truncated one: keep what
            // decoded so far.
            Err(_) => break,
        }
        *unterminated = !line.ends_with('\n');
        if let Some((key, _label, result)) = codec::decode_line(line.trim_end()) {
            insert(key, result);
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("dir", &self.dir)
            .field("shards", &CACHE_SHARDS)
            .field("len", &self.len())
            .finish()
    }
}
