//! A minimal JSON value type shared by the cache codec and the daemon
//! wire protocol, so both serialize through one implementation.
//!
//! Scope is exactly what those two need and nothing more:
//!
//! * **Integers and floats are distinct.** `u64`s (counters, seeds,
//!   ids) render as integer digits and round-trip exactly; `f64`s render
//!   in Rust's shortest round-trip `{:?}` form, so
//!   `parse(render(x)) == x` bit-for-bit. Non-finite floats render as
//!   `NaN` / `inf` (as the cache format always has) and are accepted
//!   back by the parser — a deliberate departure from strict JSON kept
//!   for cache-file compatibility.
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a
//!   map), so encoded lines are byte-stable across runs.
//! * **Rendering is compact** — no whitespace — one value per line.
//!
//! This is not a general-purpose JSON library; it has no escape hatches
//! for streaming, comments, or duplicate-key policy (last one wins via
//! linear `get`, first match).

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, rendered as digits.
    Int(u64),
    /// Any other number, rendered in shortest round-trip form.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value (trailing whitespace allowed,
    /// trailing garbage not). `None` on any malformed input.
    pub fn parse(text: &str) -> Option<Json> {
        let mut chars = text.chars().peekable();
        let value = parse_value(&mut chars)?;
        skip_ws(&mut chars);
        chars.peek().is_none().then_some(value)
    }

    /// Render compactly (no whitespace, no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => out.push_str(&format!("{x:?}")),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(key, out);
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on an object (first match); `None` on other shapes.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`: integers directly, floats only when whole
    /// and in range (cache files written before the integer/float split
    /// carry counters as floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_value(chars: &mut Chars<'_>) -> Option<Json> {
    skip_ws(chars);
    match chars.peek()? {
        '"' => {
            chars.next();
            Some(Json::Str(read_string_tail(chars)?))
        }
        '{' => {
            chars.next();
            let mut fields = Vec::new();
            skip_ws(chars);
            if chars.peek() == Some(&'}') {
                chars.next();
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(chars);
                if chars.next()? != '"' {
                    return None;
                }
                let key = read_string_tail(chars)?;
                skip_ws(chars);
                if chars.next()? != ':' {
                    return None;
                }
                fields.push((key, parse_value(chars)?));
                skip_ws(chars);
                match chars.next()? {
                    ',' => {}
                    '}' => return Some(Json::Obj(fields)),
                    _ => return None,
                }
            }
        }
        '[' => {
            chars.next();
            let mut items = Vec::new();
            skip_ws(chars);
            if chars.peek() == Some(&']') {
                chars.next();
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars)?);
                skip_ws(chars);
                match chars.next()? {
                    ',' => {}
                    ']' => return Some(Json::Arr(items)),
                    _ => return None,
                }
            }
        }
        _ => {
            // Bare token: literal or number (including the non-standard
            // NaN / inf spellings `{:?}` produces for f64).
            let mut tok = String::new();
            while let Some(&c) = chars.peek() {
                if c == ',' || c == ']' || c == '}' || c.is_whitespace() {
                    break;
                }
                tok.push(c);
                chars.next();
            }
            match tok.as_str() {
                "null" => Some(Json::Null),
                "true" => Some(Json::Bool(true)),
                "false" => Some(Json::Bool(false)),
                "" => None,
                t if !t.starts_with('-') && !t.contains(['.', 'e', 'E']) => {
                    match t.parse::<u64>() {
                        Ok(n) => Some(Json::Int(n)),
                        Err(_) => t.parse::<f64>().ok().map(Json::Num),
                    }
                }
                t => t.parse::<f64>().ok().map(Json::Num),
            }
        }
    }
}

/// Read a JSON string after its opening quote, consuming the closing one.
fn read_string_tail(chars: &mut Chars<'_>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&code, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Json::Obj(vec![
            ("a".to_string(), Json::Int(18_446_744_073_709_551_615)),
            ("b".to_string(), Json::Num(0.1 + 0.2)),
            ("c".to_string(), Json::Str("q\"\\\n".to_string())),
            (
                "d".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Bool(false)]),
            ),
            ("e".to_string(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.render()), Some(v));
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for x in [0.05, 1.0 / 3.0, f64::MAX, 5e-324, -0.0, f64::NAN, f64::INFINITY] {
            let back = Json::parse(&Json::Num(x).render()).unwrap();
            let y = back.as_f64().unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x:?} -> {back:?}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"1}", "{\"a\":1} extra", "tru", "nul"] {
            assert_eq!(Json::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn whole_floats_read_back_as_u64() {
        // Pre-split cache lines carry counters as floats ("42.0").
        assert_eq!(Json::parse("42.0").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }
}
