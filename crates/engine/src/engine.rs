//! The streaming scheduler: cache lookup, work-stealing parallel
//! execution, panic isolation, progress counters.

use crate::cache::ResultCache;
use crate::error::{PointError, PointFailure};
use crate::job::Job;
use mdd_core::{SchemeConfigError, SimConfig, SimResult, Simulator};
use mdd_obs::CounterId;
use mdd_stats::BnfCurve;
use mdd_verify::{
    fault_orbit_key, AnalysisConfig, BaseAnalysis, FaultOutcome, FaultSet, FrontierReport, Verdict,
};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// The experiment engine. Construction picks the cache policy and the
/// worker pool; [`Engine::submit`] then schedules any number of batches
/// onto the pool's work-stealing workers and hands back a [`JobHandle`]
/// that streams each [`PointOutcome`] as it completes. Each point is
/// isolated by `catch_unwind`, so one poisoned point becomes a
/// [`PointError`] in the stream instead of killing the sweep.
///
/// The engine is a cheap-to-clone handle (an `Arc` around the cache and
/// pool): clones share the cache, the workers, and the in-flight
/// accounting, so one engine can serve many threads — the `mddsimd`
/// daemon runs every connection off clones of a single engine.
///
/// Progress is reported through the global `mdd-obs` counters when that
/// layer is installed: `points_started`, `points_completed`,
/// `points_cached`, `points_failed`, `point_wall_micros`, plus the pool
/// gauges `pool_workers_busy`, `pool_queue_depth`, `pool_steals` and
/// `jobs_in_flight`.
///
/// Do not call [`JobHandle::wait`] (or blocking [`JobHandle::recv`])
/// from inside a task running *on* this engine's pool: a worker blocked
/// on its own pool's output can deadlock a fully loaded pool. Submit
/// from ordinary threads — the daemon's connection threads, a binary's
/// main thread — and stream from there.
#[derive(Clone, Debug)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

#[derive(Debug)]
struct EngineInner {
    cache: Option<ResultCache>,
    pool: Arc<rayon::ThreadPool>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine without a persistent cache, on the shared global pool:
    /// every point simulates.
    pub fn new() -> Self {
        Engine::builder().build().expect("uncached engine on the global pool cannot fail")
    }

    /// An engine backed by the cache directory `dir` (created on demand;
    /// `results/cache/` by convention — see [`ResultCache::open`]), on
    /// the shared global pool.
    pub fn with_cache_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        Engine::builder().cache_dir(dir).build()
    }

    /// An engine around an already opened cache, on the shared global
    /// pool.
    pub fn with_cache(cache: ResultCache) -> Self {
        Engine::builder()
            .cache(cache)
            .build()
            .expect("engine around an opened cache cannot fail")
    }

    /// Start configuring an engine (worker count, cache location).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The cache, if this engine has one.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.inner.cache.as_ref()
    }

    /// A point-in-time snapshot of this engine's worker pool.
    pub fn pool_stats(&self) -> rayon::PoolStats {
        self.inner.pool.stats()
    }

    /// Submit one labelled load sweep of `base` over `loads`: the batch
    /// [`Job::points`] expands to, streamed back through the returned
    /// handle as points complete.
    pub fn submit_sweep(&self, base: &SimConfig, loads: &[f64], label: &str) -> JobHandle {
        self.submit(Job::points(base, loads, label))
    }

    /// Submit a batch of fully resolved jobs with the default simulation
    /// runner. Returns immediately; the returned [`JobHandle`] yields one
    /// [`PointOutcome`] per job in *completion* order (drain with
    /// [`JobHandle::recv`] for streaming, or [`JobHandle::wait`] for the
    /// assembled, deterministically ordered [`SweepReport`]).
    pub fn submit(&self, jobs: Vec<Job>) -> JobHandle {
        self.submit_with(jobs, |job: &Job| {
            Simulator::new(job.cfg.clone()).map(|mut sim| sim.run())
        })
    }

    /// Submit a batch through a caller-supplied runner — the seam the
    /// integration tests use to inject failures, and the hook for
    /// alternative backends. Cache lookup, panic isolation, counters and
    /// streaming are identical to [`Engine::submit`]; only the
    /// simulation call itself is replaced.
    pub fn submit_with<F>(&self, jobs: Vec<Job>, runner: F) -> JobHandle
    where
        F: Fn(&Job) -> Result<SimResult, SchemeConfigError> + Send + Sync + 'static,
    {
        // Static pre-flight: classify every distinct configuration shape
        // once (load and seed do not enter the analysis, so a whole load
        // sweep shares one verdict) and stamp it on each outcome.
        let mut verdicts: Vec<(String, Option<Verdict>)> = Vec::new();
        for job in &jobs {
            let key = verify_key(&job.cfg);
            if !verdicts.iter().any(|(k, _)| *k == key) {
                let v = mdd_core::verify_config(&job.cfg).ok();
                verdicts.push((key, v));
            }
        }
        let total = jobs.len();
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        if total > 0 {
            note_jobs_in_flight(1);
            let runner = Arc::new(runner);
            let pending = Arc::new(AtomicUsize::new(total));
            for job in jobs {
                let verdict = verdicts
                    .iter()
                    .find(|(k, _)| *k == verify_key(&job.cfg))
                    .and_then(|(_, v)| v.clone());
                let inner = Arc::clone(&self.inner);
                let tx = tx.clone();
                let cancel = Arc::clone(&cancel);
                let runner = Arc::clone(&runner);
                let pending = Arc::clone(&pending);
                self.inner.pool.spawn(move || {
                    // Exactly one outcome per job, always: a cancelled
                    // point reports as such rather than vanishing, so a
                    // drain always sees `total` messages.
                    let outcome = if cancel.load(Ordering::SeqCst) {
                        cancelled_outcome(&job, verdict)
                    } else {
                        run_one(inner.cache.as_ref(), &job, runner.as_ref(), verdict)
                    };
                    let _ = tx.send(outcome);
                    if pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                        note_jobs_in_flight(-1);
                    }
                    sample_pool_gauges(&inner.pool);
                });
            }
            sample_pool_gauges(&self.inner.pool);
        }
        JobHandle {
            rx,
            total,
            received: Vec::new(),
            cancel,
        }
    }

    /// Classify a fault sweep on this engine's worker pool: build the
    /// base analysis once, group the fault points by
    /// [`fault_orbit_key`], re-verify one representative per orbit as a
    /// pool task, and replicate each orbit's outcome to its members in
    /// the original enumeration order. Equivalent to
    /// [`mdd_verify::classify_fault_points`] (both funnel through
    /// [`FrontierReport::assemble`] and its debug cross-check), with the
    /// per-orbit re-verdicts running in parallel.
    pub fn fault_frontier(&self, cfg: AnalysisConfig, faults: Vec<FaultSet>) -> FrontierReport {
        let base = Arc::new(BaseAnalysis::analyze(cfg));
        let mut keys: Vec<String> = Vec::new();
        let mut reps: Vec<FaultSet> = Vec::new();
        let orbit_of: Vec<usize> = faults
            .iter()
            .map(|f| {
                let key = fault_orbit_key(base.config().topo(), f);
                keys.iter().position(|k| *k == key).unwrap_or_else(|| {
                    keys.push(key);
                    reps.push(f.clone());
                    keys.len() - 1
                })
            })
            .collect();

        let (tx, rx) = mpsc::channel();
        let num_orbits = reps.len();
        for (i, rep) in reps.into_iter().enumerate() {
            let base = Arc::clone(&base);
            let tx = tx.clone();
            self.inner.pool.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| base.reverify_outcome(&rep)));
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);
        let mut outcomes: Vec<Option<FaultOutcome>> = vec![None; num_orbits];
        for (i, outcome) in rx {
            match outcome {
                Ok(o) => outcomes[i] = Some(o),
                Err(payload) => panic!(
                    "fault-frontier re-verdict panicked: {}",
                    panic_message(payload.as_ref())
                ),
            }
        }
        let evaluated: Vec<(FaultSet, FaultOutcome)> = faults
            .into_iter()
            .zip(orbit_of)
            .map(|(f, oi)| (f, outcomes[oi].expect("every orbit was evaluated")))
            .collect();
        FrontierReport::assemble(&base, evaluated)
    }
}

/// Configures an [`Engine`]: worker count, cache location.
#[derive(Debug, Default)]
pub struct EngineBuilder {
    jobs: Option<usize>,
    cache_dir: Option<PathBuf>,
    cache: Option<ResultCache>,
}

impl EngineBuilder {
    /// Run this engine on its own pool of exactly `n` workers instead of
    /// the shared global pool. The bench binaries' `--jobs` flag ends up
    /// here. `n` must be positive; [`EngineBuilder::build`] rejects `0`
    /// (there is no pool to run on) — flag parsers should treat an
    /// absent flag as "use the machine default", not as `0`.
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = Some(n);
        self
    }

    /// Back the engine with the cache directory `dir` (created on
    /// demand).
    pub fn cache_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.cache_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Back the engine with an already opened cache.
    pub fn cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Build the engine. Fails if the cache directory cannot be opened
    /// or `jobs` was `0`.
    pub fn build(self) -> io::Result<Engine> {
        let cache = match (self.cache, self.cache_dir) {
            (Some(cache), _) => Some(cache),
            (None, Some(dir)) => Some(ResultCache::open(dir)?),
            (None, None) => None,
        };
        let pool = match self.jobs {
            None => rayon::global_pool(),
            Some(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "engine needs at least one worker (jobs = 0)",
                ))
            }
            Some(n) => Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .map_err(io::Error::other)?,
            ),
        };
        Ok(Engine {
            inner: Arc::new(EngineInner { cache, pool }),
        })
    }
}

/// The streaming side of one [`Engine::submit`]: yields each point's
/// [`PointOutcome`] as it completes (completion order, not submission
/// order), and assembles the deterministically ordered [`SweepReport`]
/// once drained.
///
/// Every submitted job produces exactly one outcome — simulated, cached,
/// failed, or cancelled — so draining always terminates after
/// [`JobHandle::total`] messages.
#[derive(Debug)]
pub struct JobHandle {
    rx: mpsc::Receiver<PointOutcome>,
    total: usize,
    received: Vec<PointOutcome>,
    cancel: Arc<AtomicBool>,
}

impl JobHandle {
    /// Number of jobs submitted (and of outcomes this handle will
    /// yield).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Outcomes already yielded.
    pub fn received(&self) -> usize {
        self.received.len()
    }

    /// Outcomes still to come.
    pub fn remaining(&self) -> usize {
        self.total - self.received.len()
    }

    /// Block until the next point completes; `None` once all outcomes
    /// have been yielded (or, defensively, if the engine's pool vanished
    /// mid-batch).
    pub fn recv(&mut self) -> Option<PointOutcome> {
        if self.remaining() == 0 {
            return None;
        }
        let outcome = self.rx.recv().ok()?;
        self.received.push(outcome.clone());
        Some(outcome)
    }

    /// Yield the next completed point without blocking; `None` when none
    /// is ready right now (or the stream is exhausted).
    pub fn try_recv(&mut self) -> Option<PointOutcome> {
        if self.remaining() == 0 {
            return None;
        }
        let outcome = self.rx.try_recv().ok()?;
        self.received.push(outcome.clone());
        Some(outcome)
    }

    /// Drain the stream and assemble the report. Points already consumed
    /// via [`JobHandle::recv`] are included — streaming first and then
    /// waiting loses nothing. The report is ordered by job id, so it is
    /// identical (bit-for-bit) regardless of worker count or completion
    /// order.
    pub fn wait(mut self) -> SweepReport {
        while self.recv().is_some() {}
        SweepReport::from_outcomes(self.received)
    }

    /// Request cancellation: points not yet started yield
    /// [`PointFailure::Cancelled`] outcomes; points already running
    /// finish normally. The stream still delivers every outcome.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// A detachable cancel token for this batch (the daemon hands these
    /// to other connections).
    pub fn canceller(&self) -> Canceller {
        Canceller(Arc::clone(&self.cancel))
    }
}

/// Cancels one submitted batch from anywhere (cloneable, thread-safe).
#[derive(Clone, Debug)]
pub struct Canceller(Arc<AtomicBool>);

impl Canceller {
    /// Request cancellation (see [`JobHandle::cancel`]).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

fn run_one<F>(
    cache: Option<&ResultCache>,
    job: &Job,
    runner: &F,
    verdict: Option<Verdict>,
) -> PointOutcome
where
    F: Fn(&Job) -> Result<SimResult, SchemeConfigError>,
{
    let key = job.key();
    if let Some(cache) = cache {
        if let Some(hit) = cache.get(&key) {
            mdd_obs::counter_add(CounterId::PointsCached, 1);
            return PointOutcome {
                job: job.clone(),
                result: Ok(hit),
                from_cache: true,
                wall_micros: 0,
                verdict,
            };
        }
    }
    mdd_obs::counter_add(CounterId::PointsStarted, 1);
    let start = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| runner(job)));
    let wall_micros = start.elapsed().as_micros() as u64;
    mdd_obs::counter_add(CounterId::PointWallMicros, wall_micros);
    let result = match run {
        Ok(Ok(result)) => {
            mdd_obs::counter_add(CounterId::PointsCompleted, 1);
            if let Some(cache) = cache {
                if let Err(e) = cache.put(&key, &job.label, &result) {
                    // A write failure degrades the cache, not the
                    // sweep: the result is still returned.
                    eprintln!("mdd-engine: cache write failed for {key}: {e}");
                }
            }
            Ok(result)
        }
        Ok(Err(e)) => {
            mdd_obs::counter_add(CounterId::PointsFailed, 1);
            Err(PointError {
                job: job.id,
                label: job.label.clone(),
                load: job.load(),
                failure: PointFailure::Config(e),
            })
        }
        Err(payload) => {
            mdd_obs::counter_add(CounterId::PointsFailed, 1);
            Err(PointError {
                job: job.id,
                label: job.label.clone(),
                load: job.load(),
                failure: PointFailure::Panic(panic_message(payload.as_ref())),
            })
        }
    };
    PointOutcome {
        job: job.clone(),
        result,
        from_cache: false,
        wall_micros,
        verdict,
    }
}

fn cancelled_outcome(job: &Job, verdict: Option<Verdict>) -> PointOutcome {
    PointOutcome {
        job: job.clone(),
        result: Err(PointError {
            job: job.id,
            label: job.label.clone(),
            load: job.load(),
            failure: PointFailure::Cancelled,
        }),
        from_cache: false,
        wall_micros: 0,
        verdict,
    }
}

/// Batches currently in flight across every engine of the process (the
/// `jobs_in_flight` gauge).
static JOBS_IN_FLIGHT: AtomicU64 = AtomicU64::new(0);

fn note_jobs_in_flight(delta: i64) {
    let now = if delta >= 0 {
        JOBS_IN_FLIGHT.fetch_add(delta as u64, Ordering::SeqCst) + delta as u64
    } else {
        JOBS_IN_FLIGHT
            .fetch_sub(delta.unsigned_abs(), Ordering::SeqCst)
            .saturating_sub(delta.unsigned_abs())
    };
    mdd_obs::gauge_set(CounterId::JobsInFlight, now);
}

fn sample_pool_gauges(pool: &rayon::ThreadPool) {
    if !mdd_obs::enabled() {
        return;
    }
    let s = pool.stats();
    mdd_obs::gauge_set(CounterId::PoolWorkersBusy, s.busy as u64);
    mdd_obs::gauge_set(CounterId::PoolQueueDepth, s.queued as u64);
    mdd_obs::gauge_set(CounterId::PoolSteals, s.steals);
}

/// The projection of a configuration that the static verifier reads:
/// everything except load, seed and the simulation windows. Used to
/// memoize one verdict across the points of a sweep. The pattern is
/// compared by `Arc` identity — sweep points derived via
/// [`SimConfig::at_load`] share the allocation.
fn verify_key(cfg: &SimConfig) -> String {
    format!(
        "{:p}|{:?}|{}|{}|{}|{:?}|{:?}",
        std::sync::Arc::as_ptr(&cfg.pattern),
        cfg.radix,
        cfg.mesh,
        cfg.bristle,
        cfg.vcs,
        cfg.scheme,
        cfg.effective_queue_org(),
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The fate of one scheduled point.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// The job as scheduled.
    pub job: Job,
    /// The simulated (or cache-served) result, or the typed failure.
    pub result: Result<SimResult, PointError>,
    /// True when the result came from the persistent cache.
    pub from_cache: bool,
    /// Wall-clock microseconds this point's simulation took (0 for cache
    /// hits).
    pub wall_micros: u64,
    /// The static pre-flight verdict for this point's configuration
    /// (`None` only when the configuration is infeasible for its scheme —
    /// such points fail at construction anyway).
    pub verdict: Option<Verdict>,
}

impl PointOutcome {
    /// True when this outcome is a cancelled-before-start point.
    pub fn cancelled(&self) -> bool {
        matches!(
            &self.result,
            Err(PointError {
                failure: PointFailure::Cancelled,
                ..
            })
        )
    }
}

/// Everything a batch produced, ordered by job id — independent of
/// worker count and completion order, so reports (and the curves built
/// from them) are bit-identical across `--jobs` settings.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// One outcome per scheduled job, in job-id order.
    pub outcomes: Vec<PointOutcome>,
}

impl SweepReport {
    /// Assemble a report from streamed outcomes (any order; sorted by
    /// job id here so assembly is deterministic).
    pub fn from_outcomes(mut outcomes: Vec<PointOutcome>) -> Self {
        outcomes.sort_by_key(|o| o.job.id);
        SweepReport { outcomes }
    }

    /// Points served from the cache.
    pub fn cached(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.from_cache).count() as u64
    }

    /// Points that actually simulated to completion.
    pub fn simulated(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| !o.from_cache && o.result.is_ok())
            .count() as u64
    }

    /// Points that failed (configuration errors and isolated panics;
    /// cancellations count separately — see [`SweepReport::cancelled`]).
    pub fn failed(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.result.is_err() && !o.cancelled())
            .count() as u64
    }

    /// Points cancelled before they started.
    pub fn cancelled(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.cancelled()).count() as u64
    }

    /// True when every point succeeded.
    pub fn complete(&self) -> bool {
        self.failed() == 0 && self.cancelled() == 0
    }

    /// The successful results, in job order.
    pub fn results(&self) -> Vec<&SimResult> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .collect()
    }

    /// The successful results by value, in job order (for call sites
    /// migrating from `run_curve_checked` without inspecting per-point
    /// errors).
    pub fn into_results(self) -> Vec<SimResult> {
        self.outcomes
            .into_iter()
            .filter_map(|o| o.result.ok())
            .collect()
    }

    /// The static pre-flight verdicts, in job order.
    pub fn verdicts(&self) -> Vec<Option<&Verdict>> {
        self.outcomes.iter().map(|o| o.verdict.as_ref()).collect()
    }

    /// The failures (cancellations included), in job order.
    pub fn errors(&self) -> Vec<&PointError> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err())
            .collect()
    }

    /// Assemble the (possibly partial) BNF curve of the successful
    /// points.
    pub fn curve(&self, label: &str) -> BnfCurve {
        BnfCurve::assemble(
            label,
            self.outcomes
                .iter()
                .filter_map(|o| o.result.as_ref().ok().map(SimResult::bnf_point)),
        )
    }

    /// Total wall-clock microseconds spent simulating (cache hits add
    /// nothing; parallel points sum, so this exceeds elapsed time).
    pub fn wall_micros(&self) -> u64 {
        self.outcomes.iter().map(|o| o.wall_micros).sum()
    }

    /// One-line progress summary, e.g. `9 points: 6 simulated, 3 cached`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} points: {} simulated, {} cached",
            self.outcomes.len(),
            self.simulated(),
            self.cached()
        );
        if self.failed() > 0 {
            s.push_str(&format!(", {} FAILED", self.failed()));
        }
        if self.cancelled() > 0 {
            s.push_str(&format!(", {} cancelled", self.cancelled()));
        }
        s
    }
}
