//! The batch scheduler: cache lookup, parallel execution, panic
//! isolation, progress counters.

use crate::cache::ResultCache;
use crate::error::{PointError, PointFailure};
use crate::job::Job;
use mdd_core::{SimConfig, SimResult, Simulator};
use mdd_obs::CounterId;
use mdd_stats::BnfCurve;
use mdd_verify::Verdict;
use rayon::prelude::*;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Instant;

/// The batch experiment engine. Construction picks the cache policy;
/// [`Engine::run_sweep`] / [`Engine::run_jobs`] then schedule any number
/// of batches over the rayon workers, each point isolated by
/// `catch_unwind` so one poisoned point becomes a [`PointError`] in the
/// report instead of killing the sweep.
///
/// Progress is reported through the global `mdd-obs` counters when that
/// layer is installed: `points_started`, `points_completed`,
/// `points_cached`, `points_failed` and `point_wall_micros`.
#[derive(Debug, Default)]
pub struct Engine {
    cache: Option<ResultCache>,
}

impl Engine {
    /// An engine without a persistent cache: every point simulates.
    pub fn new() -> Self {
        Engine { cache: None }
    }

    /// An engine backed by the cache directory `dir` (created on demand;
    /// `results/cache/` by convention — see [`ResultCache::open`]).
    pub fn with_cache_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Engine {
            cache: Some(ResultCache::open(dir)?),
        })
    }

    /// An engine around an already opened cache.
    pub fn with_cache(cache: ResultCache) -> Self {
        Engine { cache: Some(cache) }
    }

    /// The cache, if this engine has one.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Cap the number of worker threads used by every subsequent batch
    /// (process-global, like rayon's `build_global`; `0` restores the
    /// machine default). The `--jobs` flag of the bench binaries ends up
    /// here.
    pub fn set_jobs(n: usize) {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("the rayon shim's build_global cannot fail");
    }

    /// Run one labelled load sweep of `base` over `loads` and assemble
    /// the (possibly partial) BNF curve from the successful points.
    pub fn run_sweep(&self, base: &SimConfig, loads: &[f64], label: &str) -> SweepReport {
        self.run_jobs(Job::points(base, loads, label))
    }

    /// Run a batch of fully resolved jobs with the default simulation
    /// runner.
    pub fn run_jobs(&self, jobs: Vec<Job>) -> SweepReport {
        self.run_jobs_with(jobs, |job: &Job| {
            Simulator::new(job.cfg.clone()).map(|mut sim| sim.run())
        })
    }

    /// Run a batch through a caller-supplied runner — the seam the
    /// integration tests use to inject failures, and the hook for
    /// alternative backends. Cache lookup, panic isolation, counters and
    /// report assembly are identical to [`Engine::run_jobs`]; only the
    /// simulation call itself is replaced.
    pub fn run_jobs_with<F>(&self, jobs: Vec<Job>, runner: F) -> SweepReport
    where
        F: Fn(&Job) -> Result<SimResult, mdd_core::SchemeConfigError> + Sync,
    {
        // Static pre-flight: classify every distinct configuration shape
        // once (load and seed do not enter the analysis, so a whole load
        // sweep shares one verdict) and stamp it on each outcome.
        let mut verdicts: Vec<(String, Option<Verdict>)> = Vec::new();
        for job in &jobs {
            let key = verify_key(&job.cfg);
            if !verdicts.iter().any(|(k, _)| *k == key) {
                let v = mdd_core::verify_config(&job.cfg).ok();
                verdicts.push((key, v));
            }
        }
        let outcomes: Vec<PointOutcome> = jobs
            .par_iter()
            .map(|job| {
                let verdict = verdicts
                    .iter()
                    .find(|(k, _)| *k == verify_key(&job.cfg))
                    .and_then(|(_, v)| v.clone());
                self.run_one(job, &runner, verdict)
            })
            .collect();
        SweepReport { outcomes }
    }

    fn run_one<F>(&self, job: &Job, runner: &F, verdict: Option<Verdict>) -> PointOutcome
    where
        F: Fn(&Job) -> Result<SimResult, mdd_core::SchemeConfigError> + Sync,
    {
        let key = job.key();
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(&key) {
                mdd_obs::counter_add(CounterId::PointsCached, 1);
                return PointOutcome {
                    job: job.clone(),
                    result: Ok(hit),
                    from_cache: true,
                    wall_micros: 0,
                    verdict,
                };
            }
        }
        mdd_obs::counter_add(CounterId::PointsStarted, 1);
        let start = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| runner(job)));
        let wall_micros = start.elapsed().as_micros() as u64;
        mdd_obs::counter_add(CounterId::PointWallMicros, wall_micros);
        let result = match run {
            Ok(Ok(result)) => {
                mdd_obs::counter_add(CounterId::PointsCompleted, 1);
                if let Some(cache) = &self.cache {
                    if let Err(e) = cache.put(&key, &job.label, &result) {
                        // A write failure degrades the cache, not the
                        // sweep: the result is still returned.
                        eprintln!("mdd-engine: cache write failed for {key}: {e}");
                    }
                }
                Ok(result)
            }
            Ok(Err(e)) => {
                mdd_obs::counter_add(CounterId::PointsFailed, 1);
                Err(PointError {
                    job: job.id,
                    label: job.label.clone(),
                    load: job.load(),
                    failure: PointFailure::Config(e),
                })
            }
            Err(payload) => {
                mdd_obs::counter_add(CounterId::PointsFailed, 1);
                Err(PointError {
                    job: job.id,
                    label: job.label.clone(),
                    load: job.load(),
                    failure: PointFailure::Panic(panic_message(payload.as_ref())),
                })
            }
        };
        PointOutcome {
            job: job.clone(),
            result,
            from_cache: false,
            wall_micros,
            verdict,
        }
    }
}

/// The projection of a configuration that the static verifier reads:
/// everything except load, seed and the simulation windows. Used to
/// memoize one verdict across the points of a sweep. The pattern is
/// compared by `Arc` identity — sweep points derived via
/// [`SimConfig::at_load`] share the allocation.
fn verify_key(cfg: &SimConfig) -> String {
    format!(
        "{:p}|{:?}|{}|{}|{}|{:?}|{:?}",
        std::sync::Arc::as_ptr(&cfg.pattern),
        cfg.radix,
        cfg.mesh,
        cfg.bristle,
        cfg.vcs,
        cfg.scheme,
        cfg.effective_queue_org(),
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The fate of one scheduled point.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// The job as scheduled.
    pub job: Job,
    /// The simulated (or cache-served) result, or the typed failure.
    pub result: Result<SimResult, PointError>,
    /// True when the result came from the persistent cache.
    pub from_cache: bool,
    /// Wall-clock microseconds this point's simulation took (0 for cache
    /// hits).
    pub wall_micros: u64,
    /// The static pre-flight verdict for this point's configuration
    /// (`None` only when the configuration is infeasible for its scheme —
    /// such points fail at construction anyway).
    pub verdict: Option<Verdict>,
}

/// Everything a batch produced, in job order.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// One outcome per scheduled job, in scheduling order.
    pub outcomes: Vec<PointOutcome>,
}

impl SweepReport {
    /// Points served from the cache.
    pub fn cached(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.from_cache).count() as u64
    }

    /// Points that actually simulated to completion.
    pub fn simulated(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| !o.from_cache && o.result.is_ok())
            .count() as u64
    }

    /// Points that failed (configuration errors and isolated panics).
    pub fn failed(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.result.is_err()).count() as u64
    }

    /// True when every point succeeded.
    pub fn complete(&self) -> bool {
        self.failed() == 0
    }

    /// The successful results, in job order.
    pub fn results(&self) -> Vec<&SimResult> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .collect()
    }

    /// The successful results by value, in job order (for call sites
    /// migrating from `run_curve_checked` without inspecting per-point
    /// errors).
    pub fn into_results(self) -> Vec<SimResult> {
        self.outcomes
            .into_iter()
            .filter_map(|o| o.result.ok())
            .collect()
    }

    /// The static pre-flight verdicts, in job order.
    pub fn verdicts(&self) -> Vec<Option<&Verdict>> {
        self.outcomes.iter().map(|o| o.verdict.as_ref()).collect()
    }

    /// The failures, in job order.
    pub fn errors(&self) -> Vec<&PointError> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err())
            .collect()
    }

    /// Assemble the (possibly partial) BNF curve of the successful
    /// points.
    pub fn curve(&self, label: &str) -> BnfCurve {
        BnfCurve::assemble(
            label,
            self.outcomes
                .iter()
                .filter_map(|o| o.result.as_ref().ok().map(SimResult::bnf_point)),
        )
    }

    /// Total wall-clock microseconds spent simulating (cache hits add
    /// nothing; parallel points sum, so this exceeds elapsed time).
    pub fn wall_micros(&self) -> u64 {
        self.outcomes.iter().map(|o| o.wall_micros).sum()
    }

    /// One-line progress summary, e.g. `9 points: 6 simulated, 3 cached`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} points: {} simulated, {} cached",
            self.outcomes.len(),
            self.simulated(),
            self.cached()
        );
        if self.failed() > 0 {
            s.push_str(&format!(", {} FAILED", self.failed()));
        }
        s
    }
}
