//! JSONL encoding of cached points.
//!
//! One flat JSON object per line: the cache key, the label, a format
//! version, and every measured field of [`SimResult`]. Floats are written
//! in Rust's shortest round-trip form, so decode(encode(r)) == r
//! bit-for-bit. The observability snapshot is *not* persisted — obs
//! counters are process-cumulative and meaningless outside the run that
//! produced them — so cache-served results carry `obs: None`.

use mdd_core::SimResult;

/// Format version written into every line; lines with any other version
/// are ignored on load (bulk invalidation when the schema changes).
pub const CACHE_LINE_VERSION: u64 = 1;

/// Encode one cached point as a single JSONL line (no trailing newline).
pub fn encode_line(key: &str, label: &str, r: &SimResult) -> String {
    let (q50, q95, q99) = r.latency_quantiles;
    format!(
        concat!(
            "{{\"v\":{v},\"key\":\"{key}\",\"label\":\"{label}\",",
            "\"applied_load\":{applied_load:?},\"throughput\":{throughput:?},",
            "\"avg_latency\":{avg_latency:?},\"q50\":{q50:?},\"q95\":{q95:?},\"q99\":{q99:?},",
            "\"messages_delivered\":{messages_delivered},\"transactions\":{transactions},",
            "\"deadlocks\":{deadlocks},\"router_rescues\":{router_rescues},",
            "\"deflections\":{deflections},\"rescues\":{rescues},\"generated\":{generated},",
            "\"mc_utilization\":{mc_utilization:?},\"cwg_checks\":{cwg_checks},",
            "\"cwg_deadlocked_checks\":{cwg_deadlocked_checks},",
            "\"vc_util_mean\":{vc_util_mean:?},\"vc_util_max\":{vc_util_max:?},",
            "\"vc_util_cv\":{vc_util_cv:?}}}"
        ),
        v = CACHE_LINE_VERSION,
        key = escape(key),
        label = escape(label),
        applied_load = r.applied_load,
        throughput = r.throughput,
        avg_latency = r.avg_latency,
        q50 = q50,
        q95 = q95,
        q99 = q99,
        messages_delivered = r.messages_delivered,
        transactions = r.transactions,
        deadlocks = r.deadlocks,
        router_rescues = r.router_rescues,
        deflections = r.deflections,
        rescues = r.rescues,
        generated = r.generated,
        mc_utilization = r.mc_utilization,
        cwg_checks = r.cwg_checks,
        cwg_deadlocked_checks = r.cwg_deadlocked_checks,
        vc_util_mean = r.vc_util_mean,
        vc_util_max = r.vc_util_max,
        vc_util_cv = r.vc_util_cv,
    )
}

/// Decode one line back into `(key, label, result)`. `None` on any
/// malformed, truncated or version-mismatched line — the cache treats
/// such lines as absent rather than failing, so a file cut short by an
/// interrupt only loses its final entry.
pub fn decode_line(line: &str) -> Option<(String, String, SimResult)> {
    let fields = parse_flat_object(line)?;
    let num = |k: &str| -> Option<f64> { fields.iter().find(|(n, _)| n == k)?.1.number() };
    let int = |k: &str| -> Option<u64> {
        let v = num(k)?;
        (v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
    };
    let text = |k: &str| -> Option<String> {
        match &fields.iter().find(|(n, _)| n == k)?.1 {
            Value::Text(s) => Some(s.clone()),
            Value::Number(_) => None,
        }
    };
    if int("v")? != CACHE_LINE_VERSION {
        return None;
    }
    let result = SimResult {
        applied_load: num("applied_load")?,
        throughput: num("throughput")?,
        avg_latency: num("avg_latency")?,
        latency_quantiles: (num("q50")?, num("q95")?, num("q99")?),
        messages_delivered: int("messages_delivered")?,
        transactions: int("transactions")?,
        deadlocks: int("deadlocks")?,
        router_rescues: int("router_rescues")?,
        deflections: int("deflections")?,
        rescues: int("rescues")?,
        generated: int("generated")?,
        mc_utilization: num("mc_utilization")?,
        cwg_checks: int("cwg_checks")?,
        cwg_deadlocked_checks: int("cwg_deadlocked_checks")?,
        vc_util_mean: num("vc_util_mean")?,
        vc_util_max: num("vc_util_max")?,
        vc_util_cv: num("vc_util_cv")?,
        obs: None,
    };
    Some((text("key")?, text("label")?, result))
}

enum Value {
    Text(String),
    Number(f64),
}

impl Value {
    fn number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Text(_) => None,
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a one-line flat JSON object of string and number values (the
/// only shape this cache writes). Not a general JSON parser.
fn parse_flat_object(line: &str) -> Option<Vec<(String, Value)>> {
    let line = line.trim();
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Key.
        skip_ws(&mut chars);
        if chars.peek().is_none() {
            break;
        }
        if chars.next()? != '"' {
            return None;
        }
        let key = read_string_tail(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        // Value: string or number.
        let value = if chars.peek() == Some(&'"') {
            chars.next();
            Value::Text(read_string_tail(&mut chars)?)
        } else {
            let mut tok = String::new();
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                tok.push(c);
                chars.next();
            }
            Value::Number(tok.trim().parse().ok()?)
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            None => break,
            Some(',') => {}
            Some(_) => return None,
        }
    }
    Some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

/// Read a JSON string after its opening quote, consuming the closing one.
fn read_string_tail(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&code, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}
