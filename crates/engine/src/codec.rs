//! JSONL encoding of cached points.
//!
//! One flat JSON object per line: the cache key, the label, a format
//! version, and every measured field of [`SimResult`]. Built on the
//! shared [`Json`] value type (floats render in Rust's shortest
//! round-trip form), so decode(encode(r)) == r bit-for-bit — and the
//! daemon protocol's `result` objects are the same serialization, minus
//! the key/label/version envelope. The observability snapshot is *not*
//! persisted — obs counters are process-cumulative and meaningless
//! outside the run that produced them — so cache-served results carry
//! `obs: None`.

use crate::json::Json;
use mdd_core::SimResult;

/// Format version written into every line; lines with any other version
/// are ignored on load (bulk invalidation when the schema changes).
pub const CACHE_LINE_VERSION: u64 = 1;

/// Encode one cached point as a single JSONL line (no trailing newline).
pub fn encode_line(key: &str, label: &str, r: &SimResult) -> String {
    let mut fields = vec![
        ("v".to_string(), Json::Int(CACHE_LINE_VERSION)),
        ("key".to_string(), Json::Str(key.to_string())),
        ("label".to_string(), Json::Str(label.to_string())),
    ];
    fields.extend(result_fields(r));
    Json::Obj(fields).render()
}

/// Decode one line back into `(key, label, result)`. `None` on any
/// malformed, truncated or version-mismatched line — the cache treats
/// such lines as absent rather than failing, so a file cut short by an
/// interrupt only loses its final entry.
pub fn decode_line(line: &str) -> Option<(String, String, SimResult)> {
    let j = Json::parse(line.trim())?;
    if j.get("v")?.as_u64()? != CACHE_LINE_VERSION {
        return None;
    }
    let result = result_from_json(&j)?;
    Some((
        j.get("key")?.as_str()?.to_string(),
        j.get("label")?.as_str()?.to_string(),
        result,
    ))
}

/// The measured fields of a result, in canonical write order.
fn result_fields(r: &SimResult) -> Vec<(String, Json)> {
    let (q50, q95, q99) = r.latency_quantiles;
    let f = |k: &str, v: f64| (k.to_string(), Json::Num(v));
    let i = |k: &str, v: u64| (k.to_string(), Json::Int(v));
    vec![
        f("applied_load", r.applied_load),
        f("throughput", r.throughput),
        f("avg_latency", r.avg_latency),
        f("q50", q50),
        f("q95", q95),
        f("q99", q99),
        i("messages_delivered", r.messages_delivered),
        i("transactions", r.transactions),
        i("deadlocks", r.deadlocks),
        i("router_rescues", r.router_rescues),
        i("deflections", r.deflections),
        i("rescues", r.rescues),
        i("generated", r.generated),
        f("mc_utilization", r.mc_utilization),
        i("cwg_checks", r.cwg_checks),
        i("cwg_deadlocked_checks", r.cwg_deadlocked_checks),
        f("vc_util_mean", r.vc_util_mean),
        f("vc_util_max", r.vc_util_max),
        f("vc_util_cv", r.vc_util_cv),
    ]
}

/// A result as a bare JSON object (no key/label/version envelope) — the
/// shape the daemon protocol streams inside point events.
pub(crate) fn result_to_json(r: &SimResult) -> Json {
    Json::Obj(result_fields(r))
}

/// Rebuild a result from an object carrying the measured fields (either
/// a full cache line or a protocol `result` object). `None` if any field
/// is missing or mistyped.
pub(crate) fn result_from_json(j: &Json) -> Option<SimResult> {
    let num = |k: &str| j.get(k)?.as_f64();
    let int = |k: &str| j.get(k)?.as_u64();
    Some(SimResult {
        applied_load: num("applied_load")?,
        throughput: num("throughput")?,
        avg_latency: num("avg_latency")?,
        latency_quantiles: (num("q50")?, num("q95")?, num("q99")?),
        messages_delivered: int("messages_delivered")?,
        transactions: int("transactions")?,
        deadlocks: int("deadlocks")?,
        router_rescues: int("router_rescues")?,
        deflections: int("deflections")?,
        rescues: int("rescues")?,
        generated: int("generated")?,
        mc_utilization: num("mc_utilization")?,
        cwg_checks: int("cwg_checks")?,
        cwg_deadlocked_checks: int("cwg_deadlocked_checks")?,
        vc_util_mean: num("vc_util_mean")?,
        vc_util_max: num("vc_util_max")?,
        vc_util_cv: num("vc_util_cv")?,
        obs: None,
    })
}
