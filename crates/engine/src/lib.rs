//! mdd-engine: the fault-tolerant, cached, streaming experiment engine.
//!
//! All figure harnesses, the bench binaries, and the `mddsimd` sweep
//! daemon route their simulation points through this crate. Four ideas
//! compose:
//!
//! 1. **Jobs.** A [`Job`] is one fully resolved
//!    [`SimConfig`](mdd_core::SimConfig) plus the curve label and point
//!    id it reports under. [`Job::points`] expands a base config and a
//!    load vector into a batch, applying the same per-point seed
//!    decorrelation the classic sweep used.
//! 2. **Streaming submission.** [`Engine::submit`] schedules a batch
//!    onto a work-stealing thread pool and returns a [`JobHandle`]
//!    immediately; each [`PointOutcome`] streams back as it completes
//!    ([`JobHandle::recv`] / [`JobHandle::try_recv`]), and
//!    [`JobHandle::wait`] assembles the drained stream into a
//!    [`SweepReport`] ordered by job id — bit-identical regardless of
//!    worker count. Batches can be cancelled mid-flight; unstarted
//!    points then stream back as [`PointFailure::Cancelled`].
//! 3. **Fault isolation.** Every point runs under `catch_unwind`: a
//!    poisoned point becomes a typed [`PointError`] in the stream while
//!    every other point runs to completion. Configuration failures
//!    surface the same way.
//! 4. **Content-addressed caching.** With [`Engine::with_cache_dir`],
//!    each completed point is persisted to an append-only JSONL shard
//!    keyed by the canonical hash of its configuration. Re-running an
//!    unchanged experiment simulates zero new points; changing any
//!    semantic field invalidates exactly the affected points. An
//!    interrupted sweep resumes from what it already finished, and
//!    concurrent engines may share a directory.
//!
//! The [`proto`] module serializes this same surface over a Unix domain
//! socket for the `mddsimd` daemon: a remote submit expands to the same
//! job batch, and each streamed line is one `PointOutcome`.
//!
//! ```
//! use mdd_engine::Engine;
//! use mdd_core::{PatternSpec, Scheme, SimConfig};
//!
//! let base = SimConfig::builder()
//!     .scheme(Scheme::ProgressiveRecovery)
//!     .pattern(PatternSpec::pat271())
//!     .radix(&[4, 4])
//!     .windows(200, 400)
//!     .build()
//!     .unwrap();
//! let engine = Engine::new(); // or Engine::with_cache_dir("results/cache")
//! let mut handle = engine.submit_sweep(&base, &[0.1, 0.2], "PR");
//! while let Some(outcome) = handle.recv() {
//!     // Points arrive as they complete — report progress here.
//!     assert!(outcome.result.is_ok());
//! }
//! let report = handle.wait(); // already drained: assembles instantly
//! assert!(report.complete());
//! let curve = report.curve("PR");
//! assert_eq!(curve.points.len(), 2);
//! ```

mod cache;
mod codec;
mod engine;
mod error;
mod job;
mod json;
pub mod proto;

pub use cache::{ResultCache, CACHE_FILE, CACHE_SHARDS};
pub use codec::{decode_line, encode_line, CACHE_LINE_VERSION};
pub use engine::{Canceller, Engine, EngineBuilder, JobHandle, PointOutcome, SweepReport};
pub use error::{PointError, PointFailure};
pub use job::Job;
pub use json::Json;

/// The conventional cache directory used by the bench binaries.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// The conventional socket path of the `mddsimd` daemon.
pub const DEFAULT_SOCKET: &str = "/tmp/mddsimd.sock";
