//! mdd-engine: the fault-tolerant, cached batch experiment engine.
//!
//! All figure harnesses and the bench binaries route their simulation
//! points through this crate. Three ideas compose:
//!
//! 1. **Jobs.** A [`Job`] is one fully resolved
//!    [`SimConfig`](mdd_core::SimConfig) plus the curve label and point
//!    id it reports under. [`Job::points`] expands a base config and a
//!    load vector into a batch, applying the same per-point seed
//!    decorrelation the classic sweep used.
//! 2. **Fault isolation.** The [`Engine`] schedules a batch across the
//!    rayon workers and wraps every point in `catch_unwind`: a poisoned
//!    point becomes a typed [`PointError`] in the [`SweepReport`]
//!    while every other point runs to completion. Configuration
//!    failures surface the same way.
//! 3. **Content-addressed caching.** With [`Engine::with_cache_dir`],
//!    each completed point is persisted to an append-only JSONL file
//!    keyed by the canonical hash of its configuration. Re-running an
//!    unchanged experiment simulates zero new points; changing any
//!    semantic field invalidates exactly the affected points. An
//!    interrupted sweep resumes from what it already finished.
//!
//! ```
//! use mdd_engine::Engine;
//! use mdd_core::{PatternSpec, Scheme, SimConfig};
//!
//! let base = SimConfig::builder()
//!     .scheme(Scheme::ProgressiveRecovery)
//!     .pattern(PatternSpec::pat271())
//!     .radix(&[4, 4])
//!     .windows(200, 400)
//!     .build()
//!     .unwrap();
//! let engine = Engine::new(); // or Engine::with_cache_dir("results/cache")
//! let report = engine.run_sweep(&base, &[0.1, 0.2], "PR");
//! assert!(report.complete());
//! let curve = report.curve("PR");
//! assert_eq!(curve.points.len(), 2);
//! ```

mod cache;
mod codec;
mod engine;
mod error;
mod job;

pub use cache::{ResultCache, CACHE_FILE};
pub use codec::{decode_line, encode_line, CACHE_LINE_VERSION};
pub use engine::{Engine, PointOutcome, SweepReport};
pub use error::{PointError, PointFailure};
pub use job::Job;

/// The conventional cache directory used by the bench binaries.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";
