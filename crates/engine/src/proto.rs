//! The `mddsimd` wire protocol: line-delimited JSON over a Unix domain
//! socket.
//!
//! The protocol is deliberately a **serialization of the streaming
//! engine API**, not a second code path: a [`Request::Submit`] carries a
//! [`SweepSpec`] that expands into the same [`Job`] batch a local caller
//! would hand to `Engine::submit`, and every per-point [`Event::Point`]
//! is built from the `PointOutcome` the corresponding `JobHandle`
//! streamed. A client speaking this protocol sees exactly what a caller
//! of `JobHandle::recv` sees, one JSON object per line.
//!
//! ## Transcript
//!
//! Client lines (requests) and server lines (events) on one connection:
//!
//! ```text
//! C: {"op":"submit","label":"PR","scheme":"pr","pattern":"pat271","vcs":4,
//!     "radix":[4,4],"warmup":100,"measure":300,"loads":[0.05,0.1,0.15]}
//! S: {"event":"accepted","job":1,"points":3}
//! S: {"event":"point","job":1,"id":0,"label":"PR","load":0.05,"cached":false,
//!     "wall_micros":5301,"verdict":"RecoverableCycles","ok":true,
//!     "result":{"applied_load":0.05,"throughput":0.0497, …}}
//! S: {"event":"point","job":1,"id":2, … }        (completion order!)
//! S: {"event":"point","job":1,"id":1, … }
//! S: {"event":"done","job":1,"points":3,"simulated":3,"cached":0,
//!     "failed":0,"cancelled":0}
//! ```
//!
//! Control requests (usually issued on their own connections):
//!
//! ```text
//! C: {"op":"status"}
//! S: {"event":"status","jobs":[{"job":1,"label":"PR","state":"running",
//!     "done":2,"total":3}],"pool":{"threads":4,"busy":2,"queued":7,
//!     "steals":12,"executed":940},"cache_points":120}
//!
//! C: {"op":"cancel","job":1}
//! S: {"event":"cancelled","job":1}
//!
//! C: {"op":"shutdown"}
//! S: {"event":"shutting_down"}
//! ```
//!
//! Malformed or unserviceable requests produce
//! `{"event":"error","message":"…"}` and leave the connection open.
//!
//! Numbers ride as JSON numbers; integers above 2^53 are not
//! representable by every peer, so keys (which would overflow) ride as
//! strings and seeds are expected to stay below that bound.

use crate::engine::PointOutcome;
use crate::error::PointFailure;
use crate::job::Job;
use mdd_core::{PatternSpec, QueueOrg, Scheme, SimConfig, SimResult};

pub use crate::json::Json;

// ---------------------------------------------------------------------------
// Requests (client → server)
// ---------------------------------------------------------------------------

/// One client request, decoded from one line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Queue a sweep; the server streams [`Event::Accepted`], then one
    /// [`Event::Point`] per point in completion order, then
    /// [`Event::Done`].
    Submit(SweepSpec),
    /// Report queued/running jobs, pool gauges, and cache size.
    Status,
    /// Cancel a job: points not yet started stream back as cancelled.
    Cancel {
        /// Server-assigned job id (from [`Event::Accepted`]).
        job: u64,
    },
    /// Graceful shutdown: in-flight jobs finish streaming, then the
    /// server exits and removes its socket.
    Shutdown,
}

impl Request {
    /// Encode as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Submit(spec) => spec.to_json().render(),
            Request::Status => r#"{"op":"status"}"#.to_string(),
            Request::Cancel { job } => format!(r#"{{"op":"cancel","job":{job}}}"#),
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
        }
    }

    /// Decode one line. `Err` carries a human-readable reason suitable
    /// for an [`Event::Error`] reply.
    pub fn decode(line: &str) -> Result<Request, String> {
        let j = Json::parse(line).ok_or_else(|| "malformed JSON".to_string())?;
        match j.get("op").and_then(Json::as_str) {
            Some("submit") => Ok(Request::Submit(SweepSpec::from_json(&j)?)),
            Some("status") => Ok(Request::Status),
            Some("cancel") => Ok(Request::Cancel {
                job: j
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "cancel: missing job id".to_string())?,
            }),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown op {other:?}")),
            None => Err("missing \"op\" field".to_string()),
        }
    }
}

/// A load sweep as it rides the wire: the same parameters
/// `SimConfig::builder` takes locally, expanded server-side into the
/// identical [`Job`] batch via [`SweepSpec::jobs`].
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Curve label the points report under.
    pub label: String,
    /// Scheme mnemonic: `sa`, `sa+`, `dr` or `pr`.
    pub scheme: String,
    /// Pattern name: `pat100`, `pat721`, `pat451`, `pat271` or `pat280`.
    pub pattern: String,
    /// Virtual channels per physical channel.
    pub vcs: u8,
    /// Torus radix per dimension.
    pub radix: Vec<u32>,
    /// Processors per router.
    pub bristle: u32,
    /// Queue organization override: `shared`, `pernet` or `pertype`.
    pub queue_org: Option<String>,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Base seed (decorrelated per point exactly as local sweeps are).
    pub seed: u64,
    /// Execution shards inside each point's run (default 1). Results are
    /// bit-identical at any value, and the field stays out of the result
    /// cache key, so it only trades threads for wall-clock.
    pub shards: u32,
    /// Applied loads, one point each.
    pub loads: Vec<f64>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            label: "PR".to_string(),
            scheme: "pr".to_string(),
            pattern: "pat271".to_string(),
            vcs: 4,
            radix: vec![8, 8],
            bristle: 1,
            queue_org: None,
            warmup: 10_000,
            measure: 30_000,
            seed: 0x5eed,
            shards: 1,
            loads: Vec::new(),
        }
    }
}

impl SweepSpec {
    /// The scheme this spec names.
    pub fn scheme(&self) -> Result<Scheme, String> {
        match self.scheme.as_str() {
            "sa" => Ok(Scheme::StrictAvoidance {
                shared_adaptive: false,
            }),
            "sa+" => Ok(Scheme::StrictAvoidance {
                shared_adaptive: true,
            }),
            "dr" => Ok(Scheme::DeflectiveRecovery),
            "pr" => Ok(Scheme::ProgressiveRecovery),
            other => Err(format!("unknown scheme {other:?}")),
        }
    }

    /// The transaction pattern this spec names.
    pub fn pattern(&self) -> Result<PatternSpec, String> {
        match self.pattern.as_str() {
            "pat100" => Ok(PatternSpec::pat100()),
            "pat721" => Ok(PatternSpec::pat721()),
            "pat451" => Ok(PatternSpec::pat451()),
            "pat271" => Ok(PatternSpec::pat271()),
            "pat280" => Ok(PatternSpec::pat280()),
            other => Err(format!("unknown pattern {other:?}")),
        }
    }

    /// Expand into the exact job batch a local `Engine::submit` caller
    /// would build: a validated base config swept over `loads` with the
    /// standard per-point seed decorrelation.
    pub fn jobs(&self) -> Result<Vec<Job>, String> {
        if self.loads.is_empty() {
            return Err("submit: empty load list".to_string());
        }
        let queue_org = match self.queue_org.as_deref() {
            None => None,
            Some("shared") => Some(QueueOrg::Shared),
            Some("pernet") => Some(QueueOrg::PerNetwork),
            Some("pertype") => Some(QueueOrg::PerType),
            Some(other) => return Err(format!("unknown queue org {other:?}")),
        };
        let base: SimConfig = SimConfig::builder()
            .scheme(self.scheme()?)
            .pattern(self.pattern()?)
            .vcs(self.vcs)
            .radix(&self.radix)
            .bristle(self.bristle)
            .queue_org(queue_org)
            .windows(self.warmup, self.measure)
            .seed(self.seed)
            .shards(self.shards)
            .build()
            .map_err(|e| format!("infeasible configuration: {e}"))?;
        Ok(Job::points(&base, &self.loads, &self.label))
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("op".to_string(), Json::Str("submit".to_string())),
            ("label".to_string(), Json::Str(self.label.clone())),
            ("scheme".to_string(), Json::Str(self.scheme.clone())),
            ("pattern".to_string(), Json::Str(self.pattern.clone())),
            ("vcs".to_string(), Json::Int(u64::from(self.vcs))),
            (
                "radix".to_string(),
                Json::Arr(self.radix.iter().map(|&r| Json::Int(u64::from(r))).collect()),
            ),
            ("bristle".to_string(), Json::Int(u64::from(self.bristle))),
        ];
        if let Some(org) = &self.queue_org {
            fields.push(("queue_org".to_string(), Json::Str(org.clone())));
        }
        // Encoded only when non-default so pre-sharding peers (and
        // transcript fixtures) see byte-identical submit lines.
        if self.shards != 1 {
            fields.push(("shards".to_string(), Json::Int(u64::from(self.shards))));
        }
        fields.extend([
            ("warmup".to_string(), Json::Int(self.warmup)),
            ("measure".to_string(), Json::Int(self.measure)),
            ("seed".to_string(), Json::Int(self.seed)),
            (
                "loads".to_string(),
                Json::Arr(self.loads.iter().map(|&l| Json::Num(l)).collect()),
            ),
        ]);
        Json::Obj(fields)
    }

    fn from_json(j: &Json) -> Result<SweepSpec, String> {
        let d = SweepSpec::default();
        let text = |k: &str, dflt: &str| -> String {
            j.get(k)
                .and_then(Json::as_str)
                .map_or_else(|| dflt.to_string(), str::to_string)
        };
        let int = |k: &str, dflt: u64| j.get(k).and_then(Json::as_u64).unwrap_or(dflt);
        let radix = match j.get("radix") {
            None => d.radix.clone(),
            Some(v) => v
                .as_arr()
                .map(|xs| xs.iter().filter_map(Json::as_u64).map(|r| r as u32).collect())
                .filter(|xs: &Vec<u32>| !xs.is_empty())
                .ok_or_else(|| "submit: bad radix".to_string())?,
        };
        let loads = match j.get("loads") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .map(|xs| xs.iter().filter_map(Json::as_f64).collect::<Vec<f64>>())
                .filter(|xs| xs.iter().all(|l| l.is_finite()))
                .ok_or_else(|| "submit: bad loads".to_string())?,
        };
        Ok(SweepSpec {
            label: text("label", &d.label),
            scheme: text("scheme", &d.scheme),
            pattern: text("pattern", &d.pattern),
            vcs: int("vcs", u64::from(d.vcs)) as u8,
            radix,
            bristle: int("bristle", u64::from(d.bristle)) as u32,
            queue_org: j.get("queue_org").and_then(Json::as_str).map(str::to_string),
            warmup: int("warmup", d.warmup),
            measure: int("measure", d.measure),
            seed: int("seed", d.seed),
            shards: int("shards", u64::from(d.shards)) as u32,
            loads,
        })
    }
}

// ---------------------------------------------------------------------------
// Events (server → client)
// ---------------------------------------------------------------------------

/// One streamed point, the wire form of a `PointOutcome`.
#[derive(Clone, Debug)]
pub struct PointEvent {
    /// Server-assigned job id.
    pub job: u64,
    /// Point id within the batch (its index in the load schedule).
    pub id: usize,
    /// Curve label.
    pub label: String,
    /// Applied load of the point.
    pub load: f64,
    /// True when the result came from the persistent cache.
    pub cached: bool,
    /// Wall-clock microseconds the simulation took (0 for cache hits).
    pub wall_micros: u64,
    /// Static pre-flight verdict name, when one was computed.
    pub verdict: Option<String>,
    /// The measured result, or the failure kind and message
    /// (`"panic: …"`, `"config: …"`, `"cancelled"`).
    pub result: Result<SimResult, String>,
}

/// Pool gauges as they ride the status event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStatus {
    /// Worker threads in the shared pool.
    pub threads: u64,
    /// Workers busy at sample time.
    pub busy: u64,
    /// Tasks queued (injector + deques) at sample time.
    pub queued: u64,
    /// Cumulative deque steals.
    pub steals: u64,
    /// Cumulative tasks executed.
    pub executed: u64,
}

impl From<rayon::PoolStats> for PoolStatus {
    fn from(s: rayon::PoolStats) -> Self {
        PoolStatus {
            threads: s.threads as u64,
            busy: s.busy as u64,
            queued: s.queued as u64,
            steals: s.steals,
            executed: s.executed,
        }
    }
}

/// One job row of a status event.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub job: u64,
    /// Curve label.
    pub label: String,
    /// `running`, `done` or `cancelled`.
    pub state: String,
    /// Points streamed so far.
    pub done: u64,
    /// Points in the batch.
    pub total: u64,
}

/// One server event, encoded as one line.
#[derive(Clone, Debug)]
pub enum Event {
    /// The submit was queued under `job`.
    Accepted {
        /// Server-assigned job id.
        job: u64,
        /// Points in the batch.
        points: u64,
    },
    /// One point completed (streamed in completion order).
    Point(PointEvent),
    /// Every point of `job` has streamed.
    Done {
        /// Server-assigned job id.
        job: u64,
        /// Points in the batch.
        points: u64,
        /// Points freshly simulated.
        simulated: u64,
        /// Points served from the cache.
        cached: u64,
        /// Points that failed (config errors, isolated panics).
        failed: u64,
        /// Points cancelled before they started.
        cancelled: u64,
    },
    /// Reply to [`Request::Status`].
    Status {
        /// Every job the server still remembers, submission order.
        jobs: Vec<JobStatus>,
        /// Shared-pool gauges.
        pool: PoolStatus,
        /// Points in the persistent cache (`None` when uncached).
        cache_points: Option<u64>,
    },
    /// Reply to [`Request::Cancel`].
    Cancelled {
        /// The cancelled job.
        job: u64,
    },
    /// Reply to [`Request::Shutdown`]; the server exits after in-flight
    /// jobs finish streaming.
    ShuttingDown,
    /// A request could not be parsed or serviced.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Event {
    /// The wire form of one streamed `PointOutcome` — the serialization
    /// of what `JobHandle::recv` yields locally.
    pub fn point(job: u64, o: &PointOutcome) -> Event {
        Event::Point(PointEvent {
            job,
            id: o.job.id,
            label: o.job.label.clone(),
            load: o.job.load(),
            cached: o.from_cache,
            wall_micros: o.wall_micros,
            verdict: o.verdict.as_ref().map(|v| v.name().to_string()),
            result: match &o.result {
                Ok(r) => Ok(r.clone()),
                Err(e) => Err(match &e.failure {
                    PointFailure::Config(c) => format!("config: {c}"),
                    PointFailure::Panic(m) => format!("panic: {m}"),
                    PointFailure::Cancelled => "cancelled".to_string(),
                }),
            },
        })
    }

    /// Encode as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let obj = match self {
            Event::Accepted { job, points } => vec![
                ev("accepted"),
                ("job".to_string(), Json::Int(*job)),
                ("points".to_string(), Json::Int(*points)),
            ],
            Event::Point(p) => {
                let mut fields = vec![
                    ev("point"),
                    ("job".to_string(), Json::Int(p.job)),
                    ("id".to_string(), Json::Int(p.id as u64)),
                    ("label".to_string(), Json::Str(p.label.clone())),
                    ("load".to_string(), Json::Num(p.load)),
                    ("cached".to_string(), Json::Bool(p.cached)),
                    ("wall_micros".to_string(), Json::Int(p.wall_micros)),
                ];
                if let Some(v) = &p.verdict {
                    fields.push(("verdict".to_string(), Json::Str(v.clone())));
                }
                match &p.result {
                    Ok(r) => {
                        fields.push(("ok".to_string(), Json::Bool(true)));
                        fields.push(("result".to_string(), crate::codec::result_to_json(r)));
                    }
                    Err(msg) => {
                        fields.push(("ok".to_string(), Json::Bool(false)));
                        fields.push(("error".to_string(), Json::Str(msg.clone())));
                    }
                }
                fields
            }
            Event::Done {
                job,
                points,
                simulated,
                cached,
                failed,
                cancelled,
            } => vec![
                ev("done"),
                ("job".to_string(), Json::Int(*job)),
                ("points".to_string(), Json::Int(*points)),
                ("simulated".to_string(), Json::Int(*simulated)),
                ("cached".to_string(), Json::Int(*cached)),
                ("failed".to_string(), Json::Int(*failed)),
                ("cancelled".to_string(), Json::Int(*cancelled)),
            ],
            Event::Status {
                jobs,
                pool,
                cache_points,
            } => vec![
                ev("status"),
                (
                    "jobs".to_string(),
                    Json::Arr(
                        jobs.iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("job".to_string(), Json::Int(s.job)),
                                    ("label".to_string(), Json::Str(s.label.clone())),
                                    ("state".to_string(), Json::Str(s.state.clone())),
                                    ("done".to_string(), Json::Int(s.done)),
                                    ("total".to_string(), Json::Int(s.total)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "pool".to_string(),
                    Json::Obj(vec![
                        ("threads".to_string(), Json::Int(pool.threads)),
                        ("busy".to_string(), Json::Int(pool.busy)),
                        ("queued".to_string(), Json::Int(pool.queued)),
                        ("steals".to_string(), Json::Int(pool.steals)),
                        ("executed".to_string(), Json::Int(pool.executed)),
                    ]),
                ),
                (
                    "cache_points".to_string(),
                    cache_points.map_or(Json::Null, Json::Int),
                ),
            ],
            Event::Cancelled { job } => {
                vec![ev("cancelled"), ("job".to_string(), Json::Int(*job))]
            }
            Event::ShuttingDown => vec![ev("shutting_down")],
            Event::Error { message } => vec![
                ev("error"),
                ("message".to_string(), Json::Str(message.clone())),
            ],
        };
        Json::Obj(obj).render()
    }

    /// Decode one line. `Err` carries a human-readable reason.
    pub fn decode(line: &str) -> Result<Event, String> {
        let j = Json::parse(line).ok_or_else(|| "malformed JSON".to_string())?;
        let int = |k: &str| -> Result<u64, String> {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        match j.get("event").and_then(Json::as_str) {
            Some("accepted") => Ok(Event::Accepted {
                job: int("job")?,
                points: int("points")?,
            }),
            Some("point") => {
                let result = if j.get("ok").and_then(Json::as_bool) == Some(true) {
                    let r = j
                        .get("result")
                        .and_then(crate::codec::result_from_json)
                        .ok_or_else(|| "point: bad result object".to_string())?;
                    Ok(r)
                } else {
                    Err(j
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown failure")
                        .to_string())
                };
                Ok(Event::Point(PointEvent {
                    job: int("job")?,
                    id: int("id")? as usize,
                    label: j
                        .get("label")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    load: j
                        .get("load")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| "point: missing load".to_string())?,
                    cached: j.get("cached").and_then(Json::as_bool).unwrap_or(false),
                    wall_micros: j.get("wall_micros").and_then(Json::as_u64).unwrap_or(0),
                    verdict: j.get("verdict").and_then(Json::as_str).map(str::to_string),
                    result,
                }))
            }
            Some("done") => Ok(Event::Done {
                job: int("job")?,
                points: int("points")?,
                simulated: int("simulated")?,
                cached: int("cached")?,
                failed: int("failed")?,
                cancelled: int("cancelled")?,
            }),
            Some("status") => {
                let jobs = j
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .map(|rows| {
                        rows.iter()
                            .filter_map(|r| {
                                Some(JobStatus {
                                    job: r.get("job").and_then(Json::as_u64)?,
                                    label: r.get("label").and_then(Json::as_str)?.to_string(),
                                    state: r.get("state").and_then(Json::as_str)?.to_string(),
                                    done: r.get("done").and_then(Json::as_u64)?,
                                    total: r.get("total").and_then(Json::as_u64)?,
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let p = j.get("pool").ok_or_else(|| "status: missing pool".to_string())?;
                let pool_int = |k: &str| p.get(k).and_then(Json::as_u64).unwrap_or(0);
                Ok(Event::Status {
                    jobs,
                    pool: PoolStatus {
                        threads: pool_int("threads"),
                        busy: pool_int("busy"),
                        queued: pool_int("queued"),
                        steals: pool_int("steals"),
                        executed: pool_int("executed"),
                    },
                    cache_points: j.get("cache_points").and_then(Json::as_u64),
                })
            }
            Some("cancelled") => Ok(Event::Cancelled { job: int("job")? }),
            Some("shutting_down") => Ok(Event::ShuttingDown),
            Some("error") => Ok(Event::Error {
                message: j
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            Some(other) => Err(format!("unknown event {other:?}")),
            None => Err("missing \"event\" field".to_string()),
        }
    }
}

fn ev(name: &str) -> (String, Json) {
    ("event".to_string(), Json::Str(name.to_string()))
}
