//! Fault isolation and cache-resume semantics: a poisoned point must
//! surface as a typed [`PointError`] without aborting the sweep, and a
//! re-run after a partial failure must replay the surviving points from
//! the persistent cache.

mod common;

use common::{fake_result, small_cfg, TempDir};
use mdd_engine::{Engine, Job, PointFailure, ResultCache};

#[test]
fn injected_panic_becomes_point_error_without_aborting() {
    let jobs = Job::points(&small_cfg(), &[0.10, 0.20, 0.30], "PR");
    let report = Engine::new()
        .submit_with(jobs, |job: &Job| {
            if job.id == 1 {
                panic!("boom at load {:.2}", job.load());
            }
            Ok(fake_result(job.load()))
        })
        .wait();

    assert_eq!(report.failed(), 1);
    assert_eq!(report.simulated(), 2);
    assert_eq!(report.cached(), 0);
    assert!(!report.complete());

    let errors = report.errors();
    assert_eq!(errors.len(), 1);
    let err = errors[0];
    assert_eq!(err.label, "PR");
    assert!((err.load - 0.20).abs() < 1e-12);
    match &err.failure {
        PointFailure::Panic(msg) => assert!(msg.contains("boom"), "payload preserved: {msg}"),
        other => panic!("expected Panic failure, got {other:?}"),
    }
    // The human-readable form names the point.
    let shown = err.to_string();
    assert!(shown.contains("PR") && shown.contains("boom"), "{shown}");

    // The surviving points still assemble into a curve.
    assert_eq!(report.curve("PR").points.len(), 2);
}

#[test]
fn infeasible_config_becomes_typed_config_error() {
    // Strict avoidance on PAT271 needs chain_length x 2 virtual channels;
    // one VC cannot satisfy that, and the default runner must report it
    // as a per-point config error rather than a panic.
    let mut bad = small_cfg();
    bad.scheme = mdd_core::Scheme::StrictAvoidance {
        shared_adaptive: false,
    };
    bad.vcs = 1;
    let jobs = vec![
        Job::new(0, "PR", small_cfg().at_load(0.10)),
        Job::new(1, "SA", bad.at_load(0.10)),
    ];
    let report = Engine::new().submit(jobs).wait();

    assert_eq!(report.simulated(), 1);
    assert_eq!(report.failed(), 1);
    let errors = report.errors();
    assert!(matches!(errors[0].failure, PointFailure::Config(_)));
}

#[test]
fn resume_after_partial_failure_replays_survivors_from_cache() {
    let tmp = TempDir::new("resume");
    let loads = [0.10, 0.20, 0.30];

    // First run: the middle point dies.
    let engine = Engine::with_cache_dir(tmp.path()).expect("open cache");
    let report = engine
        .submit_with(Job::points(&small_cfg(), &loads, "PR"), |job: &Job| {
            if job.id == 1 {
                panic!("interrupted");
            }
            Ok(fake_result(job.load()))
        })
        .wait();
    assert_eq!(report.simulated(), 2);
    assert_eq!(report.failed(), 1);

    // Second run, fresh engine over the same directory: only the failed
    // point may reach the runner — the other two must come from disk.
    let engine = Engine::with_cache_dir(tmp.path()).expect("reopen cache");
    let report = engine
        .submit_with(Job::points(&small_cfg(), &loads, "PR"), |job: &Job| {
            assert_eq!(job.id, 1, "cached point re-simulated");
            Ok(fake_result(job.load()))
        })
        .wait();
    assert_eq!(report.cached(), 2);
    assert_eq!(report.simulated(), 1);
    assert_eq!(report.failed(), 0);
    assert!(report.complete());
    assert_eq!(report.curve("PR").points.len(), 3);
}

#[test]
fn cache_skips_corrupt_lines_and_keeps_valid_ones() {
    let tmp = TempDir::new("corrupt");
    // Both keys start with 'a', so they share one shard file — the one
    // this test corrupts.
    {
        let cache = ResultCache::open(tmp.path()).unwrap();
        cache.put("aaaa", "PR", &fake_result(0.1)).unwrap();
        cache.put("abbb", "PR", &fake_result(0.2)).unwrap();
    }
    // Simulate a crash mid-append plus unrelated garbage.
    let file = {
        let cache = ResultCache::open(tmp.path()).unwrap();
        cache.shard_file("aaaa")
    };
    let mut text = std::fs::read_to_string(&file).unwrap();
    text.insert_str(0, "not json\n");
    text.push_str("{\"v\":1,\"key\":\"truncated");
    std::fs::write(&file, text).unwrap();

    let cache = ResultCache::open(tmp.path()).unwrap();
    assert_eq!(cache.len(), 2);
    assert!(cache.get("aaaa").is_some());
    assert!(cache.get("abbb").is_some());

    // And the reopened file still accepts appends — the repaired tail
    // cannot glue the next entry onto the truncated line.
    cache.put("accc", "PR", &fake_result(0.3)).unwrap();
    let cache = ResultCache::open(tmp.path()).unwrap();
    assert_eq!(cache.len(), 3);
    assert!(cache.get("accc").is_some());
}
