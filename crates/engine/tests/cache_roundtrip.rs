//! The JSONL cache codec and the end-to-end "second run is free"
//! guarantee with the real simulator.

mod common;

use common::{fake_result, small_cfg, TempDir};
use mdd_engine::{decode_line, encode_line, Engine};

/// Encode → decode preserves every field bit-for-bit. `SimResult` has no
/// `PartialEq` (it carries an optional obs snapshot), so compare the
/// Debug rendering, which covers all fields.
#[test]
fn codec_round_trips_exactly() {
    let mut r = fake_result(0.271);
    // Awkward floats: exact binary fractions, long decimals, extremes.
    r.throughput = 0.1 + 0.2; // 0.30000000000000004
    r.avg_latency = f64::MAX / 2.0;
    r.latency_quantiles = (1e-12, 2.5, 123_456.789_012_345);
    r.mc_utilization = 0.0;
    r.vc_util_cv = 1.0 / 3.0;

    let line = encode_line("deadbeefdeadbeef", "SA+", &r);
    assert!(!line.contains('\n'), "one line per point");
    let (key, label, decoded) = decode_line(&line).expect("decodes");
    assert_eq!(key, "deadbeefdeadbeef");
    assert_eq!(label, "SA+");
    assert_eq!(format!("{r:?}"), format!("{decoded:?}"));
}

#[test]
fn codec_rejects_other_versions() {
    let line = encode_line("k", "l", &fake_result(0.1));
    let bumped = line.replacen("\"v\":1", "\"v\":999", 1);
    assert!(decode_line(&bumped).is_none());
}

/// ISSUE acceptance: a second invocation with an unchanged config
/// performs zero new simulation points, and the replayed curve is
/// identical to the simulated one.
#[test]
fn second_identical_run_simulates_nothing() {
    let tmp = TempDir::new("smoke");
    let cfg = small_cfg();
    let loads = [0.05, 0.10, 0.15];

    let engine = Engine::with_cache_dir(tmp.path()).expect("open cache");
    let first = engine.submit_sweep(&cfg, &loads, "PR").wait();
    assert_eq!(first.simulated(), 3);
    assert_eq!(first.cached(), 0);
    assert!(first.complete());

    let engine = Engine::with_cache_dir(tmp.path()).expect("reopen cache");
    let second = engine.submit_sweep(&cfg, &loads, "PR").wait();
    assert_eq!(second.simulated(), 0, "no new simulation points");
    assert_eq!(second.cached(), 3);
    assert!(second.outcomes.iter().all(|o| o.from_cache));

    let a = first.curve("PR");
    let b = second.curve("PR");
    assert_eq!(a.points.len(), b.points.len());
    for (p, q) in a.points.iter().zip(&b.points) {
        assert_eq!(p.applied_load, q.applied_load);
        assert_eq!(p.throughput, q.throughput);
        assert_eq!(p.latency, q.latency);
        assert_eq!(p.messages_delivered, q.messages_delivered);
    }

    // A semantically different base config misses the cache.
    let mut changed = cfg.clone();
    changed.detect_threshold += 1;
    let engine = Engine::with_cache_dir(tmp.path()).expect("reopen cache");
    let third = engine.submit_sweep(&changed, &[0.05], "PR").wait();
    assert_eq!(third.cached(), 0);
    assert_eq!(third.simulated(), 1);
}

#[test]
fn uncached_engine_reports_no_cache() {
    let engine = Engine::new();
    assert!(engine.cache().is_none());
    let report = engine.submit_sweep(&small_cfg(), &[0.05], "PR").wait();
    assert_eq!(report.simulated(), 1);
    assert_eq!(report.cached(), 0);
}
