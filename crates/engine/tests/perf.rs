//! Wall-clock scaling of the work-stealing pool, per the ISSUE
//! acceptance bar: a 12-point sweep on 4 workers must finish in at most
//! half the 1-worker wall time on a >= 4-core host — while producing a
//! bit-identical report.
//!
//! Ignored by default (it is a timing assertion, meaningless under
//! `cargo test`'s debug build contention); ci.sh runs it explicitly in
//! release:
//!
//! ```text
//! cargo test -p mdd-engine --release --test perf -- --ignored
//! ```
//!
//! On hosts with fewer than 4 cores the test self-skips: the acceptance
//! bar is defined for >= 4 cores, and a 1-core container cannot
//! demonstrate parallel speedup no matter how good the scheduler is.

use mdd_engine::{Engine, Job};
use std::time::Instant;

const LOADS: [f64; 12] = [
    0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20, 0.22, 0.24,
];

/// A config heavy enough (8x8 torus, longer windows) that per-point
/// simulation dominates scheduling overhead in release builds.
fn perf_cfg() -> mdd_core::SimConfig {
    mdd_core::SimConfig::builder()
        .scheme(mdd_core::Scheme::ProgressiveRecovery)
        .pattern(mdd_core::PatternSpec::pat271())
        .radix(&[8, 8])
        .windows(1_000, 4_000)
        .build()
        .expect("PR on an 8x8 torus is always feasible")
}

fn timed_sweep(workers: usize) -> (f64, Vec<u64>) {
    let engine = Engine::builder().jobs(workers).build().expect("engine");
    let jobs = Job::points(&perf_cfg(), &LOADS, "PR");
    let start = Instant::now();
    let report = engine.submit(jobs).wait();
    let secs = start.elapsed().as_secs_f64();
    assert!(report.complete());
    let bits = report
        .curve("PR")
        .points
        .iter()
        .flat_map(|p| [p.applied_load.to_bits(), p.throughput.to_bits(), p.latency.to_bits()])
        .collect();
    (secs, bits)
}

#[test]
#[ignore = "wall-clock assertion; run in release on a multi-core host (see ci.sh)"]
fn four_workers_halve_the_sweep_wall_time() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!("perf: skipping, host has {cores} core(s) < 4 (bar is defined for >= 4)");
        return;
    }
    // Warm once so neither timed run pays first-touch costs.
    let _ = timed_sweep(2);
    let (t1, bits1) = timed_sweep(1);
    let (t4, bits4) = timed_sweep(4);
    assert_eq!(bits1, bits4, "reports must be bit-identical across worker counts");
    eprintln!("perf: jobs=1 {t1:.3}s, jobs=4 {t4:.3}s ({:.2}x)", t1 / t4);
    assert!(
        t4 <= t1 * 0.5,
        "12-point sweep on 4 workers took {t4:.3}s, more than half of the \
         1-worker {t1:.3}s"
    );
}
