//! The daemon wire protocol: every request and event must survive an
//! encode → decode round trip, point events must carry the full result
//! bit-for-bit, and a submit spec must expand to the exact job batch a
//! local caller would build.

mod common;

use common::fake_result;
use mdd_engine::proto::{Event, PointEvent, Request, SweepSpec};
use mdd_engine::{Job, PointError, PointFailure, PointOutcome};

#[test]
fn requests_round_trip() {
    let spec = SweepSpec {
        label: "SA+".to_string(),
        scheme: "sa+".to_string(),
        pattern: "pat721".to_string(),
        vcs: 6,
        radix: vec![4, 4],
        bristle: 2,
        queue_org: Some("pernet".to_string()),
        warmup: 500,
        measure: 1_500,
        seed: 77,
        shards: 4,
        loads: vec![0.05, 0.1 + 0.2, 0.15],
    };
    for request in [
        Request::Submit(spec),
        Request::Status,
        Request::Cancel { job: 42 },
        Request::Shutdown,
    ] {
        let line = request.encode();
        assert!(!line.contains('\n'), "one line per request");
        assert_eq!(Request::decode(&line), Ok(request));
    }
}

#[test]
fn malformed_requests_are_errors_not_panics() {
    for bad in [
        "",
        "not json",
        "{}",
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"cancel"}"#,
        r#"{"op":"submit","loads":"nope"}"#,
    ] {
        assert!(Request::decode(bad).is_err(), "{bad:?}");
    }
}

#[test]
fn point_events_carry_the_result_bit_for_bit() {
    let mut r = fake_result(0.271);
    r.throughput = 0.1 + 0.2;
    r.vc_util_cv = 1.0 / 3.0;
    let job = Job::points(&common::small_cfg(), &[0.271], "PR").remove(0);
    let outcome = PointOutcome {
        job,
        result: Ok(r.clone()),
        from_cache: true,
        wall_micros: 0,
        verdict: None,
    };
    let line = Event::point(7, &outcome).encode();
    match Event::decode(&line).expect("decodes") {
        Event::Point(p) => {
            assert_eq!(p.job, 7);
            assert_eq!(p.id, 0);
            assert!(p.cached);
            let back = p.result.expect("ok point");
            assert_eq!(format!("{r:?}"), format!("{back:?}"));
        }
        other => panic!("expected point event, got {other:?}"),
    }
}

#[test]
fn failed_and_cancelled_points_keep_their_kind() {
    let job = Job::points(&common::small_cfg(), &[0.1], "PR").remove(0);
    let failure_of = |failure: PointFailure| PointOutcome {
        result: Err(PointError {
            job: job.id,
            label: job.label.clone(),
            load: job.load(),
            failure,
        }),
        job: job.clone(),
        from_cache: false,
        wall_micros: 5,
        verdict: None,
    };
    let cases = [
        (failure_of(PointFailure::Panic("boom".to_string())), "panic: boom"),
        (failure_of(PointFailure::Cancelled), "cancelled"),
    ];
    for (outcome, want) in cases {
        let line = Event::point(1, &outcome).encode();
        match Event::decode(&line).expect("decodes") {
            Event::Point(PointEvent { result: Err(msg), .. }) => assert_eq!(msg, want),
            other => panic!("expected failed point, got {other:?}"),
        }
    }
}

#[test]
fn submit_spec_expands_to_the_local_job_batch() {
    let spec = SweepSpec {
        loads: vec![0.05, 0.10],
        radix: vec![4, 4],
        warmup: 100,
        measure: 300,
        seed: 0x5eed,
        ..SweepSpec::default()
    };
    let jobs = spec.jobs().expect("feasible spec");
    assert_eq!(jobs.len(), 2);
    // Same parameters built locally produce the same cache keys — the
    // daemon and a local sweep share cache entries.
    let base = mdd_core::SimConfig::builder()
        .scheme(mdd_core::Scheme::ProgressiveRecovery)
        .pattern(mdd_core::PatternSpec::pat271())
        .vcs(4)
        .radix(&[4, 4])
        .windows(100, 300)
        .seed(0x5eed)
        .build()
        .expect("feasible");
    let local = Job::points(&base, &[0.05, 0.10], "PR");
    for (remote, local) in jobs.iter().zip(&local) {
        assert_eq!(remote.key(), local.key());
        assert_eq!(remote.id, local.id);
        assert_eq!(remote.label, local.label);
    }
    // Infeasible and empty specs are typed errors, not panics.
    assert!(SweepSpec { loads: vec![], ..SweepSpec::default() }.jobs().is_err());
    let bad = SweepSpec {
        scheme: "sa".to_string(),
        vcs: 1,
        loads: vec![0.05],
        ..SweepSpec::default()
    };
    assert!(bad.jobs().is_err(), "SA with one VC is infeasible");
}

#[test]
fn control_events_round_trip() {
    use mdd_engine::proto::{JobStatus, PoolStatus};
    let events = [
        Event::Accepted { job: 3, points: 12 },
        Event::Done {
            job: 3,
            points: 12,
            simulated: 7,
            cached: 3,
            failed: 1,
            cancelled: 1,
        },
        Event::Status {
            jobs: vec![JobStatus {
                job: 3,
                label: "PR".to_string(),
                state: "running".to_string(),
                done: 5,
                total: 12,
            }],
            pool: PoolStatus {
                threads: 4,
                busy: 2,
                queued: 9,
                steals: 13,
                executed: 101,
            },
            cache_points: None,
        },
        Event::Cancelled { job: 3 },
        Event::ShuttingDown,
        Event::Error {
            message: "unknown scheme \"xa\"".to_string(),
        },
    ];
    for event in events {
        let line = event.encode();
        assert!(!line.contains('\n'));
        let back = Event::decode(&line).expect("decodes");
        // Event has no PartialEq (it carries SimResults); compare the
        // canonical encoding instead.
        assert_eq!(line, back.encode());
    }
}
