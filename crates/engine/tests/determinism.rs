//! Worker-count independence: a sweep's assembled report — and the BNF
//! curve built from it — must be bit-identical whether it ran on 1, 4 or
//! 8 workers, with or without a panicking point, and regardless of how
//! cached and freshly simulated points interleave in completion order.
//!
//! This is the contract that makes `--jobs` a pure performance knob: the
//! streaming engine delivers outcomes in completion order (racy by
//! design), but [`JobHandle::wait`] orders the report by job id, and
//! each point's simulation is independently seeded.

mod common;

use common::{small_cfg, TempDir};
use mdd_engine::{Engine, Job, SweepReport};
use proptest::prelude::*;

/// Run the same sweep on an engine with `workers` dedicated workers.
fn sweep_at(workers: usize, loads: &[f64], panic_id: Option<usize>) -> SweepReport {
    let engine = Engine::builder().jobs(workers).build().expect("engine");
    engine
        .submit_with(
            Job::points(&small_cfg(), loads, "PR"),
            move |job: &Job| {
                if Some(job.id) == panic_id {
                    panic!("injected failure at point {}", job.id);
                }
                mdd_core::Simulator::new(job.cfg.clone()).map(|mut sim| sim.run())
            },
        )
        .wait()
}

/// Every observable of the curve, as exact bits.
fn curve_bits(report: &SweepReport) -> Vec<(u64, u64, u64, u64)> {
    report
        .curve("PR")
        .points
        .iter()
        .map(|p| {
            (
                p.applied_load.to_bits(),
                p.throughput.to_bits(),
                p.latency.to_bits(),
                p.messages_delivered,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn curves_are_bit_identical_across_worker_counts(
        loads in proptest::collection::vec(0.02f64..0.20, 3..6)
    ) {
        let baseline = sweep_at(1, &loads, None);
        prop_assert!(baseline.complete());
        for workers in [4, 8] {
            let report = sweep_at(workers, &loads, None);
            prop_assert_eq!(curve_bits(&baseline), curve_bits(&report),
                "jobs=1 vs jobs={}", workers);
        }
    }

    #[test]
    fn a_panicking_point_does_not_perturb_the_others(
        loads in proptest::collection::vec(0.02f64..0.20, 3..6),
        panic_slot in 0usize..3
    ) {
        let panic_id = Some(panic_slot % loads.len());
        let baseline = sweep_at(1, &loads, panic_id);
        prop_assert_eq!(baseline.failed(), 1);
        for workers in [4, 8] {
            let report = sweep_at(workers, &loads, panic_id);
            prop_assert_eq!(report.failed(), 1);
            // Same typed error on the same point...
            prop_assert_eq!(baseline.errors(), report.errors());
            // ...and the surviving points are untouched, bit for bit.
            prop_assert_eq!(curve_bits(&baseline), curve_bits(&report),
                "jobs=1 vs jobs={}", workers);
        }
    }
}

/// Golden pin for the cached/simulated interleave: warm the cache with
/// the even-indexed points, then sweep everything on 4 workers. Cache
/// hits return almost instantly, so completion order aggressively
/// interleaves hits and fresh simulations — the final curve must not
/// notice.
#[test]
fn cached_and_simulated_points_interleave_without_reordering_the_curve() {
    let tmp = TempDir::new("interleave");
    let loads = [0.03, 0.06, 0.09, 0.12, 0.15, 0.18];
    let warm: Vec<f64> = loads.iter().copied().step_by(2).collect();

    // Reference: the whole sweep, sequentially, uncached.
    let reference = sweep_at(1, &loads, None);

    let engine = Engine::builder()
        .jobs(4)
        .cache_dir(tmp.path())
        .build()
        .expect("open cache");
    assert_eq!(engine.submit_sweep(&small_cfg(), &warm, "PR").wait().simulated(), 3);

    let report = engine.submit_sweep(&small_cfg(), &loads, "PR").wait();
    assert_eq!(report.cached(), 3);
    assert_eq!(report.simulated(), 3);
    // Report order is job order, independent of which half raced ahead.
    let ids: Vec<usize> = report.outcomes.iter().map(|o| o.job.id).collect();
    assert_eq!(ids, (0..loads.len()).collect::<Vec<_>>());
    assert_eq!(curve_bits(&reference), curve_bits(&report));
}

/// The pool-parallel fault frontier must classify exactly like the
/// sequential sweep in `mdd-verify`, point for point, at any worker
/// count — orbit grouping plus parallel re-verdicts is a pure
/// performance transformation.
#[test]
fn fault_frontier_matches_sequential_classification() {
    use mdd_verify::{classify_fault_points, single_link_faults, BaseAnalysis};

    let analysis = mdd_core::analysis_config(&small_cfg()).expect("small_cfg is feasible");
    let faults = single_link_faults(analysis.topo());

    let sequential = {
        let base = BaseAnalysis::analyze(analysis.clone());
        classify_fault_points(&base, faults.clone())
    };

    for workers in [1, 4] {
        let engine = Engine::builder().jobs(workers).build().expect("engine");
        let pooled = engine.fault_frontier(analysis.clone(), faults.clone());
        assert_eq!(pooled.base_verdict, sequential.base_verdict);
        assert_eq!(pooled.preserving, sequential.preserving);
        assert_eq!(pooled.degrading, sequential.degrading);
        assert_eq!(pooled.points.len(), sequential.points.len());
        for (p, s) in pooled.points.iter().zip(&sequential.points) {
            assert_eq!((p.label.as_str(), p.verdict, p.rank), (s.label.as_str(), s.verdict, s.rank));
        }
    }
}
