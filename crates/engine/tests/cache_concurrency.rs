//! Cross-handle cache safety: two independently opened caches (the
//! in-process stand-in for two engine *processes*) appending to the same
//! shard directory must never corrupt or drop a completed point, and a
//! tail left unterminated by a crash must be repaired without eating a
//! neighbour's line.

mod common;

use common::{fake_result, TempDir};
use mdd_engine::{Engine, Job, ResultCache};
use std::io::Write;
use std::sync::Arc;

/// Two handles, one directory, every key in the *same* shard (all keys
/// start with 'a'), interleaved appends from two threads. Nothing may be
/// lost: the shard file is append-only and each put is one write of a
/// complete line.
#[test]
fn two_writers_on_one_shard_drop_nothing() {
    let tmp = TempDir::new("shard-race");
    let a = Arc::new(ResultCache::open(tmp.path()).expect("open first handle"));
    let b = Arc::new(ResultCache::open(tmp.path()).expect("open second handle"));
    assert_eq!(
        a.shard_file("a000"),
        b.shard_file("afff"),
        "test premise: every key lands in one shard file"
    );

    const PER_WRITER: usize = 200;
    let writers: Vec<_> = [(Arc::clone(&a), 0), (Arc::clone(&b), PER_WRITER)]
        .into_iter()
        .map(|(cache, base)| {
            std::thread::spawn(move || {
                for i in base..base + PER_WRITER {
                    let key = format!("a{i:03x}");
                    cache
                        .put(&key, "PR", &fake_result(i as f64 / 1000.0))
                        .expect("append");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }

    // A fresh handle sees every point either writer committed.
    let reopened = ResultCache::open(tmp.path()).expect("reopen");
    assert_eq!(reopened.len(), 2 * PER_WRITER);
    for i in 0..2 * PER_WRITER {
        let key = format!("a{i:03x}");
        let hit = reopened.get(&key).unwrap_or_else(|| panic!("lost {key}"));
        assert_eq!(hit.applied_load, i as f64 / 1000.0);
    }
}

/// A crashed writer leaves an unterminated tail; a second live handle on
/// the same directory keeps appending. The repair (under the shard lock,
/// append-only) must terminate the torn line without touching complete
/// ones, and the torn line alone may be lost.
#[test]
fn tail_repair_under_concurrent_appends_keeps_complete_points() {
    let tmp = TempDir::new("shard-repair");
    let survivor = ResultCache::open(tmp.path()).expect("open survivor");
    survivor.put("a001", "PR", &fake_result(0.1)).expect("put");

    // Simulate another process crashing mid-append to the same shard.
    let shard = survivor.shard_file("a001");
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&shard)
            .expect("open shard for torn write");
        f.write_all(b"{\"v\":1,\"key\":\"a002\",\"la").expect("torn write");
    }

    // A new handle repairs the tail at open, then both handles append.
    let late = ResultCache::open(tmp.path()).expect("open after crash");
    assert_eq!(late.len(), 1, "torn line is absent, complete line kept");
    late.put("a003", "PR", &fake_result(0.3)).expect("late put");
    survivor.put("a004", "PR", &fake_result(0.4)).expect("survivor put");

    let reopened = ResultCache::open(tmp.path()).expect("reopen");
    assert_eq!(reopened.len(), 3);
    for key in ["a001", "a003", "a004"] {
        assert!(reopened.get(key).is_some(), "lost {key}");
    }
    assert!(reopened.get("a002").is_none(), "torn line must not resurrect");
}

/// The same guarantee one level up: two *engines* sharing a cache
/// directory, running concurrently, end with the union of their points
/// on disk and serve each other's results on re-run.
#[test]
fn two_engines_sharing_a_directory_union_their_points() {
    let tmp = TempDir::new("engine-share");
    let loads_a = [0.04, 0.08, 0.12];
    let loads_b = [0.06, 0.10, 0.14];
    let cfg = common::small_cfg();

    let dir = tmp.path().to_path_buf();
    let handles: Vec<_> = [loads_a, loads_b]
        .into_iter()
        .map(|loads| {
            let dir = dir.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let engine = Engine::builder()
                    .jobs(2)
                    .cache_dir(&dir)
                    .build()
                    .expect("open engine");
                engine
                    .submit_with(Job::points(&cfg, &loads, "PR"), |job: &Job| {
                        Ok(fake_result(job.load()))
                    })
                    .wait()
            })
        })
        .collect();
    for h in handles {
        let report = h.join().expect("engine thread");
        assert!(report.complete());
        assert_eq!(report.simulated(), 3);
    }

    // A third engine over the same directory replays all six points.
    let engine = Engine::with_cache_dir(tmp.path()).expect("reopen");
    let all: Vec<f64> = loads_a.iter().chain(&loads_b).copied().collect();
    let report = engine
        .submit_with(Job::points(&cfg, &all, "PR"), |job: &Job| {
            panic!("point {} should have been cached", job.id)
        })
        .wait();
    assert_eq!(report.cached(), 6);
    assert!(report.complete());
}
