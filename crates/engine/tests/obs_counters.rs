//! Engine progress counters through the process-global mdd-obs layer.
//!
//! This test lives alone in its own integration-test binary on purpose:
//! `mdd_obs::install` is process-wide, so sharing a binary with other
//! tests running in parallel would pollute the counter deltas.

mod common;

use common::{small_cfg, TempDir};
use mdd_engine::Engine;
use mdd_obs::CounterId;

fn counters() -> (u64, u64, u64, u64, u64) {
    let snap = mdd_obs::counters_snapshot();
    (
        snap.get(CounterId::PointsStarted),
        snap.get(CounterId::PointsCompleted),
        snap.get(CounterId::PointsCached),
        snap.get(CounterId::PointsFailed),
        snap.get(CounterId::PointWallMicros),
    )
}

#[test]
fn engine_counters_distinguish_simulated_cached_and_failed() {
    mdd_obs::install(64);
    let tmp = TempDir::new("obs");
    let cfg = small_cfg();
    let loads = [0.05, 0.10, 0.15];

    // Cold run: everything is simulated.
    let before = counters();
    let engine = Engine::with_cache_dir(tmp.path()).expect("open cache");
    let report = engine.submit_sweep(&cfg, &loads, "PR").wait();
    assert!(report.complete());
    let after = counters();
    assert_eq!(after.0 - before.0, 3, "points_started");
    assert_eq!(after.1 - before.1, 3, "points_completed");
    assert_eq!(after.2 - before.2, 0, "points_cached");
    assert_eq!(after.3 - before.3, 0, "points_failed");
    assert!(after.4 > before.4, "wall time accumulated");

    // Warm run over the same directory: zero new simulation points —
    // only the cached counter moves (and no wall time accrues).
    let before = counters();
    let engine = Engine::with_cache_dir(tmp.path()).expect("reopen cache");
    let report = engine.submit_sweep(&cfg, &loads, "PR").wait();
    assert!(report.complete());
    let after = counters();
    assert_eq!(after.0 - before.0, 0, "points_started");
    assert_eq!(after.1 - before.1, 0, "points_completed");
    assert_eq!(after.2 - before.2, 3, "points_cached");
    assert_eq!(after.3 - before.3, 0, "points_failed");
    assert_eq!(after.4, before.4, "cache hits cost no simulation time");

    // A failing point is counted as started + failed, never completed.
    let before = counters();
    let report = engine
        .submit_with(
            mdd_engine::Job::points(&cfg, &[0.20], "PR"),
            |_job: &mdd_engine::Job| -> Result<mdd_core::SimResult, mdd_core::SchemeConfigError> {
                panic!("injected")
            },
        )
        .wait();
    assert_eq!(report.failed(), 1);
    let after = counters();
    assert_eq!(after.0 - before.0, 1, "points_started");
    assert_eq!(after.1 - before.1, 0, "points_completed");
    assert_eq!(after.3 - before.3, 1, "points_failed");
}
