//! Shared helpers for the mdd-engine integration tests.
// Each test binary compiles its own copy of this module and not every
// binary uses every helper.
#![allow(dead_code)]

use mdd_core::{PatternSpec, Scheme, SimConfig, SimResult};
use std::fs;
use std::path::{Path, PathBuf};

/// A unique scratch directory removed on drop. No tempfile crate in the
/// offline container, so the name is derived from pid + test name.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("mdd-engine-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).expect("create scratch dir");
        TempDir(p)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A configuration small enough that real simulation points finish in
/// well under a second.
pub fn small_cfg() -> SimConfig {
    SimConfig::builder()
        .scheme(Scheme::ProgressiveRecovery)
        .pattern(PatternSpec::pat271())
        .radix(&[4, 4])
        .windows(100, 300)
        .build()
        .expect("PR on a 4x4 torus is always feasible")
}

/// A synthetic result for tests that never run the simulator.
pub fn fake_result(load: f64) -> SimResult {
    SimResult {
        applied_load: load,
        throughput: load * 0.9,
        avg_latency: 42.5,
        latency_quantiles: (30.0, 90.5, 120.25),
        messages_delivered: 1_000,
        transactions: 250,
        deadlocks: 3,
        router_rescues: 1,
        deflections: 0,
        rescues: 2,
        generated: 260,
        mc_utilization: 0.5,
        cwg_checks: 7,
        cwg_deadlocked_checks: 1,
        vc_util_mean: 0.25,
        vc_util_max: 0.75,
        vc_util_cv: 0.1,
        obs: None,
    }
}
