//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds with no network access, so this crate implements
//! the subset of criterion the `crates/bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — over a
//! plain wall-clock timer.
//!
//! Each benchmark is auto-calibrated so one sample takes roughly 40 ms,
//! then `sample_size` samples are measured and the mean, best and worst
//! per-iteration times are printed:
//!
//! ```text
//! router_cycle/pr_8x8_vc4_loaded_100cycles
//!                         time: [1.0221 ms 1.0246 ms 1.0315 ms]
//! ```
//!
//! The bracketed triple is `[best mean worst]`, so existing tooling that
//! greps criterion's `time:` lines keeps working.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (configuration shared by all groups).
#[derive(Clone, Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

impl core::fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BenchmarkGroup").field("name", &self.name).finish()
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure `f`, which receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id, &b.samples);
        self
    }

    /// Finish the group (printing is per-benchmark; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the measured routine.
#[derive(Debug)]
pub struct Bencher {
    /// Per-iteration nanosecond estimates, one per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

/// Target wall time of one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);

impl Bencher {
    /// Run the routine repeatedly and record per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and calibrate: how many iterations fill one sample?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let dt = t.elapsed();
            self.samples
                .push(dt.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn report(group: &str, id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{group}/{id}\n                        time: [no samples]");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = samples.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{group}/{id}\n                        time: [{} {} {}]",
        fmt_ns(best),
        fmt_ns(mean),
        fmt_ns(worst)
    );
}

/// Declare a benchmark group function (compatible with upstream usage).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        g.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with("s"));
    }
}
