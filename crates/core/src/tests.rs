//! Integration tests of the assembled simulator: functional correctness,
//! liveness under every scheme, avoidance guarantees, determinism, and the
//! headline qualitative result (PR sustains more throughput than DR/SA
//! when virtual channels are scarce).

use crate::*;

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

fn small(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64) -> SimConfig {
    SimConfig::small_test(scheme, pattern, vcs, load)
}

#[test]
fn sa_delivers_at_light_load() {
    let mut sim = Simulator::new(small(SA, PatternSpec::pat100(), 4, 0.05)).unwrap();
    let r = sim.run();
    assert!(r.transactions > 50, "transactions completed: {}", r.transactions);
    assert!(r.throughput > 0.02, "throughput {}", r.throughput);
    assert!(r.avg_latency > 0.0);
    assert_eq!(r.deflections, 0, "SA never deflects");
    assert_eq!(r.rescues, 0, "SA never rescues");
}

#[test]
fn dr_delivers_at_light_load() {
    let mut sim =
        Simulator::new(small(Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4, 0.05))
            .unwrap();
    let r = sim.run();
    assert!(r.transactions > 50);
    assert!(r.throughput > 0.02);
}

#[test]
fn pr_delivers_at_light_load() {
    let mut sim =
        Simulator::new(small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.05))
            .unwrap();
    let r = sim.run();
    assert!(r.transactions > 50);
    assert!(r.throughput > 0.02);
    assert_eq!(
        r.deadlocks, 0,
        "no message-dependent deadlocks at 5% load (the paper's key \
         characterization result)"
    );
}

#[test]
fn sa_infeasible_configs_rejected() {
    // Figure 8: no SA curves for chain-4 patterns at 4 VCs.
    assert!(Simulator::new(small(SA, PatternSpec::pat271(), 4, 0.1)).is_err());
    assert!(Simulator::new(small(SA, PatternSpec::pat271(), 8, 0.1)).is_ok());
}

/// Liveness: under every scheme, stopping the source drains the system
/// completely — even from deep saturation. For PR this exercises the full
/// token/lane/rescue machinery; a lost message or an unresolved deadlock
/// leaves the system non-quiescent and fails the test.
#[test]
fn drain_liveness_all_schemes() {
    let cases = vec![
        (SA, PatternSpec::pat100(), 4u8),
        (SA, PatternSpec::pat271(), 8),
        (Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4),
        (Scheme::DeflectiveRecovery, PatternSpec::pat280(), 4),
        (Scheme::ProgressiveRecovery, PatternSpec::pat100(), 4),
        (Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4),
        (Scheme::ProgressiveRecovery, PatternSpec::pat280(), 4),
    ];
    for (scheme, pattern, vcs) in cases {
        let name = format!("{}/{}/{vcs}vc", scheme.label(), pattern.name());
        // Overdrive the network well past saturation.
        let mut cfg = small(scheme, pattern, vcs, 0.8);
        cfg.warmup = 0;
        cfg.measure = 0;
        let mut sim = Simulator::new(cfg).unwrap();
        sim.set_measuring(true);
        sim.run_cycles(6_000);
        let drained = sim.drain(400_000);
        assert!(drained, "{name}: system failed to drain");
        let agg = sim.aggregate_stats();
        assert!(
            agg.transactions_completed > 0,
            "{name}: no transactions completed"
        );
    }
}

/// Transaction conservation: after a drain, every generated transaction
/// has completed (none lost by recovery, deflection or extraction).
#[test]
fn transaction_conservation_through_recovery() {
    for scheme in [Scheme::ProgressiveRecovery, Scheme::DeflectiveRecovery] {
        let mut cfg = small(scheme, PatternSpec::pat271(), 4, 0.6);
        cfg.warmup = 0;
        cfg.measure = 0;
        let mut sim = Simulator::new(cfg).unwrap();
        sim.set_measuring(true);
        sim.run_cycles(5_000);
        assert!(sim.drain(400_000), "{}: drain failed", scheme.label());
        let agg = sim.aggregate_stats();
        assert_eq!(
            agg.transactions_completed,
            sim.generated(),
            "{}: every generated transaction must complete",
            scheme.label()
        );
    }
}

/// The avoidance guarantee, checked against the ground-truth wait-for
/// graph: SA never exhibits a knot, sampled across heavy-load execution.
#[test]
fn sa_never_deadlocks_cwg_oracle() {
    let mut cfg = small(SA, PatternSpec::pat271(), 8, 0.7);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).unwrap();
    for i in 0..8_000u64 {
        sim.step();
        if i % 50 == 0 {
            let g = build_waitfor_graph(&sim);
            assert!(
                !g.has_deadlock(),
                "knot found in SA wait-for graph at cycle {i}"
            );
        }
    }
}

#[test]
fn sa_pat100_never_deadlocks_cwg_oracle() {
    let mut cfg = small(SA, PatternSpec::pat100(), 4, 0.8);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).unwrap();
    for i in 0..8_000u64 {
        sim.step();
        if i % 50 == 0 {
            assert!(!build_waitfor_graph(&sim).has_deadlock(), "cycle {i}");
        }
    }
}

#[test]
fn determinism_same_seed_same_result() {
    let cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.3);
    let r1 = Simulator::new(cfg.clone()).unwrap().run();
    let r2 = Simulator::new(cfg).unwrap().run();
    assert_eq!(r1.messages_delivered, r2.messages_delivered);
    assert_eq!(r1.transactions, r2.transactions);
    assert!((r1.avg_latency - r2.avg_latency).abs() < 1e-12);
    assert!((r1.throughput - r2.throughput).abs() < 1e-12);
    assert_eq!(r1.deadlocks, r2.deadlocks);
}

#[test]
fn different_seeds_differ() {
    let cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.3);
    let mut cfg2 = cfg.clone();
    cfg2.seed ^= 0xdead_beef;
    let r1 = Simulator::new(cfg).unwrap().run();
    let r2 = Simulator::new(cfg2).unwrap().run();
    assert_ne!(
        r1.messages_delivered, r2.messages_delivered,
        "different seeds should perturb the run"
    );
}

/// The headline qualitative result at scarce VCs (Figure 8): at the
/// paper's scale (8x8 torus, 4 VCs, Table 2 parameters) and a load just
/// beyond DR's saturation point, PR sustains clearly more delivered
/// throughput than DR.
#[test]
fn pr_beats_dr_at_4_vcs_saturation() {
    let load = 0.35;
    let mut pr =
        SimConfig::paper_default(Scheme::ProgressiveRecovery, PatternSpec::pat721(), 4, load);
    let mut dr =
        SimConfig::paper_default(Scheme::DeflectiveRecovery, PatternSpec::pat721(), 4, load);
    for cfg in [&mut pr, &mut dr] {
        cfg.warmup = 3_000;
        cfg.measure = 6_000;
    }
    let rp = Simulator::new(pr).unwrap().run();
    let rd = Simulator::new(dr).unwrap().run();
    assert!(
        rp.throughput > rd.throughput * 1.15,
        "PR ({:.4}) should clearly beat DR ({:.4}) with scarce VCs",
        rp.throughput,
        rd.throughput
    );
}

#[test]
fn throughput_tracks_load_below_saturation() {
    let base = small(Scheme::ProgressiveRecovery, PatternSpec::pat100(), 4, 0.0);
    for load in [0.05, 0.10] {
        let r = run_point(&base, load).unwrap();
        assert!(
            (r.throughput - load).abs() < load * 0.25,
            "delivered {:.4} vs applied {load:.4}: below saturation the \
             network should deliver what is applied",
            r.throughput
        );
    }
}

#[test]
fn sweep_produces_monotone_applied_loads() {
    let base = small(Scheme::ProgressiveRecovery, PatternSpec::pat100(), 4, 0.0);
    let loads = default_loads(0.05, 0.25, 3);
    let (curve, results) = run_curve_checked(&base, &loads, "PR");
    assert_eq!(curve.points.len(), 3);
    assert_eq!(results.len(), 3);
    assert!(results.iter().all(Result::is_ok));
    assert!(curve
        .points
        .windows(2)
        .all(|w| w[0].applied_load < w[1].applied_load));
    assert!(curve.saturation_throughput() > 0.0);
    // Latency grows with load.
    assert!(curve.points[2].latency >= curve.points[0].latency);
}

#[test]
fn deadlocks_appear_only_beyond_saturation_for_pr() {
    // At light load: zero detections. Deep saturation with shared queues:
    // recovery activity appears (detections and possibly rescues).
    let light = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.05);
    let r = Simulator::new(light).unwrap().run();
    assert_eq!(r.deadlocks, 0);

    let mut heavy = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.9);
    heavy.measure = 12_000;
    let r = Simulator::new(heavy).unwrap().run();
    // Normalized deadlock frequency stays small even past saturation
    // (the paper's Section 4.2/4.3 characterization).
    let norm = r.normalized_deadlocks();
    assert!(
        norm < 0.2,
        "normalized deadlocks should remain rare, got {norm}"
    );
}

#[test]
fn qa_queue_org_override_applies() {
    let mut cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.05);
    cfg.queue_org = Some(QueueOrg::PerType);
    let sim = Simulator::new(cfg).unwrap();
    assert_eq!(sim.nics()[0].num_queues(), 4, "QA: one queue pair per type");
    let mut cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.05);
    cfg.queue_org = None;
    let sim = Simulator::new(cfg).unwrap();
    assert_eq!(sim.nics()[0].num_queues(), 1, "PR default: shared");
}

#[test]
fn bristled_torus_runs() {
    // The Section 4.2.2 bristling configurations: 2x4 and 2x2 tori with 2
    // and 4 NICs per router (16 processors throughout).
    for (radix, bristle) in [(vec![2u32, 4], 2u32), (vec![2, 2], 4)] {
        let mut cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat100(), 4, 0.05);
        cfg.radix = radix;
        cfg.bristle = bristle;
        let mut sim = Simulator::new(cfg).unwrap();
        assert_eq!(sim.topo().num_nics(), 16);
        let r = sim.run();
        assert!(r.transactions > 20, "bristled config must deliver");
    }
}

#[test]
fn mesh_topology_runs() {
    let mut cfg = small(SA, PatternSpec::pat100(), 2, 0.05);
    cfg.mesh = true;
    cfg.vcs = 2; // E_r = 1 on a mesh: 2 types x 1 escape
    let r = Simulator::new(cfg).unwrap().run();
    assert!(r.transactions > 20);
}

#[test]
fn mc_utilization_bounded() {
    let mut sim =
        Simulator::new(small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.4))
            .unwrap();
    let r = sim.run();
    assert!(r.mc_utilization > 0.0 && r.mc_utilization <= 1.0);
}

#[test]
fn token_loss_is_survived_by_regeneration() {
    // Drive PR into a regime where rescues are needed, lose the token,
    // and verify the watchdog regenerates it and recovery still resolves
    // everything (the drain succeeds).
    let mut cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.7);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).unwrap();
    sim.set_measuring(true);
    sim.run_cycles(1_000);
    // Inject losses repeatedly until one lands while circulating.
    let mut injected = 0;
    for _ in 0..2_000 {
        let now = sim.cycle();
        if sim.recovery_mut().unwrap().inject_token_loss(now) {
            injected += 1;
        }
        sim.step();
        if injected >= 3 {
            break;
        }
    }
    assert!(injected >= 1, "at least one loss must be injectable");
    sim.run_cycles(3_000);
    let rec = sim.recovery().unwrap();
    assert!(
        rec.token_regenerations() >= 1,
        "watchdog must regenerate the token"
    );
    assert!(sim.drain(400_000), "recovery must still work after losses");
    let agg = sim.aggregate_stats();
    assert_eq!(agg.transactions_completed, sim.generated());
}

#[test]
fn token_loss_rejected_mid_episode() {
    let mut cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.05);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).unwrap();
    sim.run_cycles(100);
    // No episode: loss succeeds.
    let now = sim.cycle();
    assert!(sim.recovery_mut().unwrap().inject_token_loss(now));
    // Already lost: second injection is refused (not circulating).
    assert!(!sim.recovery_mut().unwrap().inject_token_loss(now));
}

#[test]
fn cwg_oracle_counts_checks() {
    let mut cfg = small(SA, PatternSpec::pat100(), 4, 0.3);
    cfg.cwg_interval = Some(50);
    cfg.warmup = 0;
    cfg.measure = 2_000;
    let r = Simulator::new(cfg).unwrap().run();
    assert_eq!(r.cwg_checks, 2_000 / 50);
    assert_eq!(
        r.cwg_deadlocked_checks, 0,
        "strict avoidance never shows a knot to the oracle"
    );
}

/// The paper's Section 4.3.2 mechanism, quantified: strict avoidance's
/// per-type partitioning uses the virtual channels far less evenly than
/// PR's fully shared routing at the same load.
#[test]
fn sa_partitioning_is_less_balanced_than_pr() {
    let load = 0.25;
    let mut sa = SimConfig::paper_default(SA, PatternSpec::pat721(), 8, load);
    let mut pr = SimConfig::paper_default(
        Scheme::ProgressiveRecovery,
        PatternSpec::pat721(),
        8,
        load,
    );
    for cfg in [&mut sa, &mut pr] {
        cfg.warmup = 2_000;
        cfg.measure = 5_000;
    }
    let rs = Simulator::new(sa).unwrap().run();
    let rp = Simulator::new(pr).unwrap().run();
    assert!(
        rs.vc_util_cv > rp.vc_util_cv * 1.3,
        "SA channel-utilization imbalance (CV {:.3}) should clearly exceed \
         PR's ({:.3})",
        rs.vc_util_cv,
        rp.vc_util_cv
    );
    assert!(rp.vc_util_mean > 0.0 && rs.vc_util_mean > 0.0);
    assert!(rs.vc_util_max <= 1.0 + 1e-9 && rp.vc_util_max <= 1.0 + 1e-9);
}

#[test]
fn episode_log_records_rescues() {
    let mut cfg = small(Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4, 0.8);
    cfg.warmup = 0;
    cfg.measure = 0;
    let mut sim = Simulator::new(cfg).unwrap();
    sim.set_measuring(true);
    sim.run_cycles(8_000);
    sim.drain(400_000);
    let rec = sim.recovery().unwrap();
    let log = rec.episode_log();
    assert_eq!(log.len() as u64, rec.episodes_completed.min(4096));
    for e in log {
        assert!(e.ended_at >= e.started_at);
        assert!(e.max_depth >= 1);
        // NIC episodes move at least the rescued head's subordinate(s);
        // router episodes carry the extracted packet itself.
        match e.origin {
            EpisodeOrigin::Nic(_) => {}
            EpisodeOrigin::Router(_) => assert!(e.messages_moved >= 1),
        }
    }
    assert!(
        !log.is_empty(),
        "an overdriven 4x4 PR network must have needed rescues"
    );
}
