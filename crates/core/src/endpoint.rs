//! Adapter presenting the NIC array to the network as an
//! [`mdd_router::EjectControl`].

use crate::schedule::NicSchedule;
use mdd_nic::Nic;
use mdd_protocol::{MessageStore, MsgHandle};
use mdd_router::EjectControl;
use mdd_topology::NicId;

/// Borrow of the NIC array plus the message store the ejection callbacks
/// resolve handles against, plus the idle-skip schedule so deliveries
/// wake sleeping NICs.
pub(crate) struct NicArray<'a> {
    pub store: &'a MessageStore,
    pub nics: &'a mut [Nic],
    /// The simulator's idle-skip schedule; a completed packet delivery
    /// zeroes the NIC's entry so it ticks again from the next cycle on.
    pub sched: &'a mut NicSchedule,
}

impl EjectControl for NicArray<'_> {
    fn can_accept(&mut self, nic: NicId, msg: MsgHandle, _cycle: u64) -> bool {
        self.nics[nic.index()].can_accept(self.store.get(msg))
    }

    fn deliver_flit(&mut self, nic: NicId, _msg: MsgHandle, _cycle: u64) {
        self.nics[nic.index()].on_flit();
    }

    fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, _injected_at: u64, _cycle: u64) {
        self.nics[nic.index()].on_packet(msg, self.store.get(msg));
        // A new message is queued at this endpoint: cancel its idle-skip.
        self.sched.set(nic.index(), 0);
    }
}

/// One shard's slice of the NIC array for the sharded network step.
///
/// Each shard owns the NICs of its router range exclusively (`nics` is a
/// disjoint sub-slice; `base` is its first global NIC index), so the
/// ejection callbacks run lock-free in parallel. The one shared structure
/// — the idle-skip schedule — cannot be written from worker threads, so
/// packet-delivery wakes are *deferred*: indices are recorded in
/// `sched_sets` and the simulator applies them (in shard order, then
/// record order) after the network step returns. Exact because nothing
/// reads the schedule during the network phase, at most one packet
/// completes per NIC per cycle, and `set(i, 0)` is idempotent.
pub(crate) struct NicShard<'a> {
    pub store: &'a MessageStore,
    pub nics: &'a mut [Nic],
    /// Global NIC index of `nics[0]`.
    pub base: u32,
    /// Global NIC indices whose schedule entry must be zeroed at the
    /// barrier (one per completed packet delivery, in delivery order).
    pub sched_sets: Vec<u32>,
}

impl EjectControl for NicShard<'_> {
    fn can_accept(&mut self, nic: NicId, msg: MsgHandle, _cycle: u64) -> bool {
        self.nics[nic.index() - self.base as usize].can_accept(self.store.get(msg))
    }

    fn deliver_flit(&mut self, nic: NicId, _msg: MsgHandle, _cycle: u64) {
        self.nics[nic.index() - self.base as usize].on_flit();
    }

    fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, _injected_at: u64, _cycle: u64) {
        self.nics[nic.index() - self.base as usize].on_packet(msg, self.store.get(msg));
        self.sched_sets.push(nic.index() as u32);
    }
}
