//! Adapter presenting the NIC array to the network as an
//! [`mdd_router::EjectControl`].

use mdd_nic::Nic;
use mdd_protocol::{Message, MessageId};
use mdd_router::EjectControl;
use mdd_topology::NicId;

pub(crate) struct NicArray<'a> {
    pub nics: &'a mut [Nic],
}

impl EjectControl for NicArray<'_> {
    fn can_accept(&mut self, nic: NicId, msg: &Message, _cycle: u64) -> bool {
        self.nics[nic.index()].can_accept(msg)
    }

    fn deliver_flit(&mut self, nic: NicId, _msg: MessageId, _cycle: u64) {
        self.nics[nic.index()].on_flit();
    }

    fn deliver_packet(&mut self, nic: NicId, msg: Message, _injected_at: u64, _cycle: u64) {
        self.nics[nic.index()].on_packet(msg);
    }
}
