//! Adapter presenting the NIC array to the network as an
//! [`mdd_router::EjectControl`].

use crate::schedule::NicSchedule;
use mdd_nic::Nic;
use mdd_protocol::{MessageStore, MsgHandle};
use mdd_router::EjectControl;
use mdd_topology::NicId;

/// Borrow of the NIC array plus the message store the ejection callbacks
/// resolve handles against, plus the idle-skip schedule so deliveries
/// wake sleeping NICs.
pub(crate) struct NicArray<'a> {
    pub store: &'a MessageStore,
    pub nics: &'a mut [Nic],
    /// The simulator's idle-skip schedule; a completed packet delivery
    /// zeroes the NIC's entry so it ticks again from the next cycle on.
    pub sched: &'a mut NicSchedule,
}

impl EjectControl for NicArray<'_> {
    fn can_accept(&mut self, nic: NicId, msg: MsgHandle, _cycle: u64) -> bool {
        self.nics[nic.index()].can_accept(self.store.get(msg))
    }

    fn deliver_flit(&mut self, nic: NicId, _msg: MsgHandle, _cycle: u64) {
        self.nics[nic.index()].on_flit();
    }

    fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, _injected_at: u64, _cycle: u64) {
        self.nics[nic.index()].on_packet(msg, self.store.get(msg));
        // A new message is queued at this endpoint: cancel its idle-skip.
        self.sched.set(nic.index(), 0);
    }
}
