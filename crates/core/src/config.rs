//! Simulation configuration and results.

use mdd_protocol::{PatternSpec, QueueOrg};
use mdd_routing::Scheme;
use mdd_stats::BnfPoint;
use mdd_traffic::DestPattern;
use std::sync::Arc;

/// Full configuration of one simulation run. Defaults follow Table 2 and
/// Section 4.1 of the paper.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-dimension radices of the k-ary n-cube (default `[8, 8]`).
    pub radix: Vec<u32>,
    /// Mesh instead of torus (default false — the paper uses tori).
    pub mesh: bool,
    /// NICs per router (bristling factor; default 1).
    pub bristle: u32,
    /// Virtual channels per physical link (default 4).
    pub vcs: u8,
    /// Flit buffers per virtual channel (default 2).
    pub flit_buf: u32,
    /// Deadlock-handling scheme.
    pub scheme: Scheme,
    /// Endpoint queue organization override; `None` uses the scheme's
    /// default (SA: per type; DR: per network; PR: shared). Setting
    /// `Some(QueueOrg::PerType)` on DR/PR yields the paper's "QA"
    /// configurations (Figure 11).
    pub queue_org: Option<QueueOrg>,
    /// Transaction pattern (protocol + chain-length mix).
    pub pattern: Arc<PatternSpec>,
    /// Endpoint message-queue capacity in messages (default 16).
    pub queue_capacity: u32,
    /// Memory-controller service time in cycles (default 40).
    pub service_time: u64,
    /// Outstanding-transaction limit per node (default 16).
    pub mshr_limit: u32,
    /// Endpoint detection time-out `T` in cycles (default 25).
    pub detect_threshold: u64,
    /// Router-side blocked-head time-out before a packet is eligible for
    /// Disha token capture (default 200 cycles; only used by PR).
    pub router_block_threshold: u64,
    /// Cycles per token tour hop (default 1).
    pub token_hop: u64,
    /// Cycles per recovery-lane ring hop (default 1; the A3 ablation
    /// raises it to model multiplexing over shared bandwidth).
    pub lane_hop: u64,
    /// Destination pattern for original requests (default uniform random).
    pub dest: DestPattern,
    /// Sparse event-driven traffic arrivals (default false): per-node
    /// inter-arrival gaps are sampled geometrically instead of one
    /// Bernoulli draw per node per cycle, so generation costs
    /// O(arrivals) and quiescent stretches can be fast-forwarded even
    /// while generation is on — the scale-ladder regime. Same arrival
    /// distribution, different RNG stream: results are reproducible per
    /// mode, and the golden-pinned configurations keep the dense
    /// default.
    pub sparse_arrivals: bool,
    /// RNG seed; identical configurations with identical seeds reproduce
    /// identical results.
    pub seed: u64,
    /// Warm-up cycles excluded from measurement (default 10_000).
    pub warmup: u64,
    /// Measured cycles (default 30_000, as in Section 4.3.1).
    pub measure: u64,
    /// Applied load in flits/node/cycle.
    pub load: f64,
    /// Run the channel-wait-for-graph oracle every `Some(k)` cycles
    /// (FlexSim's CWG-based detection, Section 4.1: every 50 cycles).
    /// Expensive; intended for validation runs — the local threshold
    /// detector drives the schemes either way. `None` disables it.
    pub cwg_interval: Option<u64>,
    /// Period, in cycles, of the observability gauge-sampling hook
    /// (network occupancy, DMB/lane occupancy, endpoint queue depth).
    /// Only active while the global `mdd-obs` layer is installed; event
    /// tracing and monotonic counters are unaffected by it.
    pub obs_sample_every: u64,
    /// Execution shards for the network phase of each cycle (default 1 =
    /// fully sequential). Results are bit-identical at any shard count —
    /// sharding is an execution strategy, not a model parameter — so this
    /// field is deliberately *excluded* from
    /// [`SimConfig::canonical_string`] and the result-cache key.
    pub shards: u32,
}

impl SimConfig {
    /// The paper's default configuration (Table 2) for a given scheme,
    /// pattern, VC count and applied load.
    pub fn paper_default(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64) -> Self {
        SimConfig {
            radix: vec![8, 8],
            mesh: false,
            bristle: 1,
            vcs,
            flit_buf: 2,
            scheme,
            queue_org: None,
            pattern: Arc::new(pattern),
            queue_capacity: 16,
            service_time: 40,
            mshr_limit: 16,
            detect_threshold: 25,
            router_block_threshold: 200,
            token_hop: 1,
            lane_hop: 1,
            dest: DestPattern::Random,
            sparse_arrivals: false,
            seed: 0x5eed,
            warmup: 10_000,
            measure: 30_000,
            load,
            cwg_interval: None,
            obs_sample_every: 64,
            shards: 1,
        }
    }

    /// A small, fast configuration for tests: 4x4 torus, short service
    /// time, short windows.
    pub fn small_test(scheme: Scheme, pattern: PatternSpec, vcs: u8, load: f64) -> Self {
        let mut cfg = Self::paper_default(scheme, pattern, vcs, load);
        cfg.radix = vec![4, 4];
        cfg.warmup = 1_000;
        cfg.measure = 4_000;
        // Short service time keeps the network (not the memory
        // controller) the bottleneck on the small test topology.
        cfg.service_time = 10;
        cfg
    }

    /// The per-point configuration of a load sweep: `self` at `load`,
    /// with the seed decorrelated across points while staying a pure
    /// function of `(self.seed, load)` so re-runs reproduce bit-identical
    /// points (this derivation is what the sweep runner and the
    /// `mdd-engine` cache key both use).
    pub fn at_load(&self, load: f64) -> SimConfig {
        let mut cfg = self.clone();
        cfg.load = load;
        cfg.seed = self
            .seed
            .wrapping_add((load * 1e6) as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        cfg
    }

    /// The effective queue organization (override or scheme default).
    pub fn effective_queue_org(&self) -> QueueOrg {
        self.queue_org.unwrap_or(self.scheme.default_queue_org())
    }

    /// Total processing nodes.
    pub fn num_nodes(&self) -> u32 {
        self.radix.iter().product::<u32>() * self.bristle
    }
}

/// Measured outcome of one simulation run (one point of a BNF curve).
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Applied load, flits/node/cycle.
    pub applied_load: f64,
    /// Delivered throughput, flits/node/cycle, over the measurement
    /// window.
    pub throughput: f64,
    /// Mean message latency in cycles (creation → consumption, including
    /// queue waiting time).
    pub avg_latency: f64,
    /// Approximate message-latency percentiles `(p50, p95, p99)` over the
    /// window (streaming P² estimates).
    pub latency_quantiles: (f64, f64, f64),
    /// Messages consumed during the window.
    pub messages_delivered: u64,
    /// Transactions completed during the window.
    pub transactions: u64,
    /// Potential message-dependent deadlocks detected at endpoints during
    /// the window.
    pub deadlocks: u64,
    /// Router-side Disha captures (routing-deadlock rescues) during the
    /// window.
    pub router_rescues: u64,
    /// DR deflections during the window.
    pub deflections: u64,
    /// PR endpoint rescues during the window.
    pub rescues: u64,
    /// Transactions generated by the source over the window.
    pub generated: u64,
    /// Mean memory-controller utilization over the whole run.
    pub mc_utilization: f64,
    /// Oracle checks performed (0 when `cwg_interval` is `None`).
    pub cwg_checks: u64,
    /// Checks at which the oracle found at least one knot (a certified
    /// deadlock existed at that instant).
    pub cwg_deadlocked_checks: u64,
    /// Mean utilization of network virtual channels over the whole run.
    pub vc_util_mean: f64,
    /// Peak per-VC utilization.
    pub vc_util_max: f64,
    /// Coefficient of variation of per-VC utilization — the paper's
    /// "unbalanced use of network resources" made measurable (higher =
    /// more imbalance; strict avoidance's partitioning drives this up).
    pub vc_util_cv: f64,
    /// Observability snapshot taken when the run finished, if the global
    /// `mdd-obs` layer was installed (`None` otherwise). Counters are
    /// process-wide and cumulative since [`mdd_obs::install`], so under a
    /// parallel sweep they aggregate every concurrently running point.
    pub obs: Option<mdd_obs::ObsReport>,
}

impl SimResult {
    /// Convert to a BNF plot point.
    pub fn bnf_point(&self) -> BnfPoint {
        BnfPoint {
            applied_load: self.applied_load,
            throughput: self.throughput,
            latency: self.avg_latency,
            messages_delivered: self.messages_delivered,
            deadlocks: self.deadlocks + self.router_rescues,
        }
    }

    /// The paper's normalized deadlock-frequency metric.
    pub fn normalized_deadlocks(&self) -> f64 {
        if self.messages_delivered == 0 {
            0.0
        } else {
            (self.deadlocks + self.router_rescues) as f64 / self.messages_delivered as f64
        }
    }
}
