//! Static pre-flight verification of a [`SimConfig`].
//!
//! Thin adapters from the simulator's configuration surface to
//! `mdd-verify`'s [`VerifyInput`]: they construct the same topology and
//! routing function `Simulator::new` would, then run the static analysis
//! — no simulator, no traffic. Used by the builder's strict mode
//! ([`SimConfigBuilder::verify`]), by the experiment engine's per-point
//! pre-flight, and by `mddsim --verify`.
//!
//! [`SimConfigBuilder::verify`]: crate::SimConfigBuilder::verify

use crate::config::SimConfig;
use mdd_routing::{SchemeConfigError, SchemeRouting, VcMap};
use mdd_topology::{Topology, TopologyKind};
use mdd_verify::{AnalysisConfig, MinVcReport, Verdict, VerifyInput};

/// Statically classify `cfg`, or fail with the same feasibility error the
/// simulator constructor would raise (too few VCs and the like).
pub fn verify_config(cfg: &SimConfig) -> Result<Verdict, SchemeConfigError> {
    let escape = if cfg.mesh { 1 } else { 2 };
    let map = VcMap::build(cfg.scheme, cfg.pattern.protocol(), cfg.vcs, escape)?;
    Ok(verify_with_map(cfg, map))
}

/// Statically classify `cfg` even when it is infeasible for the scheme:
/// an infeasible VC budget falls back to the *degraded* map
/// ([`VcMap::build_degraded`] — merged partitions, truncated escape
/// sets), so the verdict explains with a concrete cycle witness what
/// would go wrong on the hardware the configuration actually describes.
pub fn verify_config_degraded(cfg: &SimConfig) -> Verdict {
    let escape = if cfg.mesh { 1 } else { 2 };
    let map = VcMap::build_degraded(cfg.scheme, cfg.pattern.protocol(), cfg.vcs, escape);
    verify_with_map(cfg, map)
}

/// The topology `Simulator::new` would construct for `cfg`.
///
/// [`Simulator::new`]: crate::Simulator::new
fn topology_of(cfg: &SimConfig) -> Topology {
    let kind = if cfg.mesh {
        TopologyKind::Mesh
    } else {
        TopologyKind::Torus
    };
    Topology::new(kind, &cfg.radix, cfg.bristle)
}

/// Bundle `cfg` into the analysis engine's owned [`AnalysisConfig`] —
/// the entry point for incremental re-verdicts and fault-frontier
/// sweeps over a simulator configuration. Fails exactly when
/// [`verify_config`] would (infeasible VC budget for the scheme).
pub fn analysis_config(cfg: &SimConfig) -> Result<AnalysisConfig, SchemeConfigError> {
    let escape = if cfg.mesh { 1 } else { 2 };
    let map = VcMap::build(cfg.scheme, cfg.pattern.protocol(), cfg.vcs, escape)?;
    Ok(AnalysisConfig::new(
        topology_of(cfg),
        cfg.scheme,
        SchemeRouting::new(map),
        (*cfg.pattern).clone(),
        cfg.effective_queue_org(),
    ))
}

/// Probe for the smallest per-link VC budget that makes `cfg`'s scheme
/// statically safe on its topology and pattern, searching `1..=max`
/// where `max` is the largest budget the 128-slot router occupancy
/// masks admit (`(2·dims + bristle) · vcs ≤ 128`). The configuration's
/// own `vcs` value does not bound the search — this is the diagnostic
/// behind the strict builder's "how many VCs would fix it" hint.
pub fn min_safe_vcs(cfg: &SimConfig) -> MinVcReport {
    let ports = 2 * cfg.radix.len() + cfg.bristle as usize;
    let max = (128 / ports).min(u8::MAX as usize) as u8;
    mdd_verify::min_safe_vcs(
        &topology_of(cfg),
        cfg.scheme,
        &cfg.pattern,
        cfg.effective_queue_org(),
        max,
    )
}

fn verify_with_map(cfg: &SimConfig, map: VcMap) -> Verdict {
    let topo = topology_of(cfg);
    let routing = SchemeRouting::new(map);
    // Quotiented entry point: identical to `verify` at the paper's sizes
    // (the fold is the identity up to radix 9), sub-second at 64×64+.
    mdd_verify::verify_quotiented(&VerifyInput {
        topo: &topo,
        scheme: cfg.scheme,
        routing: &routing,
        pattern: &cfg.pattern,
        queue_org: cfg.effective_queue_org(),
    })
}
