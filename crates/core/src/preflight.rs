//! Static pre-flight verification of a [`SimConfig`].
//!
//! Thin adapters from the simulator's configuration surface to
//! `mdd-verify`'s [`VerifyInput`]: they construct the same topology and
//! routing function `Simulator::new` would, then run the static analysis
//! — no simulator, no traffic. Used by the builder's strict mode
//! ([`SimConfigBuilder::verify`]), by the experiment engine's per-point
//! pre-flight, and by `mddsim --verify`.
//!
//! [`SimConfigBuilder::verify`]: crate::SimConfigBuilder::verify

use crate::config::SimConfig;
use mdd_routing::{SchemeConfigError, SchemeRouting, VcMap};
use mdd_topology::{Topology, TopologyKind};
use mdd_verify::{Verdict, VerifyInput};

/// Statically classify `cfg`, or fail with the same feasibility error the
/// simulator constructor would raise (too few VCs and the like).
pub fn verify_config(cfg: &SimConfig) -> Result<Verdict, SchemeConfigError> {
    let escape = if cfg.mesh { 1 } else { 2 };
    let map = VcMap::build(cfg.scheme, cfg.pattern.protocol(), cfg.vcs, escape)?;
    Ok(verify_with_map(cfg, map))
}

/// Statically classify `cfg` even when it is infeasible for the scheme:
/// an infeasible VC budget falls back to the *degraded* map
/// ([`VcMap::build_degraded`] — merged partitions, truncated escape
/// sets), so the verdict explains with a concrete cycle witness what
/// would go wrong on the hardware the configuration actually describes.
pub fn verify_config_degraded(cfg: &SimConfig) -> Verdict {
    let escape = if cfg.mesh { 1 } else { 2 };
    let map = VcMap::build_degraded(cfg.scheme, cfg.pattern.protocol(), cfg.vcs, escape);
    verify_with_map(cfg, map)
}

fn verify_with_map(cfg: &SimConfig, map: VcMap) -> Verdict {
    let kind = if cfg.mesh {
        TopologyKind::Mesh
    } else {
        TopologyKind::Torus
    };
    let topo = Topology::new(kind, &cfg.radix, cfg.bristle);
    let routing = SchemeRouting::new(map);
    // Quotiented entry point: identical to `verify` at the paper's sizes
    // (the fold is the identity up to radix 9), sub-second at 64×64+.
    mdd_verify::verify_quotiented(&VerifyInput {
        topo: &topo,
        scheme: cfg.scheme,
        routing: &routing,
        pattern: &cfg.pattern,
        queue_org: cfg.effective_queue_org(),
    })
}
