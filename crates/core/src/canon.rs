//! Canonical serialization and content-addressing of [`SimConfig`].
//!
//! The engine's result cache (`mdd-engine`) keys every simulated point by
//! a stable hash of its full configuration, so a point re-runs exactly
//! when something that could change its result changed. The canonical
//! form therefore covers every *semantic* field — topology, scheme,
//! queue organization (as resolved by [`SimConfig::effective_queue_org`],
//! so an explicit override equal to the scheme default hashes like the
//! default), the complete transaction pattern (protocol message types,
//! dependency edges, backoff type, shapes and weights), destination
//! pattern, timing parameters, seed, windows, load and the CWG oracle
//! period — and deliberately excludes `obs_sample_every`, which only
//! controls observability gauge sampling and cannot affect a
//! [`SimResult`](crate::SimResult)'s measured fields, and `shards`,
//! which picks an execution strategy whose results are bit-identical at
//! any shard count (so cached points are valid across shard settings).
//!
//! The encoding is a fixed-order `key=value` line list: construction
//! order of the config (builder setter order, struct literal order)
//! cannot influence it, and floats are written in Rust's shortest
//! round-trip form so equal values always encode identically.

use crate::config::SimConfig;
use mdd_protocol::{MsgKind, PatternSpec, ProtocolSpec, QueueOrg};
use mdd_routing::Scheme;
use mdd_traffic::DestPattern;
use std::fmt::Write as _;

impl SimConfig {
    /// The canonical, construction-order-independent text form of every
    /// semantic field. Two configurations with equal canonical strings
    /// produce bit-identical simulation results.
    pub fn canonical_string(&self) -> String {
        let mut s = String::with_capacity(512);
        // Version tag: bump when the encoding itself changes so stale
        // cache entries invalidate wholesale.
        s.push_str("v=1\n");
        let _ = writeln!(
            s,
            "radix={}",
            self.radix
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("x")
        );
        let _ = writeln!(s, "mesh={}", self.mesh);
        let _ = writeln!(s, "bristle={}", self.bristle);
        let _ = writeln!(s, "vcs={}", self.vcs);
        let _ = writeln!(s, "flit_buf={}", self.flit_buf);
        let _ = writeln!(s, "scheme={}", canon_scheme(self.scheme));
        let _ = writeln!(s, "queue_org={}", canon_queue_org(self.effective_queue_org()));
        let _ = writeln!(s, "pattern={}", canon_pattern(&self.pattern));
        let _ = writeln!(s, "queue_capacity={}", self.queue_capacity);
        let _ = writeln!(s, "service_time={}", self.service_time);
        let _ = writeln!(s, "mshr_limit={}", self.mshr_limit);
        let _ = writeln!(s, "detect_threshold={}", self.detect_threshold);
        let _ = writeln!(s, "router_block_threshold={}", self.router_block_threshold);
        let _ = writeln!(s, "token_hop={}", self.token_hop);
        let _ = writeln!(s, "lane_hop={}", self.lane_hop);
        let _ = writeln!(s, "dest={}", canon_dest(self.dest));
        // Written only when enabled so every pre-existing dense-mode
        // cache key (and its stored results) stays valid.
        if self.sparse_arrivals {
            let _ = writeln!(s, "sparse_arrivals=true");
        }
        let _ = writeln!(s, "seed={}", self.seed);
        let _ = writeln!(s, "warmup={}", self.warmup);
        let _ = writeln!(s, "measure={}", self.measure);
        let _ = writeln!(s, "load={:?}", self.load);
        let _ = match self.cwg_interval {
            None => writeln!(s, "cwg_interval=none"),
            Some(k) => writeln!(s, "cwg_interval={k}"),
        };
        s
    }

    /// FNV-1a hash of [`SimConfig::canonical_string`] — the cache key of
    /// this configuration.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.canonical_string().as_bytes())
    }

    /// [`SimConfig::content_hash`] as the fixed-width lowercase hex the
    /// cache files use.
    pub fn content_hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }
}

/// 64-bit FNV-1a (the same hash the proptest shim uses for seeding; tiny,
/// stable, dependency-free — cryptographic strength is not needed for a
/// local result cache).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn canon_scheme(s: Scheme) -> &'static str {
    match s {
        Scheme::StrictAvoidance {
            shared_adaptive: false,
        } => "sa",
        Scheme::StrictAvoidance {
            shared_adaptive: true,
        } => "sa+",
        Scheme::DeflectiveRecovery => "dr",
        Scheme::ProgressiveRecovery => "pr",
    }
}

fn canon_queue_org(org: QueueOrg) -> &'static str {
    match org {
        QueueOrg::Shared => "shared",
        QueueOrg::PerNetwork => "pernet",
        QueueOrg::PerType => "pertype",
    }
}

fn canon_dest(d: DestPattern) -> String {
    match d {
        DestPattern::Random => "random".into(),
        DestPattern::BitComplement => "bitcomp".into(),
        DestPattern::Transpose => "transpose".into(),
        DestPattern::Neighbor => "neighbor".into(),
        DestPattern::Hotspot { node, permille } => format!("hotspot:{node}:{permille}"),
    }
}

fn canon_protocol(p: &ProtocolSpec) -> String {
    let mut s = String::new();
    let _ = write!(s, "{}[", p.name());
    for t in p.msg_types() {
        let spec = p.spec(t);
        let kind = match spec.kind {
            MsgKind::Request => "rq",
            MsgKind::Reply => "rp",
        };
        let term = if spec.terminating { "T" } else { "_" };
        let _ = write!(s, "{}:{kind}:{}:{term},", spec.name, spec.length_flits);
    }
    s.push_str("deps=");
    for a in p.msg_types() {
        for &b in p.subordinates(a) {
            let _ = write!(s, "{}>{},", a.index(), b.index());
        }
    }
    match p.backoff_type() {
        None => s.push_str("backoff=none"),
        Some(t) => {
            let _ = write!(s, "backoff={}", t.index());
        }
    }
    s.push(']');
    s
}

fn canon_pattern(pat: &PatternSpec) -> String {
    let mut s = String::new();
    let _ = write!(s, "{}{{proto={};shapes=[", pat.name(), canon_protocol(pat.protocol()));
    for i in 0..pat.num_shapes() {
        let id = mdd_protocol::ShapeId(i as u16);
        let shape = pat.shape(id);
        let chain = shape
            .chain
            .iter()
            .map(|t| t.index().to_string())
            .collect::<Vec<_>>()
            .join("-");
        let targets = shape
            .targets
            .iter()
            .map(|t| match t {
                mdd_protocol::HopTarget::Home => "H",
                mdd_protocol::HopTarget::Owner => "O",
                mdd_protocol::HopTarget::Requester => "R",
            })
            .collect::<Vec<_>>()
            .join("-");
        let mc = match shape.multicast_at {
            None => "_".to_string(),
            Some(pos) => pos.to_string(),
        };
        let _ = write!(s, "(w={:?},chain={chain},targets={targets},mc={mc})", pat.weight(id));
    }
    s.push_str("]}");
    s
}
