//! The Extended Disha Sequential progressive-recovery orchestrator.
//!
//! Implements the Figure 4 flowchart and the Appendix cases:
//!
//! * the token tours routers and NICs (one stop per `token_hop` cycles);
//! * a NIC whose detector has fired captures it and has its memory
//!   controller process the stuck input-queue head, the subordinate going
//!   to the DMB;
//! * a router holding a packet whose head has been blocked past the
//!   router time-out captures it, the packet is *extracted* from normal
//!   virtual-channel resources and carried over the recovery lane
//!   (routing-dependent deadlocks under true fully adaptive routing);
//! * each lane delivery is deposited into the destination's input queue
//!   if possible; a full queue sinks terminating messages directly at the
//!   memory controller (preemption) and recursively rescues
//!   non-terminating ones, the receiver becoming the new token holder;
//! * token returns retrace the lane to the sender chain (a stack of
//!   frames); when the initiator's frame empties, the token is released
//!   for re-circulation at the capturing stop.

use mdd_deadlock::{CirculatingToken, RecoveryLane, TokenState};
use mdd_nic::{Nic, RescueOutcome};
use mdd_obs::{CounterId, Event};
use mdd_protocol::{MessageStore, MsgHandle, PatternSpec};
use mdd_router::Network;
use mdd_topology::{NicId, NodeId, RecoveryRing, Topology, TourStop};
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug)]
struct Frame {
    /// Router position of this token holder (for lane distances).
    router: NodeId,
    /// The NIC holding the token here (`None` for a router capture frame).
    nic: Option<NicId>,
    /// Subordinates still to deliver from this holder (handles into the
    /// simulation's message store).
    pending: VecDeque<MsgHandle>,
    /// True while this holder's memory controller is producing
    /// subordinates.
    waiting_mc: bool,
}

#[derive(Debug)]
enum Phase {
    /// Pop and place the next pending subordinate of the top frame.
    Dispatch,
    /// Waiting on the top frame's memory controller.
    WaitMc,
    /// A rescued message is streaming over the lane.
    Transfer,
    /// A lane-delivered message awaits placement at its destination.
    Deposit(MsgHandle),
    /// The token is retracing the lane back to the sender chain.
    TokenDelay {
        /// Cycle the token arrives.
        until: u64,
    },
}

#[derive(Debug)]
struct Episode {
    /// Sequence number (1-based) pairing RecoveryStart/RecoveryEnd trace
    /// events.
    id: u64,
    /// The rescued head message the episode began with.
    head_msg: u64,
    stack: Vec<Frame>,
    phase: Phase,
    started_at: u64,
    messages_moved: u32,
    max_depth: u32,
    origin: EpisodeOrigin,
}

/// How a rescue episode began.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpisodeOrigin {
    /// Message-dependent deadlock detected at a network interface.
    Nic(NicId),
    /// Routing-dependent deadlock: a packet extracted at a router.
    Router(NodeId),
}

/// Record of one completed rescue episode, for diagnostics and the
/// `deadlock_anatomy` example.
#[derive(Clone, Copy, Debug)]
pub struct EpisodeRecord {
    /// Where the token was captured.
    pub origin: EpisodeOrigin,
    /// Capture cycle.
    pub started_at: u64,
    /// Release cycle.
    pub ended_at: u64,
    /// Messages carried over the recovery lane or deposited locally during
    /// the episode (the rescued head's subordinates, recursively).
    pub messages_moved: u32,
    /// Deepest sender-chain (token-holder) stack reached.
    pub max_depth: u32,
}

impl EpisodeRecord {
    /// Episode duration in cycles.
    pub fn duration(&self) -> u64 {
        self.ended_at - self.started_at
    }
}

/// Token + lane + episode state for progressive recovery.
#[derive(Debug)]
pub struct PrRecovery {
    ring: RecoveryRing,
    token: CirculatingToken,
    lane: RecoveryLane,
    pattern: Arc<PatternSpec>,
    router_block_threshold: u64,
    episode: Option<Episode>,
    /// Token captures initiated at routers (routing-deadlock rescues).
    pub router_captures: u64,
    /// Token captures initiated at NICs (message-deadlock rescues).
    pub nic_captures: u64,
    /// Completed rescue episodes.
    pub episodes_completed: u64,
    /// Episodes ever started (also the most recent episode's sequence
    /// number — trace events use it to pair starts with ends).
    pub episodes_started: u64,
    /// Log of completed episodes (bounded; oldest dropped past 4096).
    episode_log: Vec<EpisodeRecord>,
    /// Scratch for the router-blocked-head probe (reused every token stop
    /// so the steady-state path allocates nothing).
    blocked_scratch: Vec<(NodeId, MsgHandle)>,
    /// Token laps already published to the observability counters.
    laps_noted: u64,
}

impl PrRecovery {
    /// Build the recovery machinery for `topo`.
    pub fn new(
        topo: &Topology,
        pattern: Arc<PatternSpec>,
        token_hop: u64,
        lane_hop: u64,
        router_block_threshold: u64,
    ) -> Self {
        let ring = RecoveryRing::new(topo);
        let token = CirculatingToken::new(&ring, token_hop);
        let lane = RecoveryLane::new(ring.clone(), lane_hop);
        PrRecovery {
            ring,
            token,
            lane,
            pattern,
            router_block_threshold,
            episode: None,
            router_captures: 0,
            nic_captures: 0,
            episodes_completed: 0,
            episodes_started: 0,
            episode_log: Vec::new(),
            blocked_scratch: Vec::new(),
            laps_noted: 0,
        }
    }

    /// Completed-episode records (bounded to the most recent 4096).
    pub fn episode_log(&self) -> &[EpisodeRecord] {
        &self.episode_log
    }

    /// Token diagnostics: (laps completed, captures).
    pub fn token_stats(&self) -> (u64, u64) {
        (self.token.laps, self.token.captures)
    }

    /// Watchdog regenerations after injected token losses.
    pub fn token_regenerations(&self) -> u64 {
        self.token.regenerations
    }

    /// Fault injection: lose the circulating token (no effect if it is
    /// currently captured by an episode). Returns true if the loss was
    /// injected.
    pub fn inject_token_loss(&mut self, now: u64) -> bool {
        if self.episode.is_none() && self.token.state() == TokenState::Circulating {
            self.token.drop_token(now);
            true
        } else {
            false
        }
    }

    /// True while a rescue episode is in progress.
    pub fn episode_active(&self) -> bool {
        self.episode.is_some()
    }

    /// The next cycle [`PrRecovery::step`] has scheduled work — the
    /// pending token hop or watchdog regeneration — or `None` while an
    /// episode owns the token (episodes advance every cycle). Steps
    /// strictly before this cycle are no-ops on an otherwise quiescent
    /// system, bounding how far the simulator may fast-forward.
    pub fn next_event_cycle(&self) -> Option<u64> {
        if self.episode.is_some() {
            None
        } else {
            self.token.next_event()
        }
    }

    /// Rescued messages carried over the lane so far.
    pub fn lane_transfers(&self) -> u64 {
        self.lane.transfers
    }

    /// True while a rescued message occupies the exclusive lane (the DB
    /// occupancy gauge samples this).
    pub fn lane_busy(&self) -> bool {
        self.lane.busy()
    }

    /// Advance the recovery machinery one cycle.
    pub fn step(
        &mut self,
        net: &mut Network,
        nics: &mut [Nic],
        topo: &Topology,
        cycle: u64,
        store: &mut MessageStore,
    ) {
        if self.episode.is_some() {
            self.episode_step(nics, topo, cycle, store);
            return;
        }
        debug_assert_ne!(
            self.token.state(),
            TokenState::Captured,
            "no episode implies the token is circulating or lost"
        );
        let Some(stop) = self.token.advance(&self.ring, cycle) else {
            return;
        };
        mdd_obs::counter_add(CounterId::TokenHops, 1);
        if self.token.laps > self.laps_noted {
            mdd_obs::counter_add(CounterId::TokenLaps, self.token.laps - self.laps_noted);
            self.laps_noted = self.token.laps;
        }
        match stop {
            TourStop::Nic(n) => {
                mdd_obs::trace!(Event::TokenPass {
                    cycle,
                    at: n.0,
                    at_nic: true,
                });
                if nics[n.index()].detection_fired(cycle) && !nics[n.index()].rescue_busy() {
                    let Some(head) = nics[n.index()].begin_rescue_from_input(cycle, store) else {
                        return;
                    };
                    self.token.capture();
                    self.nic_captures += 1;
                    self.episodes_started += 1;
                    mdd_obs::counter_add(CounterId::NicCaptures, 1);
                    mdd_obs::trace!(Event::RecoveryStart {
                        cycle,
                        episode: self.episodes_started,
                        msg: head.0,
                        at: n.0,
                        at_nic: true,
                    });
                    self.episode = Some(Episode {
                        id: self.episodes_started,
                        head_msg: head.0,
                        stack: vec![Frame {
                            router: topo.nic_router(n),
                            nic: Some(n),
                            pending: VecDeque::new(),
                            waiting_mc: true,
                        }],
                        phase: Phase::WaitMc,
                        started_at: cycle,
                        messages_moved: 0,
                        max_depth: 1,
                        origin: EpisodeOrigin::Nic(n),
                    });
                }
            }
            TourStop::Router(r) => {
                mdd_obs::trace!(Event::TokenPass {
                    cycle,
                    at: r.0,
                    at_nic: false,
                });
                // A token stop only ever inspects its own router: the
                // single-router sweep yields the same victims, in the same
                // order, as filtering a full-network sweep down to `r`.
                net.blocked_heads_at(r, self.router_block_threshold, cycle, &mut self.blocked_scratch);
                let victim = self.blocked_scratch.iter().find(|(_, h)| {
                    net.packets()
                        .get(*h)
                        .is_some_and(|p| p.dst_router != r)
                });
                if let Some(&(_, h)) = victim {
                    let ex = net.extract_packet(h).expect("blocked packet is in flight");
                    let (head_id, src) = {
                        let m = store.get_mut(h);
                        m.rescued = true;
                        (m.id.0, m.src)
                    };
                    nics[src.index()].abort_injection(h);
                    self.token.capture();
                    self.router_captures += 1;
                    self.episodes_started += 1;
                    mdd_obs::counter_add(CounterId::RouterCaptures, 1);
                    mdd_obs::counter_add(CounterId::MessagesRescued, 1);
                    mdd_obs::counter_add(CounterId::LaneTransfers, 1);
                    mdd_obs::trace!(Event::RecoveryStart {
                        cycle,
                        episode: self.episodes_started,
                        msg: head_id,
                        at: r.0,
                        at_nic: false,
                    });
                    let (dst, len) = {
                        let m = store.get(h);
                        (m.dst, m.length_flits)
                    };
                    let dst_router = topo.nic_router(dst);
                    // A lane transfer is a block move: every flit of the
                    // rescued packet streams without per-flit arbitration.
                    mdd_obs::counter_add(CounterId::LinkBurstFlits, len as u64);
                    self.lane.send(h, len, ex.head_router, dst_router, cycle);
                    self.episode = Some(Episode {
                        id: self.episodes_started,
                        head_msg: head_id,
                        stack: vec![Frame {
                            router: r,
                            nic: None,
                            pending: VecDeque::new(),
                            waiting_mc: false,
                        }],
                        phase: Phase::Transfer,
                        started_at: cycle,
                        messages_moved: 1,
                        max_depth: 1,
                        origin: EpisodeOrigin::Router(r),
                    });
                }
            }
        }
    }

    fn finish_episode(&mut self, cycle: u64) {
        let ep = self.episode.take().expect("finishing an active episode");
        self.token.release(cycle);
        self.episodes_completed += 1;
        mdd_obs::counter_add(CounterId::DeadlocksRecovered, 1);
        mdd_obs::trace!(Event::RecoveryEnd {
            cycle,
            episode: ep.id,
            msg: ep.head_msg,
            moved: ep.messages_moved,
            depth: ep.max_depth,
        });
        if self.episode_log.len() >= 4096 {
            self.episode_log.remove(0);
        }
        self.episode_log.push(EpisodeRecord {
            origin: ep.origin,
            started_at: ep.started_at,
            ended_at: cycle,
            messages_moved: ep.messages_moved,
            max_depth: ep.max_depth,
        });
    }

    fn episode_step(
        &mut self,
        nics: &mut [Nic],
        topo: &Topology,
        cycle: u64,
        store: &mut MessageStore,
    ) {
        loop {
            let ep = self.episode.as_mut().expect("episode_step requires episode");
            match &ep.phase {
                Phase::WaitMc => {
                    let top = ep.stack.last_mut().expect("WaitMc frame");
                    let n = top.nic.expect("WaitMc frames belong to NICs");
                    match nics[n.index()].take_rescue_output() {
                        Some(subs) => {
                            top.pending.extend(subs);
                            top.waiting_mc = false;
                            ep.phase = Phase::Dispatch;
                        }
                        None => return,
                    }
                }
                Phase::Transfer => {
                    match self.lane.poll(cycle) {
                        Some(delivery) => ep.phase = Phase::Deposit(delivery.msg),
                        None => return,
                    }
                }
                Phase::Deposit(_) => {
                    let Phase::Deposit(msg) = std::mem::replace(&mut ep.phase, Phase::Dispatch)
                    else {
                        unreachable!()
                    };
                    let (dst, mtype) = {
                        let m = store.get(msg);
                        (m.dst, m.mtype)
                    };
                    let dst_router = topo.nic_router(dst);
                    let terminating = self.pattern.protocol().is_terminating(mtype);
                    match nics[dst.index()].try_deposit_input(msg, store) {
                        Ok(()) => {
                            let back = ep.stack.last().expect("sender frame").router;
                            ep.phase = Phase::TokenDelay {
                                until: cycle + self.lane.control_delay(dst_router, back),
                            };
                            return;
                        }
                        Err(msg) => {
                            if terminating {
                                // Sunk directly by the MC via preemption
                                // (Appendix Case 2).
                                nics[dst.index()].sink_terminating(msg, cycle, store);
                                let back = ep.stack.last().expect("sender frame").router;
                                ep.phase = Phase::TokenDelay {
                                    until: cycle + self.lane.control_delay(dst_router, back),
                                };
                                return;
                            }
                            match nics[dst.index()].rescue_process(msg) {
                                RescueOutcome::Scheduled => {
                                    ep.stack.push(Frame {
                                        router: dst_router,
                                        nic: Some(dst),
                                        pending: VecDeque::new(),
                                        waiting_mc: true,
                                    });
                                    ep.max_depth = ep.max_depth.max(ep.stack.len() as u32);
                                    ep.phase = Phase::WaitMc;
                                }
                                RescueOutcome::AlreadyBusy => {
                                    // Defensive: should be unreachable with
                                    // a single token. Retry next cycle.
                                    debug_assert!(false, "destination NIC mid-rescue");
                                    ep.phase = Phase::Deposit(msg);
                                    return;
                                }
                            }
                        }
                    }
                }
                Phase::TokenDelay { until } => {
                    if cycle >= *until {
                        ep.phase = Phase::Dispatch;
                    } else {
                        return;
                    }
                }
                Phase::Dispatch => {
                    let Some(top) = ep.stack.last_mut() else {
                        self.finish_episode(cycle);
                        return;
                    };
                    if top.waiting_mc {
                        ep.phase = Phase::WaitMc;
                        continue;
                    }
                    match top.pending.pop_front() {
                        Some(m) => {
                            // Appendix Case 1: deposit locally when the
                            // output queue admits it.
                            let holder = top
                                .nic
                                .expect("router frames never have pending subordinates");
                            ep.messages_moved += 1;
                            mdd_obs::counter_add(CounterId::MessagesRescued, 1);
                            match nics[holder.index()].try_deposit_output(m, store) {
                                // Deposited: fall through to the next
                                // dispatch iteration.
                                Ok(()) => {}
                                Err(m) => {
                                    let (m_dst, m_len) = {
                                        let mm = store.get(m);
                                        (mm.dst, mm.length_flits)
                                    };
                                    let dst_router = topo.nic_router(m_dst);
                                    mdd_obs::counter_add(CounterId::LaneTransfers, 1);
                                    // Block move over the lane (see the
                                    // router-capture site).
                                    mdd_obs::counter_add(
                                        CounterId::LinkBurstFlits,
                                        m_len as u64,
                                    );
                                    self.lane.send(m, m_len, top.router, dst_router, cycle);
                                    ep.phase = Phase::Transfer;
                                    return;
                                }
                            }
                        }
                        None => {
                            // Frame complete: the token retraces to the
                            // sender below, or is released at the initiator.
                            let from = top.router;
                            ep.stack.pop();
                            match ep.stack.last() {
                                Some(below) => {
                                    ep.phase = Phase::TokenDelay {
                                        until: cycle + self.lane.control_delay(from, below.router),
                                    };
                                    return;
                                }
                                None => {
                                    self.finish_episode(cycle);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
