//! Load sweeps producing Burton-Normal-Form curves.
//!
//! Each sweep point is an independent simulation, so points run in
//! parallel with rayon (the justification recorded in DESIGN.md §7).
//!
//! Two entry points remain here for direct library use:
//! [`run_point`] for one configuration at one load, and
//! [`run_curve_checked`] for a sweep with per-point error propagation
//! (the old panicking `run_curve` wrapper is gone).
//! Figure harnesses should prefer the `mdd-engine` crate, which adds
//! per-point panic isolation, a persistent result cache and progress
//! counters on top of the same primitives.

use crate::config::{SimConfig, SimResult};
use crate::sim::Simulator;
use mdd_routing::SchemeConfigError;
use mdd_stats::BnfCurve;
use rayon::prelude::*;

/// The default applied-load schedule used by the figure harnesses:
/// `n` points from `lo` to `hi` flits/node/cycle.
pub fn default_loads(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && hi > lo);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Run one configuration at one load (seed decorrelated per point via
/// [`SimConfig::at_load`]).
pub fn run_point(base: &SimConfig, load: f64) -> Result<SimResult, SchemeConfigError> {
    let mut sim = Simulator::new(base.at_load(load))?;
    Ok(sim.run())
}

/// Sweep `loads` in parallel, propagating every point's outcome: the
/// returned vector has one `Result` per requested load, in load order,
/// and the curve is assembled from the successful points only. A point
/// that fails (an infeasible scheme configuration) does not disturb the
/// others — callers decide whether a partial curve is acceptable.
pub fn run_curve_checked(
    base: &SimConfig,
    loads: &[f64],
    label: &str,
) -> (BnfCurve, Vec<Result<SimResult, SchemeConfigError>>) {
    let results: Vec<Result<SimResult, SchemeConfigError>> =
        loads.par_iter().map(|&l| run_point(base, l)).collect();
    let curve = BnfCurve::assemble(
        label,
        results
            .iter()
            .filter_map(|r| r.as_ref().ok().map(SimResult::bnf_point)),
    );
    (curve, results)
}
