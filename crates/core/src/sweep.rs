//! Load sweeps producing Burton-Normal-Form curves.
//!
//! Each sweep point is an independent simulation, so points run in
//! parallel with rayon (the justification recorded in DESIGN.md §7).

use crate::config::{SimConfig, SimResult};
use crate::sim::Simulator;
use mdd_routing::SchemeConfigError;
use mdd_stats::BnfCurve;
use rayon::prelude::*;

/// The default applied-load schedule used by the figure harnesses:
/// `n` points from `lo` to `hi` flits/node/cycle.
pub fn default_loads(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && hi > lo);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Run one configuration at one load.
pub fn run_point(base: &SimConfig, load: f64) -> Result<SimResult, SchemeConfigError> {
    let mut cfg = base.clone();
    cfg.load = load;
    // Decorrelate seeds across points while keeping the run reproducible.
    cfg.seed = base
        .seed
        .wrapping_add((load * 1e6) as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut sim = Simulator::new(cfg)?;
    Ok(sim.run())
}

/// Sweep `loads` (in parallel) and assemble the labelled BNF curve.
/// Returns the curve plus the raw per-point results.
pub fn run_curve(
    base: &SimConfig,
    loads: &[f64],
    label: &str,
) -> Result<(BnfCurve, Vec<SimResult>), SchemeConfigError> {
    // Validate feasibility once up front so the error surfaces before
    // spawning work.
    {
        let mut probe = base.clone();
        probe.warmup = 0;
        probe.measure = 0;
        Simulator::new(probe)?;
    }
    let results: Vec<SimResult> = loads
        .par_iter()
        .map(|&l| run_point(base, l).expect("feasibility checked above"))
        .collect();
    let mut curve = BnfCurve::new(label);
    for r in &results {
        curve.push(r.bnf_point());
    }
    Ok((curve, results))
}
