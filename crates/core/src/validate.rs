//! Ground-truth deadlock detection: building the extended channel
//! wait-for graph (CWG) from live simulator state.
//!
//! This mirrors FlexSim 1.2's CWG-based detection, augmented (as in
//! Section 4.1) with message-level activities at network interfaces:
//! besides the virtual channels, the graph contains a vertex per endpoint
//! input queue and output queue, so message-dependent cycles that close
//! through the endpoints are visible.
//!
//! Vertex ids follow [`mdd_deadlock::ResourceLayout`], the same layout the
//! static verifier (`mdd-verify`) uses, so a runtime deadlock trace from
//! [`deadlock_witness`] and a static cycle witness name resources
//! identically.
//!
//! Edge rules (OR-wait semantics — a vertex with no out-edges can make
//! progress and is an escape):
//! * a routed input VC waits on its allocated downstream VC; an unrouted
//!   head waits on every routing candidate (downstream VCs, or the
//!   destination NIC input queue for local candidates);
//! * an input queue whose head is non-terminating waits on the output
//!   queue of the head's subordinate type (terminating heads sink, so
//!   such queues get no out-edge);
//! * an output queue with a head waits on the injection VC it is bound to
//!   (if packetization started) or on every injection VC its head may use.

use crate::sim::Simulator;
use mdd_deadlock::{Resource, ResourceLayout, WaitForGraph};
use mdd_router::{RouteCandidate, Routing};
use mdd_topology::PortId;

/// The shared vertex layout for the simulator's configuration.
pub(crate) fn resource_layout(sim: &Simulator) -> ResourceLayout {
    let nq = sim.nics()[0].num_queues();
    ResourceLayout::new(sim.topo(), sim.network().vcs() as usize, nq)
}

/// Build the extended CWG for the simulator's current state.
pub fn build_waitfor_graph(sim: &Simulator) -> WaitForGraph {
    let topo = sim.topo();
    let net = sim.network();
    let nics = sim.nics();
    let store = sim.store();
    let pattern = sim.config().pattern.clone();
    let proto = pattern.protocol();

    let layout = resource_layout(sim);
    let ports = topo.ports_per_router();
    let vcs = net.vcs() as usize;
    let nr = topo.num_routers() as usize;
    let nq = nics[0].num_queues();
    let mut g = WaitForGraph::new(layout.num_vertices());
    let org = sim.config().effective_queue_org();

    // Router VCs.
    let mut cands: Vec<RouteCandidate> = Vec::new();
    for r in 0..nr {
        let node = mdd_topology::NodeId(r as u32);
        let router = net.router(node);
        for p in 0..ports {
            for v in 0..vcs {
                let vc = router.vc(PortId(p as u8), v as u8);
                let Some(front) = vc.front() else { continue };
                let src_vertex = layout.vc_vertex(node, PortId(p as u8), v as u8);
                let Some(pkt) = net.packets().get(front.msg) else {
                    continue;
                };
                let add_target = |g: &mut WaitForGraph, port: PortId, ovc: u8| {
                    if let Some((d, dir)) = topo.port_dim_dir(port) {
                        let down = topo.neighbor(node, d, dir).expect("link exists");
                        let dport = topo.port(d, dir.opposite());
                        g.add_edge(src_vertex, layout.vc_vertex(down, dport, ovc));
                    } else {
                        // Local port: waits on destination input queue —
                        // only when that queue is actually full (otherwise
                        // acceptance is imminent: progress, no wait).
                        let local = topo.port_local_index(port).expect("local port");
                        let nic = topo.nic_at(node, local);
                        let qi = org.queue_index(proto, pkt.mtype);
                        if nics[nic.index()].in_queue(qi).is_full() {
                            g.add_edge(src_vertex, layout.in_queue_vertex(nic, qi));
                        }
                    }
                };
                match vc.route() {
                    Some((op, ov)) => {
                        // A granted local route has a reservation: progress
                        // is guaranteed, no wait edge.
                        if topo.port_dim_dir(op).is_some() {
                            add_target(&mut g, op, ov);
                        }
                    }
                    None => {
                        if front.is_head() {
                            cands.clear();
                            sim.routing().candidates(topo, node, pkt, 0, &mut cands);
                            for c in &cands {
                                add_target(&mut g, c.port, c.vc);
                            }
                        }
                    }
                }
            }
        }
    }

    // Endpoint queues.
    for nic in nics {
        let nid = nic.id();
        for q in 0..nq {
            // Input queue head waits on the subordinate's output queue.
            if let Some(&h) = nic.in_queue(q).front() {
                let head = store.get(h);
                let shape = pattern.shape(head.shape);
                let pos = head.chain_pos as usize;
                // Sinkable heads and multicast join replies drain without
                // output-queue space (conservatively treated as escapes;
                // the final branch of a join does need space, so this can
                // only under-approximate — never a false deadlock).
                let sinkable = proto.is_terminating(head.mtype)
                    || head.is_backoff
                    || shape.is_join_reply(pos);
                if !sinkable && !shape.is_last(pos) {
                    let sub = shape.mtype(pos + 1);
                    let oq = org.queue_index(proto, sub);
                    // Only a full output queue blocks the memory
                    // controller; otherwise the head will be serviced.
                    if nic.out_queue(oq).is_full() {
                        g.add_edge(
                            layout.in_queue_vertex(nid, q),
                            layout.out_queue_vertex(nid, oq),
                        );
                    }
                }
            }
            // Output queue head waits on injection VCs.
            if let Some(&h) = nic.out_queue(q).front() {
                let head = store.get(h);
                let my_router = topo.nic_router(nid);
                let local_port = topo.local_port(topo.nic_local_index(nid));
                match nic.active_injection_vc(h) {
                    Some(v) => {
                        g.add_edge(
                            layout.out_queue_vertex(nid, q),
                            layout.vc_vertex(my_router, local_port, v),
                        );
                    }
                    None => {
                        let pkt = mdd_router::PacketState {
                            msg: h,
                            mtype: head.mtype,
                            src: head.src,
                            dst: head.dst,
                            dst_router: topo.nic_router(head.dst),
                            crossed_dateline: 0,
                            injected_at: 0,
                        };
                        let mut vcs_buf = Vec::new();
                        sim.routing().injection_vcs(&pkt, &mut vcs_buf);
                        for v in vcs_buf {
                            g.add_edge(
                                layout.out_queue_vertex(nid, q),
                                layout.vc_vertex(my_router, local_port, v),
                            );
                        }
                    }
                }
            }
        }
    }
    g
}

/// If the simulator is deadlocked *right now* (the CWG holds a knot),
/// return a human-readable trace of one cycle inside the first knot,
/// annotated with the message type blocked at each resource. Uses the
/// same [`ResourceLayout`] naming as `mdd-verify`'s static witnesses.
pub fn deadlock_witness(sim: &Simulator) -> Option<String> {
    let g = build_waitfor_graph(sim);
    let knot = g.knots().into_iter().next()?;
    let cycle = g.cycle_in_component(&knot);
    if cycle.is_empty() {
        return None;
    }
    let layout = resource_layout(sim);
    let store = sim.store();
    let net = sim.network();
    let proto = sim.config().pattern.protocol();
    let notes: Vec<String> = cycle
        .iter()
        .map(|&v| {
            let head = match layout.resource(v) {
                Resource::ChannelVc { router, port, vc } => net
                    .router(router)
                    .vc(port, vc)
                    .front()
                    .map(|f| f.msg),
                Resource::InputQueue { nic, queue } => {
                    sim.nics()[nic.index()].in_queue(queue).front().copied()
                }
                Resource::OutputQueue { nic, queue } => {
                    sim.nics()[nic.index()].out_queue(queue).front().copied()
                }
            };
            head.and_then(|h| store.try_get(h))
                .map(|m| {
                    format!(
                        "{} to nic {}",
                        proto.spec(m.mtype).name,
                        m.dst.index()
                    )
                })
                .unwrap_or_default()
        })
        .collect();
    Some(layout.format_cycle(&cycle, &notes))
}
