//! Ground-truth deadlock detection: building the extended channel
//! wait-for graph (CWG) from live simulator state.
//!
//! This mirrors FlexSim 1.2's CWG-based detection, augmented (as in
//! Section 4.1) with message-level activities at network interfaces:
//! besides the virtual channels, the graph contains a vertex per endpoint
//! input queue and output queue, so message-dependent cycles that close
//! through the endpoints are visible.
//!
//! Vertex layout:
//! * input VC of router `r`, port `p`, channel `v` → `(r·P + p)·V + v`
//! * NIC `n` input queue `q`  → `base + n·2Q + q`
//! * NIC `n` output queue `q` → `base + n·2Q + Q + q`
//!
//! Edge rules (OR-wait semantics — a vertex with no out-edges can make
//! progress and is an escape):
//! * a routed input VC waits on its allocated downstream VC; an unrouted
//!   head waits on every routing candidate (downstream VCs, or the
//!   destination NIC input queue for local candidates);
//! * an input queue whose head is non-terminating waits on the output
//!   queue of the head's subordinate type (terminating heads sink, so
//!   such queues get no out-edge);
//! * an output queue with a head waits on the injection VC it is bound to
//!   (if packetization started) or on every injection VC its head may use.

use crate::sim::Simulator;
use mdd_deadlock::WaitForGraph;
use mdd_router::{RouteCandidate, Routing};
use mdd_topology::PortId;

/// Build the extended CWG for the simulator's current state.
pub fn build_waitfor_graph(sim: &Simulator) -> WaitForGraph {
    let topo = sim.topo();
    let net = sim.network();
    let nics = sim.nics();
    let store = sim.store();
    let pattern = sim.config().pattern.clone();
    let proto = pattern.protocol();

    let ports = topo.ports_per_router();
    let vcs = net.vcs() as usize;
    let nr = topo.num_routers() as usize;
    let nq = nics[0].num_queues();
    let base = nr * ports * vcs;
    let total = base + nics.len() * 2 * nq;
    let mut g = WaitForGraph::new(total);

    let vc_vertex =
        |r: usize, p: usize, v: usize| -> u32 { ((r * ports + p) * vcs + v) as u32 };
    let inq_vertex = |n: usize, q: usize| -> u32 { (base + n * 2 * nq + q) as u32 };
    let outq_vertex = |n: usize, q: usize| -> u32 { (base + n * 2 * nq + nq + q) as u32 };
    let org = sim.config().effective_queue_org();

    // Router VCs.
    let mut cands: Vec<RouteCandidate> = Vec::new();
    for r in 0..nr {
        let node = mdd_topology::NodeId(r as u32);
        let router = net.router(node);
        for p in 0..ports {
            for v in 0..vcs {
                let vc = router.vc(PortId(p as u8), v as u8);
                let Some(front) = vc.front() else { continue };
                let src_vertex = vc_vertex(r, p, v);
                let Some(pkt) = net.packets().get(front.msg) else {
                    continue;
                };
                let add_target = |g: &mut WaitForGraph, port: PortId, ovc: u8| {
                    if let Some((d, dir)) = topo.port_dim_dir(port) {
                        let down = topo.neighbor(node, d, dir).expect("link exists");
                        let dport = topo.port(d, dir.opposite());
                        g.add_edge(
                            src_vertex,
                            vc_vertex(down.index(), dport.index(), ovc as usize),
                        );
                    } else {
                        // Local port: waits on destination input queue —
                        // only when that queue is actually full (otherwise
                        // acceptance is imminent: progress, no wait).
                        let local = topo.port_local_index(port).expect("local port");
                        let nic = topo.nic_at(node, local);
                        let qi = org.queue_index(proto, pkt.mtype);
                        if nics[nic.index()].in_queue(qi).is_full() {
                            g.add_edge(src_vertex, inq_vertex(nic.index(), qi));
                        }
                    }
                };
                match vc.route {
                    Some((op, ov)) => {
                        // A granted local route has a reservation: progress
                        // is guaranteed, no wait edge.
                        if topo.port_dim_dir(op).is_some() {
                            add_target(&mut g, op, ov);
                        }
                    }
                    None => {
                        if front.is_head() {
                            cands.clear();
                            sim.routing().candidates(topo, node, pkt, 0, &mut cands);
                            for c in &cands {
                                add_target(&mut g, c.port, c.vc);
                            }
                        }
                    }
                }
            }
        }
    }

    // Endpoint queues.
    for (n, nic) in nics.iter().enumerate() {
        for q in 0..nq {
            // Input queue head waits on the subordinate's output queue.
            if let Some(&h) = nic.in_queue(q).front() {
                let head = store.get(h);
                let shape = pattern.shape(head.shape);
                let pos = head.chain_pos as usize;
                // Sinkable heads and multicast join replies drain without
                // output-queue space (conservatively treated as escapes;
                // the final branch of a join does need space, so this can
                // only under-approximate — never a false deadlock).
                let sinkable = proto.is_terminating(head.mtype)
                    || head.is_backoff
                    || shape.is_join_reply(pos);
                if !sinkable && !shape.is_last(pos) {
                    let sub = shape.mtype(pos + 1);
                    let oq = org.queue_index(proto, sub);
                    // Only a full output queue blocks the memory
                    // controller; otherwise the head will be serviced.
                    if nic.out_queue(oq).is_full() {
                        g.add_edge(inq_vertex(n, q), outq_vertex(n, oq));
                    }
                }
            }
            // Output queue head waits on injection VCs.
            if let Some(&h) = nic.out_queue(q).front() {
                let head = store.get(h);
                let my_router = topo.nic_router(nic.id());
                let local_port = topo.local_port(topo.nic_local_index(nic.id()));
                match nic.active_injection_vc(h) {
                    Some(v) => {
                        g.add_edge(
                            outq_vertex(n, q),
                            vc_vertex(my_router.index(), local_port.index(), v as usize),
                        );
                    }
                    None => {
                        let pkt = mdd_router::PacketState {
                            msg: h,
                            mtype: head.mtype,
                            src: head.src,
                            dst: head.dst,
                            dst_router: topo.nic_router(head.dst),
                            crossed_dateline: 0,
                            injected_at: 0,
                        };
                        let mut vcs_buf = Vec::new();
                        sim.routing().injection_vcs(&pkt, &mut vcs_buf);
                        for v in vcs_buf {
                            g.add_edge(
                                outq_vertex(n, q),
                                vc_vertex(my_router.index(), local_port.index(), v as usize),
                            );
                        }
                    }
                }
            }
        }
    }
    g
}
