//! # mdd-core
//!
//! The simulator proper: wires the topology, the flit-level wormhole
//! network, the network interfaces, the traffic generators and the three
//! message-dependent deadlock handling schemes (SA / DR / PR) into a
//! cycle-accurate whole, and provides the load-sweep runner that produces
//! the paper's Burton-Normal-Form curves.
//!
//! ## Per-cycle order of operations
//!
//! 1. traffic generation (new original requests into per-node source
//!    queues),
//! 2. request issue (source queue → NIC output queue, gated by MSHRs,
//!    output space and reply preallocation),
//! 3. NIC endpoint work (sink terminating heads, memory-controller
//!    start/finish, detector update),
//! 4. scheme actions — DR deflections or the PR token/rescue state
//!    machine,
//! 5. NIC injection (one flit of link bandwidth per NIC),
//! 6. one network cycle (routing, VC allocation, switch, traversal,
//!    ejection into NIC queues).

#![warn(missing_docs)]

mod builder;
mod canon;
mod config;
mod endpoint;
mod preflight;
mod recovery;
mod schedule;
mod sim;
mod sweep;
mod validate;

pub use builder::{ConfigError, SimConfigBuilder};
pub use config::{SimConfig, SimResult};
pub use preflight::{analysis_config, min_safe_vcs, verify_config, verify_config_degraded};
pub use recovery::{EpisodeOrigin, EpisodeRecord, PrRecovery};
pub use sim::Simulator;
pub use sweep::{default_loads, run_curve_checked, run_point};
pub use validate::{build_waitfor_graph, deadlock_witness};

// Static verification verdicts surface through the builder's strict mode
// and the engine pre-flight; re-export the types so `mdd-core` callers
// can match on them without naming `mdd-verify` directly.
pub use mdd_verify::{CycleWitness, Verdict};

// Re-export the pieces callers need to assemble configurations, so that
// downstream crates (examples, benches) can depend on `mdd-core` alone.
pub use mdd_protocol::{PatternSpec, ProtocolSpec, QueueOrg};
pub use mdd_routing::{Scheme, SchemeConfigError};
pub use mdd_stats::{BnfCurve, BnfPoint};
pub use mdd_topology::{Topology, TopologyKind};
pub use mdd_traffic::DestPattern;

#[cfg(test)]
mod tests;
