//! Hierarchical idle-skip schedule over the NIC array.
//!
//! The simulator keeps, per NIC, the next cycle its endpoint/injection
//! ticks must execute (`u64::MAX` = fully inert). The original flat
//! `Vec<u64>` scan made every cycle cost O(num_nics) even on a quiescent
//! machine — the exact idle-structure tax the scale ladder measures. This
//! structure pairs the deadline array with a two-level occupancy bitmap
//! (one bit per *scheduled* NIC, a summary word per 64 bitmap words, the
//! same shape as the router wake set in `mdd-router`), so per-cycle walks
//! touch only NICs that have any future event at all.
//!
//! Exactness: a NIC without its bit set has deadline `u64::MAX`, which the
//! dense scan would also skip at every cycle, and bitmap iteration yields
//! ascending NIC order — the dense scan's order — so tick and injection
//! sequences are bit-identical to the flat scan.

/// Per-NIC next-due-cycle schedule with a two-level occupancy bitmap.
pub(crate) struct NicSchedule {
    /// Next cycle NIC `i` must tick; `u64::MAX` marks a fully inert NIC.
    next: Vec<u64>,
    /// Bit `i` set ⟺ `next[i] != u64::MAX`.
    bits: Vec<u64>,
    /// Bit `w` of word `s` set ⟺ `bits[s * 64 + w] != 0`.
    summary: Vec<u64>,
}

impl NicSchedule {
    /// A schedule over `n` NICs, all due at cycle 0 (everything awake —
    /// the state the dense scan starts from).
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        let mut bits = vec![u64::MAX; words];
        if !n.is_multiple_of(64) {
            bits[words - 1] = (1u64 << (n % 64)) - 1;
        }
        let mut summary = vec![0u64; words.div_ceil(64).max(1)];
        for (w, &word) in bits.iter().enumerate() {
            if word != 0 {
                summary[w / 64] |= 1 << (w % 64);
            }
        }
        NicSchedule {
            next: vec![0; n],
            bits,
            summary,
        }
    }

    /// NICs covered by the schedule.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Set NIC `i`'s next due cycle, maintaining the bitmap.
    #[inline]
    pub fn set(&mut self, i: usize, cycle: u64) {
        self.next[i] = cycle;
        let w = i / 64;
        if cycle == u64::MAX {
            self.bits[w] &= !(1 << (i % 64));
            if self.bits[w] == 0 {
                self.summary[w / 64] &= !(1 << (w % 64));
            }
        } else {
            self.bits[w] |= 1 << (i % 64);
            self.summary[w / 64] |= 1 << (w % 64);
        }
    }

    /// Make every NIC due at `cycle` (a PR rescue episode may have mutated
    /// any NIC, so the whole array wakes).
    pub fn wake_all(&mut self, cycle: u64) {
        let n = self.len();
        self.next.fill(cycle);
        self.bits.fill(u64::MAX);
        if !n.is_multiple_of(64) {
            let w = self.bits.len() - 1;
            self.bits[w] = (1u64 << (n % 64)) - 1;
        }
        for (w, &word) in self.bits.iter().enumerate() {
            if word != 0 {
                self.summary[w / 64] |= 1 << (w % 64);
            }
        }
    }

    /// Collect every NIC due at or before `cycle`, ascending, into `out`
    /// (cleared first). O(scheduled NICs), not O(all NICs).
    pub fn due_into(&self, cycle: u64, out: &mut Vec<u32>) {
        out.clear();
        for (s, &sw) in self.summary.iter().enumerate() {
            let mut sw = sw;
            while sw != 0 {
                let w = s * 64 + sw.trailing_zeros() as usize;
                sw &= sw - 1;
                let mut word = self.bits[w];
                while word != 0 {
                    let i = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if self.next[i] <= cycle {
                        out.push(i as u32);
                    }
                }
            }
        }
    }

    /// Collect every NIC in `[lo, hi)` due at or before `cycle`,
    /// ascending, *appending* to `out` (the caller clears). Concatenating
    /// the results over a partition of `[0, len)` in range order yields
    /// exactly [`NicSchedule::due_into`]'s list: both walk the same bitmap
    /// in ascending NIC order, this one clipped to a range. The sharded
    /// step uses this to assemble the due list per shard's NIC range.
    pub fn due_into_range(&self, cycle: u64, lo: u32, hi: u32, out: &mut Vec<u32>) {
        let (lo, hi) = (lo as usize, hi as usize);
        if lo >= hi {
            return;
        }
        // Walk only the bitmap words overlapping the range; mask off the
        // out-of-range bits of the boundary words.
        let w_lo = lo / 64;
        let w_hi = (hi - 1) / 64;
        for w in w_lo..=w_hi {
            let mut word = self.bits[w];
            if w == w_lo {
                word &= u64::MAX << (lo % 64);
            }
            if w == w_hi && !hi.is_multiple_of(64) {
                word &= (1u64 << (hi % 64)) - 1;
            }
            while word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                if self.next[i] <= cycle {
                    out.push(i as u32);
                }
            }
        }
    }

    /// Minimum due cycle over all scheduled NICs (`u64::MAX` when every
    /// NIC is inert). Unscheduled entries are `u64::MAX` and cannot be the
    /// minimum, so walking only set bits is exact.
    pub fn min_next(&self) -> u64 {
        let mut min = u64::MAX;
        for (s, &sw) in self.summary.iter().enumerate() {
            let mut sw = sw;
            while sw != 0 {
                let w = s * 64 + sw.trailing_zeros() as usize;
                sw &= sw - 1;
                let mut word = self.bits[w];
                while word != 0 {
                    let i = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    min = min.min(self.next[i]);
                }
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::NicSchedule;

    #[test]
    fn starts_all_due() {
        let s = NicSchedule::new(130);
        let mut due = Vec::new();
        s.due_into(0, &mut due);
        assert_eq!(due.len(), 130);
        assert_eq!(due, (0..130).collect::<Vec<_>>());
        assert_eq!(s.min_next(), 0);
    }

    #[test]
    fn set_and_clear_track_the_flat_array() {
        let n = 200;
        let mut s = NicSchedule::new(n);
        for i in 0..n {
            s.set(i, u64::MAX);
        }
        assert_eq!(s.min_next(), u64::MAX);
        s.set(137, 42);
        s.set(3, 7);
        s.set(199, 42);
        let mut due = Vec::new();
        s.due_into(42, &mut due);
        assert_eq!(due, vec![3, 137, 199]);
        s.due_into(41, &mut due);
        assert_eq!(due, vec![3]);
        assert_eq!(s.min_next(), 7);
        s.set(3, u64::MAX);
        assert_eq!(s.min_next(), 42);
    }

    #[test]
    fn range_concatenation_matches_full_walk() {
        let n = 200;
        let mut s = NicSchedule::new(n);
        for i in 0..n {
            s.set(i, u64::MAX);
        }
        for i in [0, 1, 63, 64, 65, 127, 128, 137, 199] {
            s.set(i, (i as u64) % 3);
        }
        let mut full = Vec::new();
        s.due_into(2, &mut full);
        for bounds in [vec![0, 200], vec![0, 100, 200], vec![0, 64, 128, 150, 200]] {
            let mut cat = Vec::new();
            for pair in bounds.windows(2) {
                s.due_into_range(2, pair[0], pair[1], &mut cat);
            }
            assert_eq!(cat, full);
        }
        // Empty and boundary-degenerate ranges contribute nothing.
        let mut none = Vec::new();
        s.due_into_range(2, 50, 50, &mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn wake_all_restores_full_occupancy() {
        let mut s = NicSchedule::new(70);
        for i in 0..70 {
            s.set(i, u64::MAX);
        }
        s.wake_all(9);
        let mut due = Vec::new();
        s.due_into(9, &mut due);
        assert_eq!(due.len(), 70);
        assert_eq!(s.min_next(), 9);
    }
}
