//! Validated construction of [`SimConfig`]: the builder and its errors.
//!
//! Historically every harness filled the bare `SimConfig` struct by
//! literal and the first sign of an invalid combination was a panic deep
//! inside the simulator. The builder moves that to construction time:
//! [`SimConfigBuilder::build`] returns `Result<SimConfig, ConfigError>`,
//! running every structural check plus the scheme feasibility probe (the
//! same `VcMap` construction [`Simulator::new`] performs), so an invalid
//! configuration never reaches a sweep. The struct fields stay public for
//! back-compatibility; [`SimConfig::validate`] applies the same checks to
//! a hand-filled struct.
//!
//! [`Simulator::new`]: crate::Simulator::new

use crate::config::SimConfig;
use mdd_protocol::{PatternSpec, QueueOrg};
use mdd_routing::{Scheme, SchemeConfigError, VcMap};
use mdd_traffic::DestPattern;
use std::sync::Arc;

/// Why a [`SimConfig`] cannot describe a runnable simulation.
#[derive(Clone, PartialEq, Debug)]
pub enum ConfigError {
    /// The radix vector is empty (a network needs at least one dimension).
    EmptyRadix,
    /// A per-dimension radix below 2 (dimension index, offending value).
    RadixTooSmall {
        /// Which dimension.
        dim: usize,
        /// The radix given for it.
        radix: u32,
    },
    /// More dimensions than the hop-geometry tables support
    /// ([`MAX_DIMS`](mdd_topology::MAX_DIMS)).
    TooManyDimensions {
        /// The number of dimensions requested.
        dims: usize,
    },
    /// The port·VC product exceeds the 128-slot occupancy masks: router
    /// input occupancy and output ownership are `u128` bitmasks indexed
    /// by `port * vcs + vc`, so `(2·dims + bristle) · vcs` must fit in
    /// 128 bits. Before this check, an oversized combination died on a
    /// debug assert deep in the fused pipeline pass (or silently
    /// truncated in release builds).
    VcBudgetTooLarge {
        /// Ports per router (`2·dims + bristle`).
        ports: usize,
        /// Virtual channels per physical link.
        vcs: u8,
        /// The resulting slot count (`ports · vcs`).
        slots: usize,
    },
    /// A `--topo`/`--radix` specification that does not parse as
    /// `KxK[xK...]` with positive integer radices.
    InvalidTopology {
        /// The offending specification string.
        spec: String,
    },
    /// Zero NICs per router.
    ZeroBristle,
    /// Zero virtual channels per physical link.
    ZeroVirtualChannels,
    /// Zero flit buffers per virtual channel.
    ZeroFlitBuffers,
    /// Zero-capacity endpoint message queues.
    ZeroQueueCapacity,
    /// Zero outstanding-transaction (MSHR) limit — no node could ever
    /// issue a request.
    ZeroMshrLimit,
    /// Zero endpoint detection time-out: the detector would declare every
    /// waiting message deadlocked on its first blocked cycle.
    ZeroDetectThreshold,
    /// Zero execution shards — at least one thread must run the network.
    ZeroShards,
    /// Applied load is negative, NaN or infinite.
    InvalidLoad {
        /// The offending value.
        load: f64,
    },
    /// The scheme cannot be configured with the requested virtual
    /// channels for this protocol/topology (the paper's infeasible
    /// figure cells, e.g. SA on a chain-4 protocol with 4 VCs).
    Scheme(SchemeConfigError),
    /// Strict mode ([`SimConfigBuilder::verify`]) ran the static
    /// deadlock-safety analysis and found a dependency cycle no
    /// configured mechanism can drain.
    StaticallyUnsafe {
        /// The rendered witness cycle (`mdd-verify`'s trace format).
        witness: String,
        /// The smallest per-link VC budget that would make this
        /// configuration safe, if one exists within the 128-slot router
        /// occupancy cap (from the minimal-VC synthesis probe) — the
        /// actionable half of the diagnostic.
        min_safe_vcs: Option<u8>,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyRadix => write!(f, "radix vector is empty"),
            ConfigError::RadixTooSmall { dim, radix } => {
                write!(f, "radix {radix} in dimension {dim} (minimum is 2)")
            }
            ConfigError::TooManyDimensions { dims } => write!(
                f,
                "{dims} dimensions exceed the supported maximum of {}",
                mdd_topology::MAX_DIMS
            ),
            ConfigError::VcBudgetTooLarge { ports, vcs, slots } => write!(
                f,
                "{ports} ports x {vcs} VCs = {slots} slots exceed the 128-bit \
                 router occupancy masks"
            ),
            ConfigError::InvalidTopology { spec } => {
                write!(f, "invalid topology spec {spec:?} (expected KxK[xK...], radices >= 2)")
            }
            ConfigError::ZeroBristle => write!(f, "bristle factor must be at least 1"),
            ConfigError::ZeroVirtualChannels => write!(f, "at least 1 virtual channel required"),
            ConfigError::ZeroFlitBuffers => write!(f, "at least 1 flit buffer per VC required"),
            ConfigError::ZeroQueueCapacity => write!(f, "endpoint queue capacity must be nonzero"),
            ConfigError::ZeroMshrLimit => write!(f, "MSHR limit must be nonzero"),
            ConfigError::ZeroDetectThreshold => {
                write!(f, "detection time-out must be at least 1 cycle")
            }
            ConfigError::ZeroShards => write!(f, "at least 1 execution shard required"),
            ConfigError::InvalidLoad { load } => {
                write!(f, "applied load {load} is not a finite non-negative number")
            }
            ConfigError::Scheme(e) => write!(f, "{e}"),
            ConfigError::StaticallyUnsafe { witness, min_safe_vcs } => {
                write!(
                    f,
                    "statically unsafe: a dependency cycle no configured mechanism \
                     can drain:\n{witness}"
                )?;
                match min_safe_vcs {
                    Some(n) => write!(f, "hint: {n} VCs per link would make this scheme safe"),
                    None => write!(
                        f,
                        "hint: no VC budget within the 128-slot router occupancy cap \
                         makes this scheme safe"
                    ),
                }
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Scheme(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemeConfigError> for ConfigError {
    fn from(e: SchemeConfigError) -> Self {
        ConfigError::Scheme(e)
    }
}

impl SimConfig {
    /// Check every structural invariant plus scheme feasibility (the same
    /// `VcMap` probe the simulator constructor runs), without building a
    /// network. `Ok(())` guarantees [`Simulator::new`] will not fail on
    /// this configuration.
    ///
    /// [`Simulator::new`]: crate::Simulator::new
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.radix.is_empty() {
            return Err(ConfigError::EmptyRadix);
        }
        if self.radix.len() > mdd_topology::MAX_DIMS {
            return Err(ConfigError::TooManyDimensions {
                dims: self.radix.len(),
            });
        }
        if let Some((dim, &radix)) = self.radix.iter().enumerate().find(|(_, &k)| k < 2) {
            return Err(ConfigError::RadixTooSmall { dim, radix });
        }
        if self.bristle == 0 {
            return Err(ConfigError::ZeroBristle);
        }
        if self.vcs == 0 {
            return Err(ConfigError::ZeroVirtualChannels);
        }
        let ports = 2 * self.radix.len() + self.bristle as usize;
        let slots = ports * self.vcs as usize;
        if slots > 128 {
            return Err(ConfigError::VcBudgetTooLarge {
                ports,
                vcs: self.vcs,
                slots,
            });
        }
        if self.flit_buf == 0 {
            return Err(ConfigError::ZeroFlitBuffers);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.mshr_limit == 0 {
            return Err(ConfigError::ZeroMshrLimit);
        }
        if self.detect_threshold == 0 {
            return Err(ConfigError::ZeroDetectThreshold);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if !self.load.is_finite() || self.load < 0.0 {
            return Err(ConfigError::InvalidLoad { load: self.load });
        }
        let escape = if self.mesh { 1 } else { 2 };
        VcMap::build(self.scheme, self.pattern.protocol(), self.vcs, escape)?;
        Ok(())
    }

    /// Start a builder seeded with the paper's Table 2 defaults
    /// (progressive recovery, PAT271, 4 VCs, zero applied load). Every
    /// field has a setter; [`SimConfigBuilder::build`] validates the
    /// result.
    ///
    /// ```
    /// use mdd_core::{Scheme, PatternSpec, SimConfig};
    ///
    /// let cfg = SimConfig::builder()
    ///     .scheme(Scheme::DeflectiveRecovery)
    ///     .pattern(PatternSpec::pat721())
    ///     .vcs(8)
    ///     .load(0.30)
    ///     .build()
    ///     .expect("feasible configuration");
    /// assert_eq!(cfg.vcs, 8);
    ///
    /// // SA needs E_m * 2 = 8 VCs for a chain-4 protocol on a torus:
    /// let err = SimConfig::builder()
    ///     .scheme(Scheme::StrictAvoidance { shared_adaptive: false })
    ///     .pattern(PatternSpec::pat721())
    ///     .vcs(4)
    ///     .build()
    ///     .unwrap_err();
    /// assert!(err.to_string().contains("virtual channels"));
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::paper_default(
                Scheme::ProgressiveRecovery,
                PatternSpec::pat271(),
                4,
                0.0,
            ),
            verify: false,
        }
    }

    /// Parse a `KxK[xK...]` topology spec (the `mddsim --topo` / `--radix`
    /// grammar) into a per-dimension radix vector, applying the same
    /// bounds [`SimConfig::validate`] enforces so a bad spec fails at the
    /// flag instead of deep in construction.
    ///
    /// ```
    /// use mdd_core::SimConfig;
    /// assert_eq!(SimConfig::parse_topo("64x64").unwrap(), vec![64, 64]);
    /// assert_eq!(SimConfig::parse_topo("8x8x8").unwrap(), vec![8, 8, 8]);
    /// assert!(SimConfig::parse_topo("8x").is_err());
    /// assert!(SimConfig::parse_topo("8x8x8x8x8").is_err());
    /// ```
    pub fn parse_topo(spec: &str) -> Result<Vec<u32>, ConfigError> {
        let bad = || ConfigError::InvalidTopology { spec: spec.to_string() };
        let radix: Vec<u32> = spec
            .split('x')
            .map(|part| part.parse::<u32>().map_err(|_| bad()))
            .collect::<Result<_, _>>()?;
        if radix.is_empty() || radix.iter().any(|&k| k < 2) {
            return Err(bad());
        }
        if radix.len() > mdd_topology::MAX_DIMS {
            return Err(ConfigError::TooManyDimensions { dims: radix.len() });
        }
        Ok(radix)
    }

    /// The scale-ladder rungs exercised end-to-end by the benches and CI:
    /// the paper's 8×8 baseline, 16×16, 64×64, and a 3D 8×8×8 torus.
    pub fn scale_ladder() -> [&'static [u32]; 4] {
        [&[8, 8], &[16, 16], &[64, 64], &[8, 8, 8]]
    }
}

/// Builder for [`SimConfig`] with validate-at-build semantics; obtained
/// from [`SimConfig::builder`].
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
    // Strict-mode flag. Deliberately NOT a `SimConfig` field: verification
    // is a property of how the config was constructed, not of what it
    // simulates, so it must stay out of the canonical content hash.
    verify: bool,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.cfg.$name = $name;
            self
        }
    };
}

impl SimConfigBuilder {
    /// The deadlock-handling scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// The transaction pattern (protocol + chain-length mix).
    pub fn pattern(mut self, pattern: PatternSpec) -> Self {
        self.cfg.pattern = Arc::new(pattern);
        self
    }

    /// The transaction pattern, shared.
    pub fn pattern_arc(mut self, pattern: Arc<PatternSpec>) -> Self {
        self.cfg.pattern = pattern;
        self
    }

    /// Per-dimension radices of the k-ary n-cube.
    pub fn radix(mut self, radix: &[u32]) -> Self {
        self.cfg.radix = radix.to_vec();
        self
    }

    /// Per-dimension radices from a `KxK[xK...]` spec string (the ladder
    /// preset grammar; see [`SimConfig::parse_topo`]).
    pub fn topo(self, spec: &str) -> Result<Self, ConfigError> {
        let radix = SimConfig::parse_topo(spec)?;
        Ok(self.radix(&radix))
    }

    /// Queue-organization override (`None` = scheme default).
    pub fn queue_org(mut self, org: Option<QueueOrg>) -> Self {
        self.cfg.queue_org = org;
        self
    }

    setter!(
        /// Mesh instead of torus.
        mesh: bool
    );
    setter!(
        /// NICs per router (bristling factor).
        bristle: u32
    );
    setter!(
        /// Virtual channels per physical link.
        vcs: u8
    );
    setter!(
        /// Flit buffers per virtual channel.
        flit_buf: u32
    );
    setter!(
        /// Endpoint message-queue capacity in messages.
        queue_capacity: u32
    );
    setter!(
        /// Memory-controller service time in cycles.
        service_time: u64
    );
    setter!(
        /// Outstanding-transaction limit per node.
        mshr_limit: u32
    );
    setter!(
        /// Endpoint detection time-out `T` in cycles.
        detect_threshold: u64
    );
    setter!(
        /// Router-side blocked-head time-out before Disha token capture.
        router_block_threshold: u64
    );
    setter!(
        /// Cycles per token tour hop.
        token_hop: u64
    );
    setter!(
        /// Cycles per recovery-lane ring hop.
        lane_hop: u64
    );
    setter!(
        /// Destination pattern for original requests.
        dest: DestPattern
    );
    setter!(
        /// Sparse event-driven traffic arrivals (geometric inter-arrival
        /// sampling; O(arrivals) generation — the scale-ladder regime).
        sparse_arrivals: bool
    );
    setter!(
        /// RNG seed.
        seed: u64
    );
    setter!(
        /// Warm-up cycles excluded from measurement.
        warmup: u64
    );
    setter!(
        /// Measured cycles.
        measure: u64
    );
    setter!(
        /// Applied load in flits/node/cycle.
        load: f64
    );
    setter!(
        /// CWG oracle period (`None` disables the oracle).
        cwg_interval: Option<u64>
    );
    setter!(
        /// Observability gauge-sampling period.
        obs_sample_every: u64
    );
    setter!(
        /// Execution shards for the per-cycle network phase (results are
        /// bit-identical at any count; excluded from the cache key).
        shards: u32
    );

    /// Set both simulation windows (warmup, then measured cycles) in one
    /// call.
    pub fn windows(mut self, warmup: u64, measure: u64) -> Self {
        self.cfg.warmup = warmup;
        self.cfg.measure = measure;
        self
    }

    /// Strict mode: in addition to the structural checks, [`build`] runs
    /// the full static deadlock-safety analysis (`mdd-verify`) and
    /// rejects any configuration classified `Unsafe` with
    /// [`ConfigError::StaticallyUnsafe`], witness included. A few
    /// milliseconds per build on the paper's 8x8 torus.
    ///
    /// ```
    /// use mdd_core::{PatternSpec, Scheme, SimConfig};
    /// let cfg = SimConfig::builder()
    ///     .scheme(Scheme::StrictAvoidance { shared_adaptive: false })
    ///     .pattern(PatternSpec::pat271())
    ///     .vcs(8)
    ///     .verify()
    ///     .build()
    ///     .expect("SA with full partitions is statically safe");
    /// assert_eq!(cfg.vcs, 8);
    /// ```
    ///
    /// [`build`]: SimConfigBuilder::build
    pub fn verify(mut self) -> Self {
        self.verify = true;
        self
    }

    /// Validate and produce the configuration. `Ok` guarantees the
    /// simulator constructor will accept it; with [`verify`] set, it
    /// additionally guarantees the configuration is not statically
    /// unsafe.
    ///
    /// [`verify`]: SimConfigBuilder::verify
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        if self.verify {
            let verdict = crate::preflight::verify_config(&self.cfg)?;
            if let mdd_verify::Verdict::Unsafe { witness } = verdict {
                return Err(ConfigError::StaticallyUnsafe {
                    witness: witness.rendered,
                    min_safe_vcs: crate::preflight::min_safe_vcs(&self.cfg).min_vcs,
                });
            }
        }
        Ok(self.cfg)
    }

    /// The configuration as currently set, *without* validation — for
    /// callers that deliberately construct infeasible configurations
    /// (e.g. tests of the error paths).
    pub fn build_unchecked(self) -> SimConfig {
        self.cfg
    }
}
