//! The cycle-accurate simulator.

use crate::config::{SimConfig, SimResult};
use crate::endpoint::{NicArray, NicShard};
use crate::recovery::PrRecovery;
use crate::schedule::NicSchedule;
use mdd_nic::{Nic, NicConfig, NicStats};
use mdd_protocol::{IdAlloc, MessageStore};
use mdd_router::{Network, ShardPlan};
use mdd_routing::{Scheme, SchemeConfigError, SchemeRouting, VcMap};
use mdd_topology::{NicId, Topology, TopologyKind};
use mdd_traffic::{SyntheticTraffic, TrafficSource};

/// One fully wired simulation instance.
pub struct Simulator {
    cfg: SimConfig,
    topo: Topology,
    net: Network,
    routing: SchemeRouting,
    nics: Vec<Nic>,
    /// Single owner of every live message; all queues and in-flight
    /// records hold handles into this slab.
    store: MessageStore,
    traffic: Box<dyn TrafficSource>,
    recovery: Option<PrRecovery>,
    ids: IdAlloc,
    cycle: u64,
    generation: bool,
    /// Idle-skip schedule: per NIC, the next cycle its endpoint/injection
    /// ticks must execute. `u64::MAX` marks a fully inert NIC; request
    /// issue, packet delivery and recovery activity rewind the entry so
    /// the NIC resumes ticking. While an entry exceeds the current cycle,
    /// both of that NIC's ticks are provably no-ops, so skipping them is
    /// bit-exact. A two-level occupancy bitmap over the scheduled entries
    /// keeps per-cycle walks O(scheduled NICs), not O(all NICs).
    nic_sched: NicSchedule,
    /// Router-range partition for the sharded network phase; `None` when
    /// `cfg.shards <= 1` (the fully sequential path). Results are
    /// bit-identical either way — the plan only changes which thread
    /// executes each router.
    shard_plan: Option<ShardPlan>,
    /// Scratch for draining the schedule's due set without holding a
    /// borrow across the tick calls.
    due_scratch: Vec<u32>,
    /// Scratch for the traffic source's non-empty-queue report.
    src_scratch: Vec<NicId>,
    cwg_checks: u64,
    cwg_deadlocked_checks: u64,
    /// Debug-build cross-check state: `Some(true)` once the static
    /// verifier has certified this configuration `ProvenFree`, computed
    /// lazily the first time an endpoint detector fires.
    #[cfg(debug_assertions)]
    certified_free: Option<bool>,
    /// Next cycle at which the certified-free cross-check may run again
    /// (throttles the CWG oracle to once per detection window).
    #[cfg(debug_assertions)]
    next_certified_check: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cfg", &self.cfg)
            .field("cycle", &self.cycle)
            .field("live_messages", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Build a simulator; fails if the scheme cannot be configured with
    /// the requested virtual channels (e.g. SA on a chain-4 protocol with
    /// 4 VCs — exactly the configurations the paper omits from Figure 8).
    pub fn new(cfg: SimConfig) -> Result<Self, SchemeConfigError> {
        let num_nics: u32 = cfg.radix.iter().product::<u32>() * cfg.bristle;
        let mut traffic = SyntheticTraffic::new(
            cfg.pattern.clone(),
            num_nics,
            cfg.load,
            cfg.dest,
            cfg.seed,
        );
        if cfg.sparse_arrivals {
            traffic = traffic.sparse_arrivals();
        }
        let traffic = Box::new(traffic);
        Self::with_traffic(cfg, traffic)
    }

    /// Build a simulator around a custom traffic source (e.g. the
    /// coherence-driven application workloads of Section 4.2).
    pub fn with_traffic(
        cfg: SimConfig,
        traffic: Box<dyn TrafficSource>,
    ) -> Result<Self, SchemeConfigError> {
        let escape = if cfg.mesh { 1 } else { 2 };
        let map = VcMap::build(cfg.scheme, cfg.pattern.protocol(), cfg.vcs, escape)?;
        Ok(Self::assemble(cfg, traffic, map))
    }

    /// Build a simulator even when the scheme's VC budget is infeasible
    /// for the protocol, substituting the best-effort *degraded* VC map
    /// ([`VcMap::build_degraded`] — merged partitions, truncated escape
    /// sets). The resulting network deliberately lacks the scheme's
    /// safety guarantee; it is the runtime counterpart of a static
    /// `Unsafe` classification, and exists so tests can demonstrate that
    /// configurations the verifier rejects genuinely deadlock.
    pub fn with_degraded_vcs(cfg: SimConfig) -> Self {
        let num_nics: u32 = cfg.radix.iter().product::<u32>() * cfg.bristle;
        let mut traffic = SyntheticTraffic::new(
            cfg.pattern.clone(),
            num_nics,
            cfg.load,
            cfg.dest,
            cfg.seed,
        );
        if cfg.sparse_arrivals {
            traffic = traffic.sparse_arrivals();
        }
        let traffic = Box::new(traffic);
        let escape = if cfg.mesh { 1 } else { 2 };
        let map = VcMap::build_degraded(cfg.scheme, cfg.pattern.protocol(), cfg.vcs, escape);
        Self::assemble(cfg, traffic, map)
    }

    /// Wire every component around an already-built VC map.
    fn assemble(cfg: SimConfig, traffic: Box<dyn TrafficSource>, map: VcMap) -> Self {
        let kind = if cfg.mesh {
            TopologyKind::Mesh
        } else {
            TopologyKind::Torus
        };
        let topo = Topology::new(kind, &cfg.radix, cfg.bristle);
        let routing = SchemeRouting::new(map);
        let net = Network::new(topo.clone(), cfg.vcs, cfg.flit_buf);
        let org = cfg.effective_queue_org();
        let nic_cfg = NicConfig {
            queue_capacity: cfg.queue_capacity,
            service_time: cfg.service_time,
            mshr_limit: cfg.mshr_limit,
            detect_threshold: cfg.detect_threshold,
            queue_org: org,
            // Reply preallocation is the Origin2000-style guarantee DR
            // needs on its shared reply network. SA is reply-safe by
            // construction (each type drains in its own partition) and PR
            // deliberately shares everything, so neither preallocates.
            preallocate_replies: matches!(cfg.scheme, Scheme::DeflectiveRecovery),
            preallocate_return_replies: matches!(cfg.scheme, Scheme::DeflectiveRecovery),
        };
        let mut nics: Vec<Nic> = topo
            .nics()
            .map(|n| Nic::new(n, nic_cfg, cfg.pattern.clone(), cfg.vcs))
            .collect();
        for nic in &mut nics {
            nic.measuring = false;
        }
        let recovery = match cfg.scheme {
            Scheme::ProgressiveRecovery => Some(PrRecovery::new(
                &topo,
                cfg.pattern.clone(),
                cfg.token_hop,
                cfg.lane_hop,
                cfg.router_block_threshold,
            )),
            _ => None,
        };
        let num_nics = nics.len();
        let shard_plan =
            (cfg.shards > 1).then(|| ShardPlan::new(topo.num_routers(), cfg.shards));
        Simulator {
            cfg,
            topo,
            net,
            routing,
            nics,
            store: MessageStore::new(),
            traffic,
            recovery,
            ids: IdAlloc::new(),
            cycle: 0,
            generation: true,
            nic_sched: NicSchedule::new(num_nics),
            shard_plan,
            due_scratch: Vec::new(),
            src_scratch: Vec::new(),
            cwg_checks: 0,
            cwg_deadlocked_checks: 0,
            #[cfg(debug_assertions)]
            certified_free: None,
            #[cfg(debug_assertions)]
            next_certified_check: 0,
        }
    }

    /// The configuration this simulator was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// CWG oracle statistics so far: `(checks, deadlocked_checks)`.
    /// Both are zero unless [`SimConfig::cwg_interval`] is set.
    pub fn cwg_stats(&self) -> (u64, u64) {
        (self.cwg_checks, self.cwg_deadlocked_checks)
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The network (read access, for validation and tests).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The routing function in use.
    pub fn routing(&self) -> &SchemeRouting {
        &self.routing
    }

    /// The NICs (read access).
    pub fn nics(&self) -> &[Nic] {
        &self.nics
    }

    /// The message store (read access, for validation and tests).
    pub fn store(&self) -> &MessageStore {
        &self.store
    }

    /// The PR recovery machinery, when the scheme is PR.
    pub fn recovery(&self) -> Option<&PrRecovery> {
        self.recovery.as_ref()
    }

    /// Mutable access to the PR recovery machinery (fault injection).
    pub fn recovery_mut(&mut self) -> Option<&mut PrRecovery> {
        self.recovery.as_mut()
    }

    /// Enable or disable traffic generation (used by the drain phase and
    /// by tests driving traffic manually).
    pub fn set_generation(&mut self, on: bool) {
        self.generation = on;
    }

    /// Toggle measurement on all NICs.
    pub fn set_measuring(&mut self, on: bool) {
        for nic in &mut self.nics {
            nic.measuring = on;
        }
    }

    /// Move requests from NIC `i`'s source queue into the NIC while it
    /// can accept them; a successful issue rewinds the NIC's idle-skip
    /// schedule to the current cycle.
    fn issue_from_source(&mut self, i: usize, c: u64) {
        let nic_id = NicId(i as u32);
        while let Some(head) = self.traffic.pending_head(nic_id) {
            if self.nics[i].can_issue_request(self.store.get(head).mtype) {
                let h = self.traffic.pop_pending(nic_id).expect("head exists");
                self.nics[i].issue_request(h, &self.store);
                self.nic_sched.set(i, c);
            } else {
                break;
            }
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let c = self.cycle;
        // 1. Traffic generation.
        if self.generation {
            self.traffic.tick(c, &mut self.ids, &mut self.store);
        }
        // 2. Request issue from source queues. A successful issue hands a
        // sleeping NIC new work, so it must tick from this cycle on. When
        // the source tracks queue occupancy, only NICs with queued
        // requests are visited (same set, same ascending order, as the
        // dense poll — NICs with empty queues are no-ops either way).
        let mut srcs = std::mem::take(&mut self.src_scratch);
        if self.traffic.pending_sources(&mut srcs) {
            for &nic in &srcs {
                self.issue_from_source(nic.index(), c);
            }
        } else {
            for i in 0..self.nics.len() {
                self.issue_from_source(i, c);
            }
        }
        self.src_scratch = srcs;
        // A PR rescue episode drives NIC state from the orchestrator
        // (deposits, MC preemptions), so idle-skip is suspended for its
        // duration: episodes are rare and short, the dense ticks there
        // are exactly what the pre-activity-scheduling code did.
        let episode_before = self.recovery.as_ref().is_some_and(PrRecovery::episode_active);
        // 3. Endpoint work. Skipped NICs have no queued messages and no
        // due memory-controller completion, making `tick` a no-op.
        let skipped = if episode_before {
            for i in 0..self.nics.len() {
                self.nics[i].tick(c, &mut self.ids, &mut self.store);
            }
            0
        } else {
            let mut due = std::mem::take(&mut self.due_scratch);
            // With a shard plan, assemble the due list from each shard's
            // NIC range (the ticks themselves still run sequentially
            // here: the message store and ID allocator have a single
            // owner). Range concatenation in shard order reproduces
            // `due_into`'s ascending list exactly, so the two collection
            // modes are bit-identical.
            if let Some(plan) = &self.shard_plan {
                due.clear();
                let b = self.cfg.bristle;
                for s in 0..plan.shards() {
                    let (lo, hi) = plan.range(s);
                    self.nic_sched.due_into_range(c, lo * b, hi * b, &mut due);
                }
            } else {
                self.nic_sched.due_into(c, &mut due);
            }
            for &i in &due {
                self.nics[i as usize].tick(c, &mut self.ids, &mut self.store);
            }
            let skipped = (self.nics.len() - due.len()) as u64;
            self.due_scratch = due;
            skipped
        };
        mdd_obs::counter_add(mdd_obs::CounterId::NicTicksSkipped, skipped);
        // 4. Scheme actions.
        match self.cfg.scheme {
            Scheme::DeflectiveRecovery => {
                for nic in &mut self.nics {
                    if nic.detection_fired(c) {
                        nic.try_deflect(c, &mut self.ids, &mut self.store);
                    }
                }
            }
            Scheme::ProgressiveRecovery => {
                let rec = self.recovery.as_mut().expect("PR has recovery state");
                rec.step(&mut self.net, &mut self.nics, &self.topo, c, &mut self.store);
            }
            Scheme::StrictAvoidance { .. } => {}
        }
        // An episode that was (or just became) active may have mutated
        // any NIC: wake the whole array for injection this cycle and a
        // dense tick next cycle; the per-NIC schedules rebuild below.
        let episode_after =
            episode_before || self.recovery.as_ref().is_some_and(PrRecovery::episode_active);
        if episode_after {
            self.nic_sched.wake_all(c);
        }
        // 5. Injection, then rebuild each executed NIC's schedule from
        // its post-cycle state. Nothing between the endpoint collection
        // and here touches the schedule (request issue precedes it;
        // deliveries happen in the network phase below) unless an episode
        // woke the whole array, so the endpoint due set is reused
        // verbatim in the common case.
        let mut due = std::mem::take(&mut self.due_scratch);
        if episode_after {
            self.nic_sched.due_into(c, &mut due);
        }
        for &i in &due {
            let i = i as usize;
            self.nics[i].injection_tick(&mut self.net, &self.routing, c, &self.store);
            self.nic_sched.set(i, self.nics[i].next_tick_cycle(c + 1));
        }
        self.due_scratch = due;
        // 6. Network cycle. With a shard plan, each shard gets exclusive
        // ownership of its router range's NICs; schedule wakes from
        // packet deliveries are deferred into per-shard lists and applied
        // here in shard order (nothing reads the schedule during the
        // network phase and `set(i, 0)` is order-insensitive across
        // distinct NICs, so this matches the sequential path exactly).
        if let Some(plan) = self.shard_plan.as_ref() {
            let bristle = self.cfg.bristle;
            let mut shards: Vec<NicShard> = Vec::with_capacity(plan.shards());
            let mut rest: &mut [Nic] = &mut self.nics;
            for s in 0..plan.shards() {
                let (lo, hi) = plan.range(s);
                let cnt = ((hi - lo) * bristle) as usize;
                let (mine, next) = std::mem::take(&mut rest).split_at_mut(cnt);
                rest = next;
                shards.push(NicShard {
                    store: &self.store,
                    nics: mine,
                    base: lo * bristle,
                    sched_sets: Vec::new(),
                });
            }
            self.net.step_sharded(c, &self.routing, plan, &mut shards);
            for sh in &shards {
                for &i in &sh.sched_sets {
                    self.nic_sched.set(i as usize, 0);
                }
            }
        } else {
            let mut ej = NicArray {
                store: &self.store,
                nics: &mut self.nics,
                sched: &mut self.nic_sched,
            };
            self.net.step(c, &self.routing, &mut ej);
        }
        self.cycle += 1;
        // Periodic observability gauges (cheap: one enabled check per
        // cycle, real sampling only every `obs_sample_every` cycles while
        // the global layer is installed).
        if mdd_obs::enabled() && self.cycle.is_multiple_of(self.cfg.obs_sample_every.max(1)) {
            self.sample_obs_gauges();
        }
        // Optional ground-truth oracle (FlexSim's CWG detection mode).
        if let Some(k) = self.cfg.cwg_interval {
            if self.cycle.is_multiple_of(k) {
                self.cwg_checks += 1;
                if crate::validate::build_waitfor_graph(self).has_deadlock() {
                    self.cwg_deadlocked_checks += 1;
                }
            }
        }
        // Debug cross-check (companion to the store-leak assertion in
        // `is_quiescent`): a configuration the static verifier certified
        // `ProvenFree` must never reach an oracle-confirmed deadlock.
        #[cfg(debug_assertions)]
        self.debug_check_certified_free(c);
    }

    /// Debug-build agreement check between the static verifier and the
    /// runtime machinery. The endpoint detector is timeout-based and can
    /// fire spuriously under plain congestion, so a firing alone proves
    /// nothing: the verdict is computed lazily on the first firing, and a
    /// panic is raised only when the CWG oracle *confirms* a knot in a
    /// configuration `mdd-verify` certified deadlock-free. Throttled to
    /// one oracle build per detection window.
    #[cfg(debug_assertions)]
    fn debug_check_certified_free(&mut self, c: u64) {
        if self.cycle < self.next_certified_check
            || !self.nics.iter().any(|n| n.detection_fired(c))
        {
            return;
        }
        self.next_certified_check = self.cycle + self.cfg.detect_threshold.max(1);
        if self.certified_free.is_none() {
            self.certified_free = Some(
                crate::preflight::verify_config(&self.cfg)
                    .is_ok_and(|v| v.is_proven_free()),
            );
        }
        if self.certified_free != Some(true) {
            return;
        }
        if crate::validate::build_waitfor_graph(self).has_deadlock() {
            panic!(
                "static verifier certified this configuration ProvenFree, but the \
                 CWG oracle confirms a deadlock at cycle {}:\n{}",
                self.cycle,
                crate::validate::deadlock_witness(self)
                    .unwrap_or_else(|| "(no witness)".into())
            );
        }
    }

    /// Sample the occupancy gauges into the global observability
    /// registry. Called on the configured period; also useful directly
    /// from tests that want a snapshot at an exact cycle.
    pub fn sample_obs_gauges(&self) {
        use mdd_obs::CounterId;
        mdd_obs::gauge_set(CounterId::NetFlitsInFlight, self.net.flits_in_network());
        mdd_obs::gauge_set(CounterId::ActiveRouters, self.net.active_routers() as u64);
        let dmb: u64 = self.nics.iter().map(|n| n.dmb_occupancy() as u64).sum();
        mdd_obs::gauge_set(CounterId::DmbOccupancy, dmb);
        let queued: u64 = self.nics.iter().map(|n| n.buffered_messages() as u64).sum();
        mdd_obs::gauge_set(CounterId::EndpointQueueOccupancy, queued);
        mdd_obs::gauge_set(CounterId::RoutersMaterialized, self.net.routers_materialized());
        mdd_obs::gauge_set(CounterId::RouterStateBytes, self.net.router_state_bytes());
        if let Some(rec) = &self.recovery {
            mdd_obs::gauge_set(CounterId::DbLaneOccupancy, rec.lane_busy() as u64);
        }
        mdd_obs::gauge_set(
            CounterId::ShardsActive,
            self.shard_plan.as_ref().map_or(1, |p| p.shards() as u64),
        );
    }

    /// Run `n` cycles, fast-forwarding the clock over fully quiescent
    /// stretches (no router work, no NIC due, no traffic arrival, no
    /// recovery event): the executed steps and every piece of observable
    /// state are bit-identical to stepping through the skipped cycles one
    /// by one.
    pub fn run_cycles(&mut self, n: u64) {
        let end = self.cycle.saturating_add(n);
        while self.cycle < end {
            if let Some(target) = self.fast_forward_target(end) {
                let jumped = target - self.cycle;
                // On a quiescent system the periodic gauge samples are
                // identical at every skipped sampling point; take at most
                // one to keep the last-sampled values what the dense
                // schedule would have left.
                let sample = mdd_obs::enabled() && {
                    let p = self.cfg.obs_sample_every.max(1);
                    target / p > self.cycle / p
                };
                self.cycle = target;
                mdd_obs::counter_add(mdd_obs::CounterId::CyclesFastForwarded, jumped);
                if sample {
                    self.sample_obs_gauges();
                }
                continue;
            }
            self.step();
        }
    }

    /// The cycle the clock may jump to right now (exclusive of any work),
    /// capped at `end`, or `None` if some component needs the very next
    /// cycle. Jumping is legal only when every per-cycle phase is a
    /// provable no-op for each skipped cycle: the network wake-list is
    /// empty, source queues are empty with no arrival due (a rate-zero or
    /// disabled source), every NIC sleeps past the target, and the
    /// recovery token's next hop is not skipped over. The CWG oracle
    /// cadence additionally caps the jump so scheduled oracle checks
    /// still execute on schedule.
    fn fast_forward_target(&self, end: u64) -> Option<u64> {
        let c = self.cycle;
        if !self.net.is_idle() || self.traffic.backlog() != 0 {
            return None;
        }
        let mut target = end;
        if self.generation {
            target = target.min(self.traffic.next_arrival_cycle(c));
        }
        target = target.min(self.nic_sched.min_next());
        if let Some(rec) = &self.recovery {
            // An active episode needs every cycle; otherwise the token's
            // next hop (or watchdog firing) bounds the jump.
            target = target.min(rec.next_event_cycle()?);
        }
        if let Some(k) = self.cfg.cwg_interval {
            // The oracle runs when the clock *reaches* a multiple of k;
            // jump at most to the cycle before the next one so that step
            // still executes.
            let k = k.max(1);
            target = target.min((c / k + 1) * k - 1);
        }
        (target > c).then_some(target)
    }

    /// Run the configured warm-up then measurement window and collect the
    /// result.
    pub fn run(&mut self) -> SimResult {
        self.set_measuring(false);
        self.run_cycles(self.cfg.warmup);
        self.set_measuring(true);
        let net0 = self.net.counters();
        let gen0 = self.traffic.generated();
        let rec0 = self
            .recovery
            .as_ref()
            .map_or(0, |r| r.router_captures);
        self.run_cycles(self.cfg.measure);
        let net1 = self.net.counters();
        let rec1 = self
            .recovery
            .as_ref()
            .map_or(0, |r| r.router_captures);
        self.set_measuring(false);

        let agg = self.aggregate_stats();
        let util = self.net.vc_utilization(self.cycle.max(1));
        let nodes = self.topo.num_nics() as f64;
        let window = self.cfg.measure as f64;
        SimResult {
            applied_load: self.cfg.load,
            throughput: (net1.flits_delivered - net0.flits_delivered) as f64 / nodes / window,
            avg_latency: agg.msg_latency.mean(),
            latency_quantiles: agg.msg_latency_quantiles.estimates(),
            messages_delivered: agg.messages_consumed,
            transactions: agg.transactions_completed,
            deadlocks: agg.deadlocks_detected,
            router_rescues: rec1 - rec0,
            deflections: agg.deflections,
            rescues: agg.rescues,
            generated: self.traffic.generated() - gen0,
            mc_utilization: agg.mc_busy_cycles as f64
                / (nodes * self.cycle.max(1) as f64),
            cwg_checks: self.cwg_checks,
            cwg_deadlocked_checks: self.cwg_deadlocked_checks,
            vc_util_mean: util.0,
            vc_util_max: util.1,
            vc_util_cv: util.2,
            obs: mdd_obs::enabled().then(mdd_obs::ObsReport::capture),
        }
    }

    /// Stop generating new traffic and run until the system is empty (all
    /// transactions complete) or `max_cycles` elapse. Returns true if the
    /// system drained — the liveness check used by tests: under every
    /// scheme, disabling the source must eventually empty the network.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        self.set_generation(false);
        let start = self.cycle;
        while self.cycle - start < max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }

    /// True when no messages exist anywhere in the system (source queues
    /// excluded — check only meaningful after `set_generation(false)` and
    /// once source backlogs are consumed).
    pub fn is_quiescent(&self) -> bool {
        let quiet = self.traffic.backlog() == 0
            && self.net.flits_in_network() == 0
            && self.net.packets().is_empty()
            && self.nics.iter().all(|n| n.buffered_messages() == 0)
            && self
                .recovery
                .as_ref()
                .is_none_or(|r| !r.episode_active());
        // Single-ownership invariant: with nothing queued or in flight
        // anywhere, every slab slot must have been consumed.
        debug_assert!(
            !quiet || self.store.is_empty(),
            "quiescent system leaked {} message(s) in the store",
            self.store.len()
        );
        quiet
    }

    /// Aggregate NIC statistics, merged in linear NIC order. The Welford
    /// merge is not associative in floating point, so aggregation always
    /// goes through [`NicStats::merge_all`]'s ordered seam — never
    /// through per-shard partials — keeping results bit-identical at any
    /// shard count.
    pub fn aggregate_stats(&self) -> NicStats {
        NicStats::merge_all(self.nics.iter().map(|n| &n.stats))
    }

    /// Total messages the traffic source has generated.
    pub fn generated(&self) -> u64 {
        self.traffic.generated()
    }

    /// Mutable access to the ID allocator (for tests that hand-craft
    /// messages).
    pub fn ids_mut(&mut self) -> &mut IdAlloc {
        &mut self.ids
    }
}
