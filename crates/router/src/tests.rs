//! Unit tests for the wormhole transport substrate.

use crate::*;
use mdd_protocol::{Message, MessageId, MessageStore, MsgHandle, MsgType, ShapeId, TransactionId};
use mdd_topology::{MinimalHops, NicId, NodeId, Topology, TopologyKind};

/// Minimal dimension-order routing with dateline classes on VCs {0,1},
/// enough to exercise the transport machinery.
struct TestDor;

impl Routing for TestDor {
    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        pkt: &PacketState,
        _hint: u64,
        out: &mut Vec<RouteCandidate>,
    ) {
        if node == pkt.dst_router {
            let local = topo.nic_local_index(pkt.dst);
            out.push(RouteCandidate {
                port: topo.local_port(local),
                vc: 0,
            });
            return;
        }
        let mh = MinimalHops::new(topo, node, pkt.dst_router);
        let d = mh.first_unaligned().expect("not at destination");
        let dir = mh.dim(d).dor_direction().unwrap();
        let class = (pkt.crossed_dateline >> d) & 1;
        out.push(RouteCandidate {
            port: topo.port(d, dir),
            vc: class,
        });
    }

    fn injection_vcs(&self, _pkt: &PacketState, out: &mut Vec<u8>) {
        out.push(0);
    }
}

fn msg(id: u64, src: u32, dst: u32, len: u32) -> Message {
    Message {
        id: MessageId(id),
        txn: TransactionId(id),
        mtype: MsgType(0),
        shape: ShapeId(0),
        chain_pos: 0,
        src: NicId(src),
        dst: NicId(dst),
        requester: NicId(src),
        home: NicId(dst),
        owner: NicId(dst),
        length_flits: len,
        created: 0,
        is_backoff: false,
        rescued: false,
        sharers: 0,
    }
}

/// Drive `net` until idle or `max` cycles. Each source NIC injects its
/// messages serially (one packet at a time on VC 0, as a real NIC does —
/// flits of distinct packets must never interleave within one VC).
fn run(
    net: &mut Network,
    store: &mut MessageStore,
    msgs: Vec<Message>,
    ej: &mut dyn EjectControl,
    max: u64,
) -> u64 {
    use std::collections::HashMap;
    let mut per_nic: HashMap<u32, Vec<(MsgHandle, u32)>> = HashMap::new();
    for m in msgs {
        let src = m.src;
        let h = store.insert(m);
        net.begin_packet(h, store.get(h), 0);
        per_nic.entry(src.0).or_default().push((h, 0));
    }
    let mut cycle = 0;
    while cycle < max {
        for queue in per_nic.values_mut() {
            let Some((h, sent)) = queue.first_mut() else {
                continue;
            };
            let m = store.get(*h);
            if net.injection_free(m.src, 0) > 0 {
                let ok = net.inject_flit(
                    m.src,
                    0,
                    Flit {
                        msg: *h,
                        seq: *sent,
                        is_tail: *sent + 1 == m.length_flits,
                    },
                );
                if ok {
                    *sent += 1;
                    if *sent == m.length_flits {
                        queue.remove(0);
                    }
                }
            }
        }
        net.step(cycle, &TestDor, ej);
        cycle += 1;
        let all_sent = per_nic.values().all(Vec::is_empty);
        if all_sent && net.flits_in_network() == 0 {
            break;
        }
    }
    cycle
}

fn torus44() -> Network {
    Network::new(Topology::new(TopologyKind::Torus, &[4, 4], 1), 2, 2)
}

#[test]
fn single_packet_delivered_to_correct_nic() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = AcceptAll::default();
    let m = msg(1, 0, 5, 4);
    let cycles = run(&mut net, &mut store, vec![m], &mut ej, 200);
    assert_eq!(ej.delivered.len(), 1);
    let (nic, h, _) = ej.delivered[0];
    assert_eq!(nic, NicId(5));
    assert_eq!(store.get(h).id, MessageId(1));
    assert!(cycles < 60, "short packet should arrive quickly, took {cycles}");
    assert_eq!(net.counters().packets_delivered, 1);
    assert_eq!(net.counters().flits_delivered, 4);
    assert!(net.packets().is_empty());
}

#[test]
fn latency_scales_with_distance_plus_length() {
    // On an idle network, tail delivery time ≈ injection + per-hop routing
    // pipeline + streaming of the remaining flits.
    let topo = Topology::new(TopologyKind::Torus, &[8, 8], 1);
    let mut net = Network::new(topo, 2, 2);
    let mut store = MessageStore::new();
    let mut ej = AcceptAll::default();
    let m = msg(1, 0, 3, 20); // 3 hops in dim 0
    let cycles = run(&mut net, &mut store, vec![m], &mut ej, 400);
    // Lower bound: 20 flits serialized + 3 hops.
    assert!(cycles >= 23, "impossibly fast: {cycles}");
    assert!(cycles <= 60, "idle-network delivery too slow: {cycles}");
}

#[test]
fn many_packets_conserved_and_delivered() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = AcceptAll::default();
    let msgs: Vec<Message> = (0..32)
        .map(|i| msg(i, (i % 16) as u32, ((i * 7 + 3) % 16) as u32, 4 + (i as u32 % 3) * 8))
        .collect();
    let total_flits: u64 = msgs.iter().map(|m| m.length_flits as u64).sum();
    run(&mut net, &mut store, msgs, &mut ej, 5_000);
    assert_eq!(ej.delivered.len(), 32, "all packets must arrive");
    assert_eq!(net.counters().flits_delivered, total_flits);
    assert_eq!(net.counters().flits_injected, total_flits);
    assert_eq!(net.flits_in_network(), 0);
}

#[test]
fn self_delivery_via_local_port() {
    // Destination NIC on the same router: the packet enters and immediately
    // ejects without using network links.
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = AcceptAll::default();
    run(&mut net, &mut store, vec![msg(1, 3, 3, 4)], &mut ej, 100);
    assert_eq!(ej.delivered.len(), 1);
}

/// Ejection refusal backpressures into the network and the head is flagged
/// as blocked; releasing the gate drains everything.
struct GateUntil {
    open_at: u64,
    inner: AcceptAll,
}

impl EjectControl for GateUntil {
    fn can_accept(&mut self, _nic: NicId, _msg: MsgHandle, cycle: u64) -> bool {
        cycle >= self.open_at
    }
    fn deliver_flit(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) {
        self.inner.deliver_flit(nic, msg, cycle);
    }
    fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, injected_at: u64, cycle: u64) {
        self.inner.deliver_packet(nic, msg, injected_at, cycle);
    }
}

#[test]
fn ejection_gating_blocks_then_drains() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = GateUntil {
        open_at: 120,
        inner: AcceptAll::default(),
    };
    let cycles = run(&mut net, &mut store, vec![msg(1, 0, 5, 4)], &mut ej, 500);
    assert_eq!(ej.inner.delivered.len(), 1);
    assert!(cycles > 120, "packet cannot finish before the gate opens");
}

#[test]
fn blocked_heads_flagged_after_threshold() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = GateUntil {
        open_at: u64::MAX,
        inner: AcceptAll::default(),
    };
    let h = store.insert(msg(1, 0, 5, 4));
    net.begin_packet(h, store.get(h), 0);
    let mut sent = 0;
    for cycle in 0..100 {
        if sent < 4 && net.injection_free(NicId(0), 0) > 0 {
            let ok = net.inject_flit(
                NicId(0),
                0,
                Flit {
                    msg: h,
                    seq: sent,
                    is_tail: sent == 3,
                },
            );
            if ok {
                sent += 1;
            }
        }
        net.step(cycle, &TestDor, &mut ej);
    }
    let mut flagged = Vec::new();
    net.blocked_heads_into(25, 100, &mut flagged);
    assert_eq!(flagged.len(), 1, "the head must be flagged as blocked");
    let (node, fh) = flagged[0];
    assert_eq!(fh, h);
    assert_eq!(store.get(fh).id, MessageId(1));
    // Head should be blocked at the destination router awaiting ejection.
    assert_eq!(node, net.topo().nic_router(NicId(5)));
    // Short threshold check is monotone (scratch vector is reusable).
    net.blocked_heads_into(1000, 100, &mut flagged);
    assert_eq!(flagged.len(), 0);
}

#[test]
fn extraction_reclaims_buffers_and_restores_credits() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = GateUntil {
        open_at: u64::MAX,
        inner: AcceptAll::default(),
    };
    // Long packet wedges across several routers against a closed gate.
    let h = store.insert(msg(1, 0, 2, 12));
    net.begin_packet(h, store.get(h), 0);
    let mut sent = 0u32;
    for cycle in 0..60 {
        if sent < 12
            && net.injection_free(NicId(0), 0) > 0
            && net.inject_flit(
                NicId(0),
                0,
                Flit {
                    msg: h,
                    seq: sent,
                    is_tail: sent == 11,
                },
            )
        {
            sent += 1;
        }
        net.step(cycle, &TestDor, &mut ej);
    }
    let in_net = net.flits_in_network();
    assert!(in_net > 0, "packet must be wedged in network buffers");
    let ex = net.extract_packet(h).expect("packet in flight");
    assert_eq!(ex.flits_in_network as u64, in_net);
    assert_eq!(ex.msg, h);
    assert_eq!(store.get(ex.msg).id, MessageId(1));
    assert_eq!(ex.head_router, net.topo().nic_router(NicId(2)));
    assert_eq!(net.flits_in_network(), 0);
    assert!(net.packets().is_empty());
    // The network must be fully usable afterwards: run fresh traffic
    // through the same links and VCs.
    let mut ej2 = AcceptAll::default();
    run(
        &mut net,
        &mut store,
        vec![msg(2, 0, 2, 12), msg(3, 1, 2, 4)],
        &mut ej2,
        500,
    );
    assert_eq!(ej2.delivered.len(), 2, "network must be clean after extraction");
}

#[test]
fn extract_unknown_packet_is_none() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    // A live message that was never injected is not in the packet table.
    let h = store.insert(msg(99, 0, 5, 4));
    assert!(net.extract_packet(h).is_none());
}

#[test]
fn wormhole_vc_exclusivity() {
    // Two long packets from different sources crossing the same router
    // column must both arrive (one waits for the VC, no interleaving
    // corruption).
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = AcceptAll::default();
    let a = msg(1, 0, 2, 16);
    let b = msg(2, 4, 2, 16); // different row, same destination column
    run(&mut net, &mut store, vec![a, b], &mut ej, 2_000);
    assert_eq!(ej.delivered.len(), 2);
}

#[test]
fn injection_vc_idle_tracks_tails() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    assert!(net.injection_vc_idle(NicId(0), 0));
    let h = store.insert(msg(1, 0, 5, 2));
    net.begin_packet(h, store.get(h), 0);
    net.inject_flit(
        NicId(0),
        0,
        Flit {
            msg: h,
            seq: 0,
            is_tail: false,
        },
    );
    assert!(!net.injection_vc_idle(NicId(0), 0), "mid-packet: not idle");
    net.inject_flit(
        NicId(0),
        0,
        Flit {
            msg: h,
            seq: 1,
            is_tail: true,
        },
    );
    assert!(net.injection_vc_idle(NicId(0), 0), "tail buffered: idle again");
}

#[test]
fn dateline_bits_set_on_wrap() {
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
    let mut net = Network::new(topo, 2, 2);
    let mut store = MessageStore::new();
    let mut ej = AcceptAll::default();
    // 0 -> 3 in dim 0: minimal route is Minus through the wraparound.
    let h = store.insert(msg(1, 0, 3, 6));
    net.begin_packet(h, store.get(h), 0);
    let mut sent = 0u32;
    let mut saw_crossed = false;
    for cycle in 0..100 {
        if sent < 6
            && net.injection_free(NicId(0), 0) > 0
            && net.inject_flit(
                NicId(0),
                0,
                Flit {
                    msg: h,
                    seq: sent,
                    is_tail: sent == 5,
                },
            )
        {
            sent += 1;
        }
        net.step(cycle, &TestDor, &mut ej);
        if let Some(pkt) = net.packets().get(h) {
            saw_crossed |= pkt.crossed_dateline & 1 != 0;
        }
    }
    assert_eq!(ej.delivered.len(), 1);
    assert!(saw_crossed, "wraparound traversal must set the dateline bit");
}

#[test]
fn hard_reset_clears_everything() {
    let mut net = torus44();
    let mut store = MessageStore::new();
    let mut ej = GateUntil {
        open_at: u64::MAX,
        inner: AcceptAll::default(),
    };
    let h = store.insert(msg(1, 0, 5, 8));
    net.begin_packet(h, store.get(h), 0);
    for cycle in 0..30 {
        if net.injection_free(NicId(0), 0) > 0 {
            let seq = net.counters().flits_injected as u32;
            if seq < 8 {
                net.inject_flit(
                    NicId(0),
                    0,
                    Flit {
                        msg: h,
                        seq,
                        is_tail: seq == 7,
                    },
                );
            }
        }
        net.step(cycle, &TestDor, &mut ej);
    }
    assert!(net.flits_in_network() > 0);
    net.hard_reset();
    assert_eq!(net.flits_in_network(), 0);
    assert!(net.packets().is_empty());
    // Reusable after reset.
    let mut ej2 = AcceptAll::default();
    run(&mut net, &mut store, vec![msg(9, 1, 2, 4)], &mut ej2, 200);
    assert_eq!(ej2.delivered.len(), 1);
}


// ---------------------------------------------------------------------
// Randomized stress properties.
// ---------------------------------------------------------------------

mod stress {
    use super::*;
    use proptest::prelude::*;

    /// Random many-packet workloads on random torus sizes: every packet is
    /// delivered exactly once to the right NIC, flits are conserved, and
    /// each packet's flits arrive in order (wormhole never interleaves or
    /// reorders a packet's own flits).
    #[derive(Default)]
    struct OrderCheck {
        body_flits: std::collections::HashMap<u32, u32>,
        delivered: Vec<(NicId, MsgHandle, u32)>,
    }

    impl EjectControl for OrderCheck {
        fn can_accept(&mut self, _n: NicId, _m: MsgHandle, _c: u64) -> bool {
            true
        }
        fn deliver_flit(&mut self, _n: NicId, msg: MsgHandle, _c: u64) {
            // deliver_flit carries non-tail flits; just count — the tail
            // check (count must equal len-1 at tail) happens post-run.
            *self.body_flits.entry(msg.slot()).or_insert(0) += 1;
        }
        fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, _i: u64, _c: u64) {
            let body = self.body_flits.remove(&msg.slot()).unwrap_or(0);
            self.delivered.push((nic, msg, body));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn random_traffic_conserved(k in 2u32..6,
                                    n_msgs in 1usize..40,
                                    seed in 0u64..10_000) {
            let topo = Topology::new(TopologyKind::Torus, &[k, k], 1);
            let n = topo.num_nics();
            let mut net = Network::new(topo, 2, 2);
            let mut store = MessageStore::new();
            // Simple deterministic PRNG for message parameters.
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut rnd = move |m: u32| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % m
            };
            let msgs: Vec<Message> = (0..n_msgs)
                .map(|i| {
                    let src = rnd(n);
                    let mut dst = rnd(n);
                    if dst == src {
                        dst = (dst + 1) % n;
                    }
                    msg(i as u64, src, dst, 1 + rnd(24))
                })
                .collect();
            let total_flits: u64 = msgs.iter().map(|m| m.length_flits as u64).sum();
            let expect: Vec<(u32, u64)> =
                msgs.iter().map(|m| (m.dst.0, m.id.0)).collect();
            let mut ej = OrderCheck::default();
            run(&mut net, &mut store, msgs, &mut ej, 60_000);
            for (_, h, body) in &ej.delivered {
                prop_assert_eq!(body + 1, store.get(*h).length_flits,
                                "flit count mismatch at some tail");
            }
            prop_assert_eq!(ej.delivered.len(), n_msgs, "every packet delivered");
            prop_assert_eq!(net.counters().flits_delivered, total_flits);
            prop_assert_eq!(net.flits_in_network(), 0);
            // Delivered to the right NICs (as multiset).
            let mut got: Vec<(u32, u64)> = ej
                .delivered
                .iter()
                .map(|(nic, h, _)| (nic.0, store.get(*h).id.0))
                .collect();
            let mut want = expect;
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Credits never exceed buffer depth and ownership is exclusive,
        /// sampled mid-flight under random load.
        #[test]
        fn credit_and_ownership_invariants(seed in 0u64..5_000) {
            let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
            let mut net = Network::new(topo, 2, 2);
            let mut store = MessageStore::new();
            let mut x = seed.wrapping_add(7);
            let mut rnd = move |m: u32| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                ((x >> 33) as u32) % m
            };
            let msgs: Vec<Message> = (0..24)
                .map(|i| {
                    let src = rnd(16);
                    let mut dst = rnd(16);
                    if dst == src { dst = (dst + 1) % 16; }
                    msg(i as u64, src, dst, 4 + rnd(16))
                })
                .collect();
            // Drive manually so we can inspect between cycles.
            use std::collections::HashMap;
            let mut per_nic: HashMap<u32, Vec<(MsgHandle, u32)>> = HashMap::new();
            for m in msgs {
                let src = m.src;
                let h = store.insert(m);
                net.begin_packet(h, store.get(h), 0);
                per_nic.entry(src.0).or_default().push((h, 0));
            }
            let mut ej = AcceptAll::default();
            for cycle in 0..400u64 {
                for q in per_nic.values_mut() {
                    let Some((h, sent)) = q.first_mut() else { continue };
                    let m = store.get(*h);
                    if net.injection_free(m.src, 0) > 0 {
                        let f = Flit { msg: *h, seq: *sent,
                                       is_tail: *sent + 1 == m.length_flits };
                        if net.inject_flit(m.src, 0, f) {
                            *sent += 1;
                            if *sent == m.length_flits { q.remove(0); }
                        }
                    }
                }
                net.step(cycle, &TestDor, &mut ej);
                if cycle % 37 == 0 {
                    for node in net.topo().routers() {
                        let router = net.router(node);
                        for p in 0..router.ports() {
                            for v in 0..router.vcs() {
                                let ovc = router.out_vc(mdd_topology::PortId(p as u8), v);
                                prop_assert!(ovc.credits <= net.buf_depth());
                            }
                        }
                    }
                }
            }
        }
    }
}

mod sharded {
    use super::*;
    use proptest::prelude::*;

    /// The plan partitions `[0, n)` into contiguous, word-aligned ranges
    /// that cover every router exactly once, at any shard count —
    /// including counts exceeding the wake-set word count, where trailing
    /// shards degenerate to empty ranges.
    #[test]
    fn shard_plan_partitions_exactly() {
        for n in [1u32, 63, 64, 65, 256, 300, 4096] {
            for shards in [1u32, 2, 3, 4, 7, 16, 64] {
                let plan = ShardPlan::new(n, shards);
                assert_eq!(plan.shards(), shards as usize);
                assert_eq!(plan.num_routers(), n, "n={n} shards={shards}");
                let mut covered = 0u32;
                for s in 0..plan.shards() {
                    let (lo, hi) = plan.range(s);
                    assert_eq!(lo, covered, "ranges must be contiguous");
                    assert!(hi >= lo);
                    // Interior boundaries land on wake-set word edges so a
                    // shard's active_bits slice is whole words.
                    if hi < n {
                        assert_eq!(hi % 64, 0, "n={n} shards={shards} s={s}");
                    }
                    for r in lo..hi {
                        assert_eq!(plan.shard_of(r), s, "router {r}");
                    }
                    covered = hi;
                }
                assert_eq!(covered, n, "every router covered");
            }
        }
    }

    /// End-state twin: the same workload driven through `step_sharded`
    /// at 2 and 4 shards finishes with counters, deliveries and residual
    /// network state identical to the sequential `step` run. (Debug
    /// builds additionally shadow-check every sharded cycle against the
    /// phased reference pass, so a mid-run divergence panics long before
    /// this final comparison.)
    fn run_sharded(
        net: &mut Network,
        store: &mut MessageStore,
        msgs: Vec<Message>,
        shards: u32,
        max: u64,
    ) -> (Vec<(u32, u64, u64)>, u64) {
        use std::collections::HashMap;
        let plan = ShardPlan::new(net.topo().num_routers(), shards);
        let mut ejs: Vec<AcceptAll> = (0..plan.shards()).map(|_| AcceptAll::default()).collect();
        let mut per_nic: HashMap<u32, Vec<(MsgHandle, u32)>> = HashMap::new();
        for m in msgs {
            let src = m.src;
            let h = store.insert(m);
            net.begin_packet(h, store.get(h), 0);
            per_nic.entry(src.0).or_default().push((h, 0));
        }
        let mut cycle = 0;
        while cycle < max {
            for queue in per_nic.values_mut() {
                let Some((h, sent)) = queue.first_mut() else {
                    continue;
                };
                let m = store.get(*h);
                if net.injection_free(m.src, 0) > 0 {
                    let f = Flit {
                        msg: *h,
                        seq: *sent,
                        is_tail: *sent + 1 == m.length_flits,
                    };
                    if net.inject_flit(m.src, 0, f) {
                        *sent += 1;
                        if *sent == m.length_flits {
                            queue.remove(0);
                        }
                    }
                }
            }
            net.step_sharded(cycle, &TestDor, &plan, &mut ejs);
            cycle += 1;
            if per_nic.values().all(Vec::is_empty) && net.flits_in_network() == 0 {
                break;
            }
        }
        let mut delivered: Vec<(u32, u64, u64)> = ejs
            .iter()
            .flat_map(|e| e.delivered.iter())
            .map(|&(nic, h, c)| (nic.0, store.get(h).id.0, c))
            .collect();
        delivered.sort_unstable();
        (delivered, cycle)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn sharded_step_matches_sequential(k in 3u32..9,
                                           n_msgs in 1usize..48,
                                           seed in 0u64..10_000) {
            let topo = Topology::new(TopologyKind::Torus, &[k, k], 1);
            let n = topo.num_nics();
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(3);
            let mut rnd = move |m: u32| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % m
            };
            let msgs: Vec<Message> = (0..n_msgs)
                .map(|i| {
                    let src = rnd(n);
                    let mut dst = rnd(n);
                    if dst == src {
                        dst = (dst + 1) % n;
                    }
                    msg(i as u64, src, dst, 1 + rnd(20))
                })
                .collect();

            // Sequential reference.
            let mut seq_net = Network::new(topo.clone(), 2, 2);
            let mut seq_store = MessageStore::new();
            let mut seq_ej = AcceptAll::default();
            let seq_cycles =
                run(&mut seq_net, &mut seq_store, msgs.clone(), &mut seq_ej, 60_000);
            let mut seq_delivered: Vec<(u32, u64, u64)> = seq_ej
                .delivered
                .iter()
                .map(|&(nic, h, c)| (nic.0, seq_store.get(h).id.0, c))
                .collect();
            seq_delivered.sort_unstable();
            let sc = seq_net.counters();

            for shards in [2u32, 4] {
                let mut net = Network::new(topo.clone(), 2, 2);
                let mut store = MessageStore::new();
                let (delivered, cycles) =
                    run_sharded(&mut net, &mut store, msgs.clone(), shards, 60_000);
                prop_assert_eq!(cycles, seq_cycles, "wall clock at {} shards", shards);
                prop_assert_eq!(&delivered, &seq_delivered, "deliveries at {} shards", shards);
                let c = net.counters();
                prop_assert_eq!(c.flits_moved, sc.flits_moved);
                prop_assert_eq!(c.flits_delivered, sc.flits_delivered);
                prop_assert_eq!(c.packets_delivered, sc.packets_delivered);
                prop_assert_eq!(c.flits_injected, sc.flits_injected);
                prop_assert_eq!(c.packets_injected, sc.packets_injected);
                prop_assert_eq!(net.flits_in_network(), 0);
            }
        }
    }
}
