//! Flits and in-flight packet routing state.

use mdd_protocol::{Message, MessageId};
use mdd_topology::NodeId;
use std::collections::HashMap;

/// One flow-control unit. Packets (== messages, paper footnote 1) are
/// segmented into `length_flits` flits numbered `0..length`; flit 0 is the
/// head (it carries routing information), the last flit is the tail (it
/// releases virtual channels as it passes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Flit {
    /// The packet this flit belongs to.
    pub msg: MessageId,
    /// Sequence number within the packet (0 = head).
    pub seq: u32,
    /// True for the final flit.
    pub is_tail: bool,
}

impl Flit {
    /// True for the routing (first) flit.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }
}

/// State of one in-flight packet: the full message plus mutable routing
/// bookkeeping updated as the head flit advances.
#[derive(Clone, Debug)]
pub struct PacketState {
    /// The message being carried.
    pub msg: Message,
    /// Destination router (where the destination NIC attaches).
    pub dst_router: NodeId,
    /// Per-dimension dateline-crossing bits: bit `d` is set once the head
    /// flit has traversed the wraparound link of dimension `d`. Determines
    /// the escape-channel class under dimension-order routing.
    pub crossed_dateline: u8,
    /// Cycle the head flit entered the network (for network-latency
    /// accounting).
    pub injected_at: u64,
}

/// Registry of in-flight packets, keyed by message id.
#[derive(Default, Debug)]
pub struct PacketTable {
    map: HashMap<u64, PacketState>,
}

impl PacketTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a packet at injection time.
    pub fn insert(&mut self, id: MessageId, state: PacketState) {
        let prev = self.map.insert(id.0, state);
        debug_assert!(prev.is_none(), "packet {id:?} registered twice");
    }

    /// Routing state of packet `id` (panics if unknown — every in-network
    /// flit must have a registered packet).
    #[inline]
    pub fn get(&self, id: MessageId) -> &PacketState {
        self.map
            .get(&id.0)
            .expect("flit in network without a registered packet")
    }

    /// Mutable routing state of packet `id`.
    #[inline]
    pub fn get_mut(&mut self, id: MessageId) -> &mut PacketState {
        self.map
            .get_mut(&id.0)
            .expect("flit in network without a registered packet")
    }

    /// Look up without panicking.
    pub fn try_get(&self, id: MessageId) -> Option<&PacketState> {
        self.map.get(&id.0)
    }

    /// Remove a packet once its tail has been delivered (or it has been
    /// extracted for rescue). Returns its state.
    pub fn remove(&mut self, id: MessageId) -> Option<PacketState> {
        self.map.remove(&id.0)
    }

    /// Number of in-flight packets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no packets are in flight.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over in-flight packet ids.
    pub fn ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.map.keys().copied().map(MessageId)
    }
}
