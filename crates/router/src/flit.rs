//! Flits and in-flight packet routing state.

use mdd_protocol::{MsgHandle, MsgType};
use mdd_topology::{NicId, NodeId};

/// One flow-control unit. Packets (== messages, paper footnote 1) are
/// segmented into `length_flits` flits numbered `0..length`; flit 0 is the
/// head (it carries routing information), the last flit is the tail (it
/// releases virtual channels as it passes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Flit {
    /// Handle of the packet this flit belongs to.
    pub msg: MsgHandle,
    /// Sequence number within the packet (0 = head).
    pub seq: u32,
    /// True for the final flit.
    pub is_tail: bool,
}

impl Flit {
    /// True for the routing (first) flit.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }
}

/// State of one in-flight packet: a handle to the store-owned message plus
/// the routing-relevant message fields (cached at injection so the hot
/// routing path never resolves the store) and mutable routing bookkeeping
/// updated as the head flit advances.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketState {
    /// Handle of the message being carried.
    pub msg: MsgHandle,
    /// Message type (cached — drives VC-class selection).
    pub mtype: MsgType,
    /// Source NIC (cached — rescue fallback origin).
    pub src: NicId,
    /// Destination NIC (cached — selects the local ejection port).
    pub dst: NicId,
    /// Destination router (where the destination NIC attaches).
    pub dst_router: NodeId,
    /// Per-dimension dateline-crossing bits: bit `d` is set once the head
    /// flit has traversed the wraparound link of dimension `d`. Determines
    /// the escape-channel class under dimension-order routing.
    pub crossed_dateline: u8,
    /// Cycle the head flit entered the network (for network-latency
    /// accounting).
    pub injected_at: u64,
}

/// Registry of in-flight packets: a slab indexed by the message handle's
/// store slot, so lookup is a bounds-checked `Vec` index instead of a hash.
///
/// Because each live message owns exactly one store slot, the slot is a
/// collision-free dense key for its packet state. Lookups return `Option`
/// (no panicking accessors); under `debug_assertions` the full stored
/// handle — including its generation tag — is compared against the query,
/// so a stale handle whose slot was recycled fails loudly.
#[derive(Default, Debug, PartialEq)]
pub struct PacketTable {
    slots: Vec<Option<PacketState>>,
    live: usize,
}

impl Clone for PacketTable {
    fn clone(&self) -> Self {
        PacketTable {
            slots: self.slots.clone(),
            live: self.live,
        }
    }

    /// Allocation-free when `self` already has capacity — the debug shadow
    /// snapshot runs this every cycle.
    fn clone_from(&mut self, src: &Self) {
        self.slots.clone_from(&src.slots);
        self.live = src.live;
    }
}

impl PacketTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a packet at injection time.
    pub fn insert(&mut self, state: PacketState) {
        let i = state.msg.slot() as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        debug_assert!(self.slots[i].is_none(), "packet {:?} registered twice", state.msg);
        self.slots[i] = Some(state);
        self.live += 1;
    }

    #[inline]
    fn check(&self, h: MsgHandle, st: &PacketState) {
        debug_assert_eq!(st.msg, h, "stale MsgHandle queried against PacketTable");
    }

    /// Routing state of packet `h`, or `None` if it is not in flight.
    #[inline]
    pub fn get(&self, h: MsgHandle) -> Option<&PacketState> {
        let st = self.slots.get(h.slot() as usize)?.as_ref()?;
        self.check(h, st);
        Some(st)
    }

    /// Mutable routing state of packet `h`, or `None` if not in flight.
    #[inline]
    pub fn get_mut(&mut self, h: MsgHandle) -> Option<&mut PacketState> {
        let st = self.slots.get_mut(h.slot() as usize)?.as_mut()?;
        debug_assert_eq!(st.msg, h, "stale MsgHandle queried against PacketTable");
        Some(st)
    }

    /// Remove a packet once its tail has been delivered (or it has been
    /// extracted for rescue). Returns its state.
    pub fn remove(&mut self, h: MsgHandle) -> Option<PacketState> {
        let st = self.slots.get_mut(h.slot() as usize)?.take()?;
        self.check(h, &st);
        self.live -= 1;
        Some(st)
    }

    /// Number of in-flight packets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no packets are in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}
