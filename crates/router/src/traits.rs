//! Pluggable policy interfaces: routing functions and endpoint ejection
//! control.

use crate::flit::PacketState;
use mdd_protocol::MsgHandle;
use mdd_topology::{NicId, NodeId, PortId, Topology};

/// One admissible `(output port, output virtual channel)` choice for a
/// packet at a router. Candidates are tried in order by the VC allocator,
/// so adaptive choices should precede the escape choice (Duato's protocol).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouteCandidate {
    /// Output port (network or local).
    pub port: PortId,
    /// Virtual channel index on that port (ignored for local ports).
    pub vc: u8,
}

/// A routing function: fills `out` with the admissible next-hop virtual
/// channels for `pkt` currently at router `node`.
///
/// Implementations must return at least one candidate whenever
/// `node != pkt.dst_router` (progress requires an admissible hop) and must
/// return only local-port candidates when `node == pkt.dst_router`.
/// `rr_hint` is a deterministic per-(router, cycle) salt implementations
/// may use to rotate equally preferred adaptive candidates.
///
/// All routing-relevant message fields (`mtype`, `dst`) are cached inside
/// [`PacketState`], so implementations never resolve the message store.
pub trait Routing {
    /// Compute candidates, most preferred first. `out` arrives empty.
    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        pkt: &PacketState,
        rr_hint: u64,
        out: &mut Vec<RouteCandidate>,
    );

    /// The virtual channels on which a packet of `pkt`'s type may be
    /// injected into the network.
    fn injection_vcs(&self, pkt: &PacketState, out: &mut Vec<u8>);

    /// Can this routing function's candidates for type `mtype` ever
    /// depend on `PacketState::crossed_dateline`? Defaults to `true`
    /// (conservative). Implementations that provably never consult the
    /// dateline mask for a type (e.g. a fully adaptive VC map with no
    /// dateline-classed escape set) may return `false`, which lets the
    /// static analyzer collapse its per-mask state split for that type.
    fn dateline_sensitive(&self, mtype: mdd_protocol::MsgType) -> bool {
        let _ = mtype;
        true
    }
}

/// Endpoint-side hooks invoked by [`crate::Network::step`].
///
/// Ejection is a two-step contract: `can_accept` is asked when a packet's
/// head flit requests the local output port — returning `true` must
/// *reserve* whatever endpoint resources guarantee the rest of the packet
/// can drain (a message-queue slot plus a reassembly buffer). Subsequent
/// flits are delivered unconditionally; the tail arrives via
/// `deliver_packet`.
///
/// All hooks receive the message *handle*; implementations resolve it
/// against the simulation's `MessageStore` when they need message fields.
/// Ownership of the message never moves — it stays in the store.
pub trait EjectControl {
    /// May packet `msg` begin ejecting at `nic`? Must reserve resources on
    /// success. May be re-asked on later cycles after refusal.
    fn can_accept(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) -> bool;

    /// Deliver one non-tail flit of `msg` to `nic`.
    fn deliver_flit(&mut self, nic: NicId, msg: MsgHandle, cycle: u64);

    /// Deliver the tail flit: the packet is complete. `injected_at` is the
    /// cycle its head entered the network.
    fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, injected_at: u64, cycle: u64);
}

impl<T: EjectControl + ?Sized> EjectControl for &mut T {
    fn can_accept(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) -> bool {
        (**self).can_accept(nic, msg, cycle)
    }
    fn deliver_flit(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) {
        (**self).deliver_flit(nic, msg, cycle);
    }
    fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, injected_at: u64, cycle: u64) {
        (**self).deliver_packet(nic, msg, injected_at, cycle);
    }
}

/// An [`EjectControl`] that accepts everything, for tests and drain-only
/// scenarios.
#[derive(Default, Debug)]
pub struct AcceptAll {
    /// Complete packets delivered, in arrival order.
    pub delivered: Vec<(NicId, MsgHandle, u64)>,
}

impl EjectControl for AcceptAll {
    fn can_accept(&mut self, _nic: NicId, _msg: MsgHandle, _cycle: u64) -> bool {
        true
    }
    fn deliver_flit(&mut self, _nic: NicId, _msg: MsgHandle, _cycle: u64) {}
    fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, _injected_at: u64, cycle: u64) {
        self.delivered.push((nic, msg, cycle));
    }
}
