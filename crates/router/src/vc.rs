//! Virtual-channel views over the router's structure-of-arrays state.
//!
//! The SoA rewrite removed the per-VC structs; external readers (the CWG
//! validator, the deadlock-witness formatter, tests) observe a VC through
//! the borrowing [`VcRef`] view and the [`OutVc`] snapshot instead. Both
//! are zero-cost facades over the flat arrays in [`crate::Router`].

use crate::flit::Flit;
use crate::router::{Router, NOT_BLOCKED};
use mdd_protocol::MsgHandle;
use mdd_topology::PortId;

/// Read view of one input virtual channel: a finite flit FIFO plus the
/// wormhole routing state of the packet currently at its front.
///
/// ```
/// use mdd_router::Router;
/// use mdd_topology::PortId;
/// let r = Router::new(3, 4, 2);
/// let vc = r.vc(PortId(1), 2);
/// assert!(vc.is_empty());
/// assert!(!vc.awaiting_route()); // empty: nothing to route
/// assert_eq!(vc.free_slots(), vc.capacity());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct VcRef<'a> {
    router: &'a Router,
    slot: usize,
}

impl<'a> VcRef<'a> {
    #[inline]
    pub(crate) fn new(router: &'a Router, slot: usize) -> Self {
        VcRef { router, slot }
    }

    /// Buffer capacity in flits (the paper's default is 2).
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.router.buf_depth()
    }

    /// Buffered flits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.router.len[self.slot] as u32
    }

    /// True when no flit is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.router.len[self.slot] == 0
    }

    /// Free buffer slots.
    #[inline]
    pub fn free_slots(&self) -> u32 {
        self.capacity() - self.len()
    }

    /// The flit at the front, if any.
    #[inline]
    pub fn front(&self) -> Option<Flit> {
        self.router.front_flit(self.slot)
    }

    /// The most recently buffered flit, if any.
    #[inline]
    pub fn back(&self) -> Option<Flit> {
        let len = self.router.len[self.slot] as usize;
        if len == 0 {
            None
        } else {
            Some(self.router.flit_at(self.slot, len - 1))
        }
    }

    /// The `k`-th buffered flit (0 = front), if present.
    #[inline]
    pub fn get(&self, k: usize) -> Option<Flit> {
        if k < self.len() as usize {
            Some(self.router.flit_at(self.slot, k))
        } else {
            None
        }
    }

    /// The allocated route of the front packet: `(output port, output vc)`.
    /// `None` while the head flit awaits route computation / VC allocation.
    #[inline]
    pub fn route(&self) -> Option<(PortId, u8)> {
        self.router.route_of(self.slot)
    }

    /// True if the front flit is a head awaiting VC allocation.
    #[inline]
    pub fn awaiting_route(&self) -> bool {
        self.route().is_none() && self.front().is_some_and(|f| f.is_head())
    }

    /// Packet id of the front flit, if any.
    #[inline]
    pub fn front_packet(&self) -> Option<MsgHandle> {
        self.front().map(|f| f.msg)
    }

    /// First cycle at which the front flit failed to advance; `None` while
    /// it is making progress.
    #[inline]
    pub fn blocked_since(&self) -> Option<u64> {
        match self.router.blocked[self.slot] {
            NOT_BLOCKED => None,
            t => Some(t),
        }
    }

    /// Duration (in cycles, as of `now`) the front flit has been blocked.
    #[inline]
    pub fn blocked_for(&self, now: u64) -> u64 {
        match self.blocked_since() {
            Some(t) => now.saturating_sub(t),
            None => 0,
        }
    }
}

/// Snapshot of an output virtual channel's state: which packet holds it
/// and how many credits (free downstream buffer slots) remain.
#[derive(Clone, Copy, Debug)]
pub struct OutVc {
    /// The packet holding this output VC (wormhole: held from head until
    /// tail transmission).
    pub owner: Option<MsgHandle>,
    /// Free flit-buffer slots in the downstream input VC.
    pub credits: u32,
}

impl OutVc {
    /// True if unowned (a new packet may allocate it).
    #[inline]
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }
}
