//! Virtual-channel state: input-side flit FIFOs and output-side
//! ownership/credit tracking.

use crate::flit::Flit;
use mdd_protocol::MsgHandle;
use mdd_topology::PortId;
use std::collections::VecDeque;

/// An input virtual channel: a finite flit FIFO plus the wormhole routing
/// state of the packet currently at its front.
#[derive(Clone, Debug)]
pub struct Vc {
    /// Buffered flits, in arrival order. Flits of successive packets may
    /// coexist (the tail of one followed by the head of the next); routing
    /// state always describes the packet whose flit is at the front.
    pub buf: VecDeque<Flit>,
    /// The allocated route of the front packet: `(output port, output vc)`.
    /// `None` while the head flit awaits route computation / VC allocation.
    pub route: Option<(PortId, u8)>,
    /// First cycle at which the front flit failed to advance; cleared on
    /// progress. Drives the router-level potential-deadlock timers.
    pub blocked_since: Option<u64>,
    capacity: u32,
}

impl Vc {
    /// A VC with `capacity` flit buffers (the paper's default is 2).
    pub fn new(capacity: u32) -> Self {
        Vc {
            buf: VecDeque::with_capacity(capacity as usize),
            route: None,
            blocked_since: None,
            capacity,
        }
    }

    /// Buffer capacity in flits.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Free buffer slots.
    #[inline]
    pub fn free_slots(&self) -> u32 {
        self.capacity - self.buf.len() as u32
    }

    /// The flit at the front, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        self.buf.front()
    }

    /// True if the front flit is a head awaiting VC allocation.
    #[inline]
    pub fn awaiting_route(&self) -> bool {
        self.route.is_none() && self.front().is_some_and(Flit::is_head)
    }

    /// Append an arriving flit. Panics on overflow — credits must prevent
    /// this.
    pub fn push(&mut self, flit: Flit) {
        assert!(
            (self.buf.len() as u32) < self.capacity,
            "VC buffer overflow: credit accounting violated"
        );
        self.buf.push_back(flit);
    }

    /// Remove and return the front flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.buf.pop_front()
    }

    /// Packet id of the front flit, if any.
    pub fn front_packet(&self) -> Option<MsgHandle> {
        self.front().map(|f| f.msg)
    }

    /// Duration (in cycles, as of `now`) the front flit has been blocked.
    pub fn blocked_for(&self, now: u64) -> u64 {
        match self.blocked_since {
            Some(t) => now.saturating_sub(t),
            None => 0,
        }
    }
}

/// Output-side state of a virtual channel: which packet holds it and how
/// many credits (free downstream buffer slots) remain.
#[derive(Clone, Copy, Debug)]
pub struct OutVc {
    /// The packet holding this output VC (wormhole: held from head until
    /// tail transmission).
    pub owner: Option<MsgHandle>,
    /// Free flit-buffer slots in the downstream input VC.
    pub credits: u32,
}

impl OutVc {
    /// A free output VC with full credits.
    pub fn new(credits: u32) -> Self {
        OutVc {
            owner: None,
            credits,
        }
    }

    /// True if unowned (a new packet may allocate it).
    #[inline]
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }
}
