//! # mdd-router
//!
//! The flit-level wormhole router/network substrate (the FlexSim-equivalent
//! transport layer). It models, cycle by cycle:
//!
//! * per-input-port virtual channels with finite flit buffers (default 2
//!   flits, Table 2) and credit-based backpressure,
//! * the canonical router pipeline — route computation for head flits,
//!   virtual-channel allocation (round-robin), switch allocation (at most
//!   one flit per input port and per output port per cycle) and link
//!   traversal,
//! * wormhole semantics: an output virtual channel is held by one packet
//!   from its head flit until its tail flit passes,
//! * injection from and ejection to network interfaces, where *ejection is
//!   gated by endpoint message-queue space* — the mechanism that transfers
//!   protocol-level message dependencies onto network resources and makes
//!   message-dependent deadlock possible,
//! * per-VC blocked timers used by the recovery schemes to flag potentially
//!   deadlocked packets, and
//! * packet extraction, used by Disha-style progressive recovery to move a
//!   blocked packet onto the dedicated recovery lane.
//!
//! Routing policy is pluggable via the [`Routing`] trait (implementations
//! live in `mdd-routing`); endpoint behaviour is pluggable via
//! [`EjectControl`] (implemented by `mdd-nic`'s NIC array in the simulator
//! and by lightweight stubs in this crate's tests).

#![warn(missing_docs)]

mod flit;
mod network;
mod router;
mod traits;
mod vc;

pub use flit::{Flit, PacketState, PacketTable};
pub use network::{ExtractedPacket, Network, NetworkCounters, ShardPlan};
pub use router::Router;
pub use traits::{AcceptAll, EjectControl, RouteCandidate, Routing};
pub use vc::{OutVc, VcRef};

#[cfg(test)]
mod tests;
