//! The network: all routers, links, and the per-cycle pipeline.
//!
//! ## Link wiring convention
//!
//! Output port `(d, dir)` of router `R` connects to input port
//! `(d, dir.opposite())` of `neighbor(R, d, dir)`, at the same virtual
//! channel index. An input port named `(d, Minus)` therefore carries
//! traffic flowing in the `Plus` direction ("arriving from the Minus
//! side").
//!
//! ## Cycle structure (one [`Network::step`])
//!
//! 1. **Route computation & VC allocation** — every input VC whose front
//!    flit is an unrouted head asks the routing function for candidates and
//!    claims the first available output VC (or an ejection reservation for
//!    local candidates, via [`EjectControl::can_accept`]).
//! 2. **Switch allocation** — per router, at most one flit per input port
//!    and per output port is granted, round-robin, subject to credits.
//! 3. **Traversal** — granted flits move to the downstream input buffer or
//!    are delivered to the endpoint; credits and wormhole ownership are
//!    updated; head flits crossing a wraparound link set their packet's
//!    dateline bit.
//! 4. **Blocked-timer sweep** — input VCs holding a flit that made no
//!    progress accumulate blocked time, feeding deadlock detection.
//!
//! All decisions in phases 1–2 observe start-of-cycle state, so a flit
//! advances at most one hop per cycle.

use crate::flit::{Flit, PacketState, PacketTable};
use crate::router::Router;
use crate::traits::{EjectControl, RouteCandidate, Routing};
use mdd_obs::CounterId;
use mdd_protocol::{Message, MsgHandle};
use mdd_topology::{NicId, NodeId, PortId, Topology};

/// Aggregate transport counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct NetworkCounters {
    /// Total flit-hops (including ejection hops).
    pub flits_moved: u64,
    /// Flits delivered to endpoints.
    pub flits_delivered: u64,
    /// Complete packets delivered to endpoints.
    pub packets_delivered: u64,
    /// Packets registered for injection.
    pub packets_injected: u64,
    /// Flits accepted from endpoints into injection buffers.
    pub flits_injected: u64,
}

/// A packet removed from normal virtual-channel resources for progressive
/// recovery over the deadlock-buffer lane.
#[derive(Clone, Copy, Debug)]
pub struct ExtractedPacket {
    /// Handle of the message being rescued (still owned by the store).
    pub msg: MsgHandle,
    /// Router where the head flit was found (the rescue starting point);
    /// the source NIC's router if the head had not yet entered the network.
    pub head_router: NodeId,
    /// Flits reclaimed from network buffers.
    pub flits_in_network: u32,
    /// Original injection cycle.
    pub injected_at: u64,
}

#[derive(Debug)]
struct Move {
    router: u32,
    in_port: u8,
    in_vc: u8,
    out_port: u8,
    out_vc: u8,
}

/// One input VC's standing switch request (gathered once per router per
/// cycle, then granted per output port in round-robin order).
#[derive(Clone, Copy, Debug)]
struct SwitchReq {
    /// Flat input-VC index (`port * vcs + vc`).
    idx: u16,
    out_port: u8,
    out_vc: u8,
}

/// The full network of wormhole routers.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    vcs: u8,
    buf_depth: u32,
    routers: Vec<Router>,
    packets: PacketTable,
    counters: NetworkCounters,
    /// Busy cycles per output virtual channel, indexed
    /// `(router·ports + port)·vcs + vc` — network ports only. Feeds the
    /// resource-utilization analysis (the paper attributes SA's early
    /// saturation to "unbalanced use of network resources").
    vc_busy: Vec<u64>,
    cand_buf: Vec<RouteCandidate>,
    move_buf: Vec<Move>,
    req_buf: Vec<SwitchReq>,
    /// Per-port flag: true for network (inter-router) ports, false for
    /// local (NIC) ports — a lookup for the hot loops, identical for
    /// every router.
    net_port: Vec<bool>,
    /// Activity wake-set: one bit per router due for processing at the
    /// next [`Network::step`]. A router is woken by flit arrival, credit
    /// return, local injection, or a recovery-lane extraction, and
    /// re-arms itself while it holds flits; everything else is skipped by
    /// all four pipeline phases. Bits deduplicate for free, and draining
    /// the words in order yields routers ascending — the dense 0..N
    /// sweep order — without a sort.
    active_bits: Vec<u64>,
    /// This step's worklist (previous cycle's wake-set, ascending so the
    /// scan order matches the dense 0..N sweep bit-exactly).
    worklist: Vec<u32>,
    /// Buffered flits per router — O(1) occupancy queries for the
    /// quiescence check and the blocked-head sweep's empty-router
    /// early-out.
    router_flits: Vec<u32>,
}

impl Network {
    /// Build a network over `topo` with `vcs` virtual channels per port and
    /// `buf_depth` flit buffers per VC.
    pub fn new(topo: Topology, vcs: u8, buf_depth: u32) -> Self {
        assert!(vcs >= 1, "need at least one virtual channel");
        assert!(buf_depth >= 1, "need at least one flit buffer per VC");
        let ports = topo.ports_per_router();
        let routers = (0..topo.num_routers())
            .map(|_| Router::new(ports, vcs, buf_depth))
            .collect();
        let ports = topo.ports_per_router();
        let vc_busy = vec![0u64; topo.num_routers() as usize * ports * vcs as usize];
        let net_port = (0..ports)
            .map(|p| topo.port_dim_dir(PortId(p as u8)).is_some())
            .collect();
        let n = topo.num_routers() as usize;
        Network {
            topo,
            vcs,
            buf_depth,
            routers,
            packets: PacketTable::new(),
            counters: NetworkCounters::default(),
            vc_busy,
            cand_buf: Vec::with_capacity(64),
            move_buf: Vec::with_capacity(256),
            req_buf: Vec::with_capacity(64),
            net_port,
            active_bits: vec![0; n.div_ceil(64)],
            worklist: Vec::with_capacity(n),
            router_flits: vec![0; n],
        }
    }

    /// Put router `r` on the wake-set for the next step.
    #[inline]
    fn wake(&mut self, r: usize) {
        self.active_bits[r >> 6] |= 1 << (r & 63);
    }

    /// True while router `r` must stay on the wake-list: it buffers
    /// flits. Nothing else keeps a router awake — a flit-less router is a
    /// no-op for every phase even mid-packet (owned or under-credited
    /// output VCs included), and each event that changes that (flit
    /// arrival, credit return, injection, rescue) wakes it explicitly.
    #[inline]
    fn router_busy(&self, r: usize) -> bool {
        self.router_flits[r] > 0
    }

    /// Routers currently on the wake-set (the ones the next step will
    /// process) — the `active_routers` observability gauge.
    #[inline]
    pub fn active_routers(&self) -> usize {
        self.active_bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no router has any scheduled work: the wake-set is empty.
    /// Implies zero buffered flits.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.active_bits.iter().all(|&w| w == 0)
    }

    /// The topology.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Virtual channels per port.
    #[inline]
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// Flit buffers per VC.
    #[inline]
    pub fn buf_depth(&self) -> u32 {
        self.buf_depth
    }

    /// Transport counters so far.
    #[inline]
    pub fn counters(&self) -> NetworkCounters {
        self.counters
    }

    /// Read access to a router.
    #[inline]
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// The in-flight packet table.
    #[inline]
    pub fn packets(&self) -> &PacketTable {
        &self.packets
    }

    /// Total flits currently buffered in the network. O(routers): sums the
    /// per-router occupancy counters instead of walking every VC buffer.
    pub fn flits_in_network(&self) -> u64 {
        self.router_flits.iter().map(|&c| c as u64).sum()
    }

    /// Register a packet about to be injected by `msg.src`'s NIC. The
    /// message stays in the store; routing-relevant fields are cached in
    /// the packet table entry.
    pub fn begin_packet(&mut self, h: MsgHandle, msg: &Message, now: u64) {
        let dst_router = self.topo.nic_router(msg.dst);
        self.packets.insert(PacketState {
            msg: h,
            mtype: msg.mtype,
            src: msg.src,
            dst: msg.dst,
            dst_router,
            crossed_dateline: 0,
            injected_at: now,
        });
        self.counters.packets_injected += 1;
    }

    /// Free flit slots in the injection buffer (local input VC `vc` of
    /// `nic`'s router).
    pub fn injection_free(&self, nic: NicId, vc: u8) -> u32 {
        let router = self.topo.nic_router(nic);
        let port = self.topo.local_port(self.topo.nic_local_index(nic));
        self.routers[router.index()].vc(port, vc).free_slots()
    }

    /// True if injection VC `vc` of `nic` is between packets (its last
    /// buffered flit, if any, is a tail) — a new packet's head may enter.
    pub fn injection_vc_idle(&self, nic: NicId, vc: u8) -> bool {
        let router = self.topo.nic_router(nic);
        let port = self.topo.local_port(self.topo.nic_local_index(nic));
        let vcb = self.routers[router.index()].vc(port, vc);
        match vcb.buf.back() {
            None => true,
            Some(f) => f.is_tail,
        }
    }

    /// Push one flit from `nic` into injection VC `vc`. Returns false
    /// (without effect) when the buffer is full. Wakes the router: local
    /// injection precedes [`Network::step`] within a cycle, so the flit is
    /// routable this very cycle, exactly as under the dense scan.
    pub fn inject_flit(&mut self, nic: NicId, vc: u8, flit: Flit) -> bool {
        let router = self.topo.nic_router(nic);
        let port = self.topo.local_port(self.topo.nic_local_index(nic));
        let ri = router.index();
        {
            let r = &mut self.routers[ri];
            let slot = r.slot(port.index(), vc as usize);
            let vcb = &mut r.in_vcs[slot];
            if vcb.free_slots() == 0 {
                return false;
            }
            vcb.push(flit);
            r.occ_mark(slot);
        }
        self.router_flits[ri] += 1;
        self.counters.flits_injected += 1;
        self.wake(ri);
        true
    }

    /// Advance the network one cycle.
    ///
    /// Only routers on the wake-list are processed; the rest are provably
    /// inert (no flits, no owned or under-credited output VCs — checked by
    /// a dense shadow sweep in debug builds) and every phase is a no-op on
    /// them, so skipping changes nothing observable. The worklist is
    /// sorted ascending so grant and move ordering match the dense 0..N
    /// scan bit-exactly.
    pub fn step(&mut self, cycle: u64, routing: &dyn Routing, ej: &mut dyn EjectControl) {
        self.worklist.clear();
        for wi in 0..self.active_bits.len() {
            let mut w = std::mem::take(&mut self.active_bits[wi]);
            let base = (wi * 64) as u32;
            while w != 0 {
                self.worklist.push(base + w.trailing_zeros());
                w &= w - 1;
            }
        }
        mdd_obs::counter_add(
            CounterId::RouterTicksSkipped,
            (self.routers.len() - self.worklist.len()) as u64,
        );
        #[cfg(debug_assertions)]
        self.dense_shadow_check(cycle);
        self.alloc_phase(cycle, routing, ej);
        self.switch_phase();
        self.apply_moves(cycle, ej);
        self.blocked_sweep(cycle);
        // Re-arm: a router still holding work schedules itself for the
        // next cycle even if nothing new arrives.
        for wi in 0..self.worklist.len() {
            let r = self.worklist[wi] as usize;
            if self.router_busy(r) {
                self.wake(r);
            }
        }
    }

    /// Debug-only dense shadow check: every router the activity scheduler
    /// is about to skip must be in the exact state on which all four
    /// phases are no-ops, and the per-router flit counters must agree with
    /// the actual buffers.
    #[cfg(debug_assertions)]
    fn dense_shadow_check(&self, cycle: u64) {
        for (r, router) in self.routers.iter().enumerate() {
            debug_assert_eq!(
                self.router_flits[r],
                router.buffered_flits(),
                "router {r}: flit counter out of sync at cycle {cycle}"
            );
            for (s, vc) in router.in_vcs.iter().enumerate() {
                debug_assert_eq!(
                    router.in_occ >> s & 1 == 1,
                    !vc.buf.is_empty(),
                    "router {r}: occupancy bit {s} out of sync at cycle {cycle}"
                );
            }
            if self.worklist.binary_search(&(r as u32)).is_ok() {
                continue;
            }
            for (i, vc) in router.in_vcs.iter().enumerate() {
                // An empty VC may keep its route mid-packet (the flits
                // seen so far moved on, the rest are still upstream or at
                // the source NIC); no phase acts on it until the next
                // flit arrival re-wakes the router.
                debug_assert!(
                    vc.buf.is_empty() && vc.blocked_since.is_none(),
                    "router {r} skipped with a live input VC {i} at cycle {cycle}: \
                     buf={}, blocked_since={:?}",
                    vc.buf.len(),
                    vc.blocked_since
                );
            }
        }
    }

    /// Phase 1: route computation and output-VC allocation for waiting
    /// heads.
    fn alloc_phase(&mut self, cycle: u64, routing: &dyn Routing, ej: &mut dyn EjectControl) {
        // Accumulated locally (plain u64 adds) and published once per
        // cycle, so the hot loop stays free of atomics.
        let mut obs_allocs = 0u64;
        let mut obs_stalls = 0u64;
        let nvcs = self.vcs as usize;
        for wi in 0..self.worklist.len() {
            let r = self.worklist[wi] as usize;
            let node = NodeId(r as u32);
            let nports = self.routers[r].ports();
            let total = nports * nvcs;
            self.routers[r].sync_rr_alloc(cycle);
            let start = self.routers[r].rr_alloc as usize % total;
            // Visit occupied slots in the dense scan's rotated order
            // (`start..total` then `0..start`, ascending within each
            // half). Slots the dense scan would have acted on all hold a
            // flit, so restricting to the occupancy mask is exact.
            let occ = self.routers[r].in_occ;
            let low = occ & ((1u128 << start) - 1);
            let mut high = occ ^ low;
            let mut pending = low;
            loop {
                let idx = if high != 0 {
                    let i = high.trailing_zeros() as usize;
                    high &= high - 1;
                    i
                } else if pending != 0 {
                    let i = pending.trailing_zeros() as usize;
                    pending &= pending - 1;
                    i
                } else {
                    break;
                };
                let Some(h) = ({
                    let vc = &self.routers[r].in_vcs[idx];
                    if vc.awaiting_route() {
                        vc.front_packet()
                    } else {
                        None
                    }
                }) else {
                    continue;
                };
                self.cand_buf.clear();
                let Some(pkt) = self.packets.get(h).copied() else {
                    debug_assert!(false, "flit in network without a registered packet");
                    continue;
                };
                let hint = cycle
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((r as u64) << 8)
                    .wrapping_add(idx as u64);
                routing.candidates(&self.topo, node, &pkt, hint, &mut self.cand_buf);
                debug_assert!(
                    !self.cand_buf.is_empty(),
                    "routing function returned no candidates for {h:?} at {node}"
                );
                let mut granted = false;
                for ci in 0..self.cand_buf.len() {
                    let c = self.cand_buf[ci];
                    if let Some(local) = self.topo.port_local_index(c.port) {
                        debug_assert_eq!(
                            node, pkt.dst_router,
                            "local candidate away from destination router"
                        );
                        let nic = self.topo.nic_at(node, local);
                        if ej.can_accept(nic, h, cycle) {
                            self.routers[r].in_vcs[idx].route = Some((c.port, 0));
                            granted = true;
                            break;
                        }
                    } else {
                        let ov = &mut self.routers[r].out_vcs
                            [c.port.index() * nvcs + c.vc as usize];
                        if ov.is_free() {
                            ov.owner = Some(h);
                            self.routers[r].in_vcs[idx].route = Some((c.port, c.vc));
                            granted = true;
                            break;
                        }
                    }
                }
                if granted {
                    obs_allocs += 1;
                } else {
                    obs_stalls += 1;
                }
            }
            self.routers[r].rr_alloc = self.routers[r].rr_alloc.wrapping_add(1);
            self.routers[r].rr_cycle = cycle + 1;
        }
        mdd_obs::counter_add(CounterId::VcAllocs, obs_allocs);
        mdd_obs::counter_add(CounterId::VcStalls, obs_stalls);
    }

    /// Phase 2: switch allocation — one flit per input port and output port.
    ///
    /// Requests are gathered in one pass over the input VCs, then each
    /// output port grants the eligible request closest after its
    /// round-robin pointer — the same flit the old full rescan would have
    /// picked, at a fraction of the per-cycle scan work.
    fn switch_phase(&mut self) {
        self.move_buf.clear();
        let nvcs = self.vcs as usize;
        for wi in 0..self.worklist.len() {
            let r = self.worklist[wi] as usize;
            let router = &mut self.routers[r];
            let nports = router.ports();
            let total = nports * nvcs;
            debug_assert!(nports <= 64);
            self.req_buf.clear();
            // Only occupied slots can request (route set + flit buffered);
            // ascending bit order matches the dense enumerate.
            let mut port_mask = 0u64;
            let mut occ = router.in_occ;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                if let Some((op, ov)) = router.in_vcs[idx].route {
                    port_mask |= 1 << op.0;
                    self.req_buf.push(SwitchReq {
                        idx: idx as u16,
                        out_port: op.0,
                        out_vc: ov,
                    });
                }
            }
            if self.req_buf.is_empty() {
                continue;
            }
            let mut in_used = [false; 64];
            // Output ports without a requester grant nothing; visiting
            // only requested ports (ascending) matches the dense loop.
            while port_mask != 0 {
                let q = port_mask.trailing_zeros() as usize;
                port_mask &= port_mask - 1;
                let rr = router.rr_out[q] as usize % total;
                let mut best: Option<(usize, SwitchReq)> = None;
                for req in &self.req_buf {
                    if req.out_port as usize != q || in_used[req.idx as usize / nvcs] {
                        continue;
                    }
                    // Network outputs need a credit; local outputs were
                    // reserved at acceptance time.
                    if self.net_port[q]
                        && router.out_vcs[q * nvcs + req.out_vc as usize].credits == 0
                    {
                        continue;
                    }
                    let rank = (req.idx as usize + total - rr) % total;
                    if best.is_none_or(|(b, _)| rank < b) {
                        best = Some((rank, *req));
                    }
                }
                if let Some((_, req)) = best {
                    let idx = req.idx as usize;
                    in_used[idx / nvcs] = true;
                    router.rr_out[q] = ((idx + 1) % total) as u32;
                    self.move_buf.push(Move {
                        router: r as u32,
                        in_port: (idx / nvcs) as u8,
                        in_vc: (idx % nvcs) as u8,
                        out_port: q as u8,
                        out_vc: req.out_vc,
                    });
                }
            }
        }
    }

    /// Phase 3: apply granted moves.
    fn apply_moves(&mut self, cycle: u64, ej: &mut dyn EjectControl) {
        mdd_obs::counter_add(CounterId::FlitsRouted, self.move_buf.len() as u64);
        let nvcs = self.vcs as usize;
        for mi in 0..self.move_buf.len() {
            let Move {
                router: r,
                in_port,
                in_vc,
                out_port,
                out_vc,
            } = self.move_buf[mi];
            let node = NodeId(r);
            let in_slot = in_port as usize * nvcs + in_vc as usize;
            let flit = {
                let vc = &mut self.routers[r as usize].in_vcs[in_slot];
                let flit = vc.pop().expect("granted move lost its flit");
                vc.blocked_since = None;
                if flit.is_tail {
                    vc.route = None;
                }
                flit
            };
            self.routers[r as usize].occ_sync(in_slot);
            self.router_flits[r as usize] -= 1;
            // Return a credit upstream (network inputs only; NICs poll
            // injection space directly). The credit is an event for the
            // upstream router: wake it so it can use the freed slot.
            if let Some((d, dir)) = self.topo.port_dim_dir(PortId(in_port)) {
                let up = self
                    .topo
                    .neighbor(node, d, dir)
                    .expect("input port implies the link exists");
                let upport = self.topo.port(d, dir.opposite());
                let ovc = &mut self.routers[up.index()].out_vcs
                    [upport.index() * nvcs + in_vc as usize];
                ovc.credits += 1;
                debug_assert!(ovc.credits <= self.buf_depth);
                self.wake(up.index());
            }
            let out = PortId(out_port);
            if let Some((d2, dir2)) = self.topo.port_dim_dir(out) {
                let ports = self.topo.ports_per_router();
                self.vc_busy[(r as usize * ports + out_port as usize) * self.vcs as usize
                    + out_vc as usize] += 1;
                let ovc = &mut self.routers[r as usize].out_vcs
                    [out_port as usize * nvcs + out_vc as usize];
                debug_assert!(ovc.credits > 0);
                ovc.credits -= 1;
                if flit.is_tail {
                    ovc.owner = None;
                }
                if flit.is_head() && self.topo.crosses_dateline(node, d2, dir2) {
                    match self.packets.get_mut(flit.msg) {
                        Some(st) => st.crossed_dateline |= 1 << d2,
                        None => debug_assert!(false, "dateline hop by unregistered packet"),
                    }
                }
                let down = self
                    .topo
                    .neighbor(node, d2, dir2)
                    .expect("allocated output implies the link exists");
                let dport = self.topo.port(d2, dir2.opposite());
                let down_slot = dport.index() * nvcs + out_vc as usize;
                self.routers[down.index()].in_vcs[down_slot].push(flit);
                self.routers[down.index()].occ_mark(down_slot);
                self.router_flits[down.index()] += 1;
                self.wake(down.index());
            } else {
                let local = self
                    .topo
                    .port_local_index(out)
                    .expect("output is network or local");
                let nic = self.topo.nic_at(node, local);
                if flit.is_tail {
                    let st = self
                        .packets
                        .remove(flit.msg)
                        .expect("delivered packet must be registered");
                    self.counters.packets_delivered += 1;
                    ej.deliver_packet(nic, st.msg, st.injected_at, cycle);
                } else {
                    ej.deliver_flit(nic, flit.msg, cycle);
                }
                self.counters.flits_delivered += 1;
            }
            self.counters.flits_moved += 1;
        }
        self.move_buf.clear();
    }

    /// Phase 4: blocked-timer sweep. A VC holding a flit whose move was not
    /// granted (including unrouted heads) starts or continues accumulating
    /// blocked time; VCs that moved were reset during apply.
    fn blocked_sweep(&mut self, cycle: u64) {
        // Skipped routers hold no flits and their `blocked_since` marks
        // were cleared when the last flit left, so the sweep over the
        // worklist alone is equivalent to the dense sweep. Within a
        // router only occupied slots matter: every pop and extraction
        // clears `blocked_since` the moment a buffer empties, so the
        // dense sweep's reset of empty slots is always a no-op.
        for wi in 0..self.worklist.len() {
            let router = &mut self.routers[self.worklist[wi] as usize];
            let mut occ = router.in_occ;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let vc = &mut router.in_vcs[idx];
                if vc.blocked_since.is_none() {
                    vc.blocked_since = Some(cycle);
                }
            }
        }
    }

    /// Collect into `out` the packets whose head flit has been blocked at
    /// a router for at least `threshold` cycles as of `now` — the
    /// candidates for Disha router-side token capture. `out` is cleared
    /// first; callers keep a scratch vector so the periodic detector sweep
    /// allocates nothing in steady state.
    pub fn blocked_heads_into(
        &self,
        threshold: u64,
        now: u64,
        out: &mut Vec<(NodeId, MsgHandle)>,
    ) {
        out.clear();
        for (r, router) in self.routers.iter().enumerate() {
            if self.router_flits[r] == 0 {
                continue; // no flits, no blocked heads
            }
            for (_, _, vc) in router.iter_vcs() {
                if let Some(f) = vc.front() {
                    if f.is_head() && vc.blocked_for(now) >= threshold && threshold > 0 {
                        out.push((NodeId(r as u32), f.msg));
                    }
                }
            }
        }
    }

    /// Remove every buffered flit of packet `id` from the network,
    /// releasing virtual-channel ownership and restoring upstream credits,
    /// in preparation for recovery-lane transport. Returns `None` if the
    /// packet is unknown (already delivered).
    pub fn extract_packet(&mut self, h: MsgHandle) -> Option<ExtractedPacket> {
        let st = self.packets.remove(h)?;
        let mut flits_removed = 0u32;
        let mut head_router = None;
        for r in 0..self.routers.len() {
            let node = NodeId(r as u32);
            let nports = self.routers[r].ports();
            let nvcs = self.vcs as usize;
            let mut removed_here = 0u32;
            for p in 0..nports {
                for v in 0..nvcs {
                    let (removed, had_head, front_was) = {
                        let vc = &mut self.routers[r].in_vcs[p * nvcs + v];
                        let front_was = vc.front_packet() == Some(h);
                        let before = vc.buf.len();
                        let mut had_head = false;
                        vc.buf.retain(|f| {
                            if f.msg == h {
                                had_head |= f.is_head();
                                false
                            } else {
                                true
                            }
                        });
                        let removed = (before - vc.buf.len()) as u32;
                        if front_was {
                            vc.route = None;
                            vc.blocked_since = None;
                        }
                        (removed, had_head, front_was)
                    };
                    let _ = front_was;
                    if removed > 0 {
                        self.routers[r].occ_sync(p * nvcs + v);
                        flits_removed += removed;
                        removed_here += removed;
                        if had_head {
                            head_router = Some(node);
                        }
                        // Restore upstream credits for the freed slots.
                        if let Some((d, dir)) = self.topo.port_dim_dir(PortId(p as u8)) {
                            let up = self.topo.neighbor(node, d, dir).unwrap();
                            let upport = self.topo.port(d, dir.opposite());
                            let ovc = &mut self.routers[up.index()].out_vcs
                                [upport.index() * nvcs + v];
                            ovc.credits += removed;
                            debug_assert!(ovc.credits <= self.buf_depth);
                            self.wake(up.index());
                        }
                    }
                }
            }
            if removed_here > 0 {
                self.router_flits[r] -= removed_here;
            }
            // Release any output VCs the packet held.
            let mut released = false;
            for ovc in &mut self.routers[r].out_vcs {
                if ovc.owner == Some(h) {
                    ovc.owner = None;
                    released = true;
                }
            }
            // A rescue mutates router state out of band; wake everything
            // it touched so remaining traffic reschedules.
            if removed_here > 0 || released {
                self.wake(r);
            }
        }
        let src_router = self.topo.nic_router(st.src);
        Some(ExtractedPacket {
            head_router: head_router.unwrap_or(src_router),
            flits_in_network: flits_removed,
            injected_at: st.injected_at,
            msg: st.msg,
        })
    }

    /// Busy-cycle counter of one output virtual channel (network ports).
    pub fn vc_busy(&self, node: NodeId, port: PortId, vc: u8) -> u64 {
        let ports = self.topo.ports_per_router();
        self.vc_busy[(node.index() * ports + port.index()) * self.vcs as usize + vc as usize]
    }

    /// Utilization statistics over all *network* virtual channels after
    /// `cycles` of operation: `(mean, max, coefficient_of_variation)`.
    /// A high CV quantifies the unbalanced channel usage the paper blames
    /// for strict avoidance's early saturation (Section 4.3.2).
    pub fn vc_utilization(&self, cycles: u64) -> (f64, f64, f64) {
        if cycles == 0 {
            return (0.0, 0.0, 0.0);
        }
        let ports = self.topo.ports_per_router();
        let mut vals = Vec::new();
        for node in self.topo.routers() {
            for p in 0..ports {
                if self.topo.port_dim_dir(PortId(p as u8)).is_none() {
                    continue; // local ports excluded
                }
                // On meshes, skip nonexistent boundary links.
                let (d, dir) = self.topo.port_dim_dir(PortId(p as u8)).unwrap();
                if self.topo.neighbor(node, d, dir).is_none() {
                    continue;
                }
                for v in 0..self.vcs {
                    vals.push(
                        self.vc_busy(node, PortId(p as u8), v) as f64 / cycles as f64,
                    );
                }
            }
        }
        if vals.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let max = vals.iter().copied().fold(0.0, f64::max);
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let cv = if mean > 1e-12 { var.sqrt() / mean } else { 0.0 };
        (mean, max, cv)
    }

    /// Drop every in-flight packet and clear all buffers (used when
    /// resetting between measurement runs; not part of the modelled
    /// hardware).
    pub fn hard_reset(&mut self) {
        let ports = self.topo.ports_per_router();
        for r in &mut self.routers {
            *r = Router::new(ports, self.vcs, self.buf_depth);
        }
        self.packets = PacketTable::new();
        self.vc_busy.iter_mut().for_each(|b| *b = 0);
        self.active_bits.iter_mut().for_each(|w| *w = 0);
        self.worklist.clear();
        self.router_flits.iter_mut().for_each(|c| *c = 0);
    }
}
