//! The network: all routers, links, and the per-cycle pipeline.
//!
//! ## Link wiring convention
//!
//! Output port `(d, dir)` of router `R` connects to input port
//! `(d, dir.opposite())` of `neighbor(R, d, dir)`, at the same virtual
//! channel index. An input port named `(d, Minus)` therefore carries
//! traffic flowing in the `Plus` direction ("arriving from the Minus
//! side").
//!
//! ## Cycle structure (one [`Network::step`])
//!
//! Semantically, a cycle consists of four phases — (1) route computation &
//! VC allocation, (2) switch allocation, (3) link traversal, (4) the
//! blocked-timer sweep — with every decision in phases 1–2 observing
//! start-of-cycle state, so a flit advances at most one hop per cycle.
//!
//! Mechanically, phases 1, 2 and 4 are *fused* into one pass over each
//! woken router's occupancy bitmask ([`Network::fused_router_pass`]), and
//! phase 3 applies the granted moves afterwards. The fusion is exact
//! because phase-1/2 mutations are router-local (routes, output-VC
//! ownership), credits are only mutated in phase 3, and switch grants pick
//! the minimum round-robin rank — a function of the request *set*, not of
//! the order requests were gathered in. The blocked-timer outcome of the
//! trailing sweep is reproduced by marking occupied slots before moves and
//! patching the moved/arrived slots during phase 3 (see
//! [`Network::apply_moves`]). In debug builds every cycle is re-executed
//! by a literal four-phase reference implementation on a snapshot and the
//! two end states are compared field by field.

use crate::flit::{Flit, PacketState, PacketTable};
use crate::router::{Router, NOT_BLOCKED, NO_ROUTE};
use crate::traits::{EjectControl, RouteCandidate, Routing};
use mdd_obs::CounterId;
use mdd_protocol::{Message, MsgHandle};
use mdd_topology::{NicId, NodeId, PortId, Topology};

/// Aggregate transport counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NetworkCounters {
    /// Total flit-hops (including ejection hops).
    pub flits_moved: u64,
    /// Flits delivered to endpoints.
    pub flits_delivered: u64,
    /// Complete packets delivered to endpoints.
    pub packets_delivered: u64,
    /// Packets registered for injection.
    pub packets_injected: u64,
    /// Flits accepted from endpoints into injection buffers.
    pub flits_injected: u64,
}

/// A packet removed from normal virtual-channel resources for progressive
/// recovery over the deadlock-buffer lane.
#[derive(Clone, Copy, Debug)]
pub struct ExtractedPacket {
    /// Handle of the message being rescued (still owned by the store).
    pub msg: MsgHandle,
    /// Router where the head flit was found (the rescue starting point);
    /// the source NIC's router if the head had not yet entered the network.
    pub head_router: NodeId,
    /// Flits reclaimed from network buffers.
    pub flits_in_network: u32,
    /// Original injection cycle.
    pub injected_at: u64,
}

#[derive(Clone, Copy, Debug)]
struct Move {
    router: u32,
    in_port: u8,
    in_vc: u8,
    out_port: u8,
    out_vc: u8,
}

/// Precomputed link wiring, replacing per-flit topology arithmetic
/// (`port_dim_dir` / `neighbor` / `port` / `nic_at` calls) in the traversal
/// phase with flat array loads.
#[derive(Debug)]
struct Links {
    ports: usize,
    /// Per `(router, port)`: the router on the other end of this port's
    /// link — the downstream router when used as an output, the upstream
    /// router when used as an input. `u32::MAX` for local ports and absent
    /// mesh boundary links.
    nbr: Vec<u32>,
    /// Per port: the opposite-direction port index (the paired port at the
    /// neighbor, identical for every router). `u8::MAX` for local ports.
    opp: Vec<u8>,
    /// Per `(router, port)`: the `crossed_dateline` bit a head flit picks
    /// up crossing this output link; 0 when it is not a dateline crossing.
    dateline: Vec<u8>,
    /// Per `(router, port)`: NIC id behind a local port, `u32::MAX`
    /// otherwise.
    nic: Vec<u32>,
}

impl Links {
    fn build(topo: &Topology) -> Self {
        let ports = topo.ports_per_router();
        let n = topo.num_routers() as usize;
        let mut links = Links {
            ports,
            nbr: vec![u32::MAX; n * ports],
            opp: vec![u8::MAX; ports],
            dateline: vec![0; n * ports],
            nic: vec![u32::MAX; n * ports],
        };
        for p in 0..ports {
            let pid = PortId(p as u8);
            match topo.port_dim_dir(pid) {
                Some((d, dir)) => {
                    links.opp[p] = topo.port(d, dir.opposite()).0;
                    for r in 0..n {
                        let node = NodeId(r as u32);
                        if let Some(nb) = topo.neighbor(node, d, dir) {
                            links.nbr[r * ports + p] = nb.0;
                        }
                        if topo.crosses_dateline(node, d, dir) {
                            links.dateline[r * ports + p] = 1 << d;
                        }
                    }
                }
                None => {
                    let local = topo.port_local_index(pid).expect("port is network or local");
                    for r in 0..n {
                        links.nic[r * ports + p] = topo.nic_at(NodeId(r as u32), local).0;
                    }
                }
            }
        }
        links
    }
}

/// Borrow router `r`'s materialized chunk. Every router a pipeline phase
/// mutates is materialized by construction: chunks materialize on first
/// flit, and all wake/mutation paths (injection, arrival, credit return,
/// extraction) act on routers that hold or held flits.
#[inline]
fn mat(routers: &[Option<Box<Router>>], r: usize) -> &Router {
    routers[r].as_deref().expect("touched router must be materialized")
}

/// Mutable counterpart of [`mat`].
#[inline]
fn mat_mut(routers: &mut [Option<Box<Router>>], r: usize) -> &mut Router {
    routers[r]
        .as_deref_mut()
        .expect("touched router must be materialized")
}

/// Materialize router slot `slot` if needed: recycle a chunk from the
/// free pool (resetting it to pristine state) or clone the template.
/// Returns the (now guaranteed) chunk.
#[inline]
// Boxed on purpose: chunks move between `routers` slots and the pool as
// pointers, never copying the multi-kilobyte `Router` by value.
#[allow(clippy::vec_box)]
fn materialize<'a>(
    slot: &'a mut Option<Box<Router>>,
    pool: &mut Vec<Box<Router>>,
    materialized: &mut u32,
    template: &Router,
) -> &'a mut Router {
    if slot.is_none() {
        *materialized += 1;
        let chunk = match pool.pop() {
            Some(mut chunk) => {
                chunk.reset();
                chunk
            }
            None => Box::new(template.clone()),
        };
        *slot = Some(chunk);
    }
    slot.as_deref_mut().expect("just materialized")
}

/// The full network of wormhole routers.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    vcs: u8,
    buf_depth: u32,
    /// Per-router state chunks, lazily materialized: `None` until the
    /// router first receives a flit (injection or arrival). A `None`
    /// router is semantically identical to a pristine [`Router`] — empty
    /// buffers, full credits, zeroed round-robin state (`rr_alloc` is a
    /// pure function of the cycle via [`Router::sync_rr_alloc`], so a
    /// chunk materialized at cycle `c` catches up to exactly the state an
    /// eagerly-allocated router would hold). A quiescent region of a
    /// large torus therefore costs no memory and no per-cycle traffic.
    routers: Vec<Option<Box<Router>>>,
    /// Recycle pool fed by [`Network::hard_reset`]: chunks are reset on
    /// their way back out of the pool, so re-materialization after a
    /// measurement-window reset allocates nothing. Boxed on purpose —
    /// chunks move between here and [`Network::routers`] as pointers,
    /// never copying the multi-kilobyte [`Router`] by value.
    #[allow(clippy::vec_box)]
    free_pool: Vec<Box<Router>>,
    /// Number of `Some` entries in [`Network::routers`] — the
    /// `routers_materialized` observability gauge.
    materialized: u32,
    /// Bytes per materialized chunk (constant across routers), for the
    /// `router_state_bytes` gauge.
    chunk_bytes: u64,
    /// The never-mutated pristine router template: read-only access to an
    /// unmaterialized router ([`Network::router`]) resolves here, and new
    /// chunks are cloned from it when the free pool is empty.
    pristine: Box<Router>,
    packets: PacketTable,
    counters: NetworkCounters,
    cand_buf: Vec<RouteCandidate>,
    move_buf: Vec<Move>,
    /// Per-port flag: true for network (inter-router) ports, false for
    /// local (NIC) ports — a lookup for the hot loops, identical for
    /// every router.
    net_port: Vec<bool>,
    links: Links,
    /// Per NIC: `(router index, flat slot base)` of its injection port —
    /// the per-flit injection path resolves no topology arithmetic.
    nic_slot: Vec<(u32, u16)>,
    /// Activity wake-set: one bit per router due for processing at the
    /// next [`Network::step`]. A router is woken by flit arrival, credit
    /// return, local injection, or a recovery-lane extraction, and
    /// re-arms itself while it holds flits; everything else is skipped by
    /// the whole pipeline. Bits deduplicate for free, and draining
    /// the words in order yields routers ascending — the dense 0..N
    /// sweep order — without a sort.
    active_bits: Vec<u64>,
    /// Second level of the wake set: bit `g` of word `s` summarizes
    /// `active_bits[s*64 + g]` — set iff that word is nonzero. Waking sets
    /// both levels; the drain clears both. The per-cycle drain walks only
    /// the set summary bits, so its cost is O(active groups), not
    /// O(routers/64): one summary word covers 4096 routers, making the
    /// whole wake-set scan a single word load for any torus up to 64×64.
    /// Draining summary words ascending, then bits within each word
    /// ascending, preserves the dense 0..N router order exactly.
    active_summary: Vec<u64>,
    /// This step's worklist (previous cycle's wake-set, ascending so the
    /// scan order matches the dense 0..N sweep bit-exactly).
    worklist: Vec<u32>,
    /// Bitmask copy of the worklist, used by the traversal phase to decide
    /// whether an arriving flit lands at a router the blocked-timer sweep
    /// of this cycle would have covered.
    cur_mask: Vec<u64>,
    /// Indices of the `cur_mask` words written this cycle, so the next
    /// drain clears only those instead of sweeping the whole mask — the
    /// wake-set bookkeeping stays O(activity) end to end.
    cur_words: Vec<u32>,
    /// Buffered flits per router — O(1) occupancy queries for the
    /// quiescence check and the blocked-head sweep's empty-router
    /// early-out.
    router_flits: Vec<u32>,
    /// Per router: true when its latest fused pass proved the router fully
    /// stalled — no grant emitted, no route allocated, and every waiting
    /// head memo-stalled away from its destination router. Such a router
    /// is frozen (nothing it can do changes its own state), so instead of
    /// re-arming it sleeps until an external event wakes it. Destination
    /// heads disqualify: their stall is an ejection refusal that must be
    /// re-asked every cycle (endpoint queues drain without waking us).
    sleep_ok: Vec<bool>,
    /// Per router: cycle of its last executed fused pass, paired with
    /// [`Network::sleep_stalls`] to reconstruct the allocation-stall count
    /// a permanently-rearming scheduler would have accumulated across the
    /// slept gap.
    last_pass: Vec<u64>,
    /// Per router: number of memo-stalled waiting heads when it went to
    /// sleep — the per-cycle `vc_stalls` contribution its frozen state
    /// would re-count every slept cycle.
    sleep_stalls: Vec<u32>,
    /// Persistent switch-allocation scratch: per-port request-chain heads
    /// (`u16::MAX` = empty) and per-slot next links. An entry packs the
    /// requester's input port in its high byte and slot index in the low
    /// byte. Chain heads are restored to empty by the grant loop (every
    /// gathered port is processed exactly once), and next links are always
    /// written before they are read within a pass, so neither needs
    /// per-pass clearing.
    sw_req_head: [u16; 64],
    sw_req_next: [u16; 128],
    /// Per-shard scratch for [`Network::step_sharded`] (empty until the
    /// first sharded step): candidate/move buffers, switch-request
    /// chains and outgoing mailboxes, kept across cycles so the sharded
    /// steady state allocates nothing.
    shard_scratch: Vec<ShardScratch>,
    #[cfg(debug_assertions)]
    shadow: shadow::Scratch,
}

impl Network {
    /// Build a network over `topo` with `vcs` virtual channels per port and
    /// `buf_depth` flit buffers per VC.
    pub fn new(topo: Topology, vcs: u8, buf_depth: u32) -> Self {
        assert!(vcs >= 1, "need at least one virtual channel");
        assert!(buf_depth >= 1, "need at least one flit buffer per VC");
        let ports = topo.ports_per_router();
        // No per-router allocation here: state chunks materialize on first
        // flit. Only the pristine template is built eagerly.
        let pristine = Box::new(Router::new(ports, vcs, buf_depth));
        let chunk_bytes = pristine.state_bytes();
        let routers: Vec<Option<Box<Router>>> =
            (0..topo.num_routers()).map(|_| None).collect();
        let net_port = (0..ports)
            .map(|p| topo.port_dim_dir(PortId(p as u8)).is_some())
            .collect();
        let links = Links::build(&topo);
        let nic_slot = (0..topo.num_nics())
            .map(|i| {
                let nic = NicId(i);
                let router = topo.nic_router(nic);
                let port = topo.local_port(topo.nic_local_index(nic));
                (router.0, (port.index() * vcs as usize) as u16)
            })
            .collect();
        let n = topo.num_routers() as usize;
        Network {
            topo,
            vcs,
            buf_depth,
            routers,
            free_pool: Vec::new(),
            materialized: 0,
            chunk_bytes,
            pristine,
            packets: PacketTable::new(),
            counters: NetworkCounters::default(),
            cand_buf: Vec::with_capacity(64),
            move_buf: Vec::with_capacity(256),
            net_port,
            links,
            nic_slot,
            active_bits: vec![0; n.div_ceil(64)],
            active_summary: vec![0; n.div_ceil(64).div_ceil(64)],
            worklist: Vec::with_capacity(n),
            cur_mask: vec![0; n.div_ceil(64)],
            cur_words: Vec::new(),
            router_flits: vec![0; n],
            sleep_ok: vec![false; n],
            last_pass: vec![0; n],
            sleep_stalls: vec![0; n],
            sw_req_head: [u16::MAX; 64],
            sw_req_next: [u16::MAX; 128],
            shard_scratch: Vec::new(),
            #[cfg(debug_assertions)]
            shadow: shadow::Scratch::default(),
        }
    }

    /// Put router `r` on the wake-set for the next step (both levels).
    #[inline]
    fn wake(&mut self, r: usize) {
        self.active_bits[r >> 6] |= 1 << (r & 63);
        self.active_summary[r >> 12] |= 1 << ((r >> 6) & 63);
    }

    /// True while router `r` holds flits — the precondition for re-arming.
    /// A flit-less router is a no-op for every phase even mid-packet
    /// (owned or under-credited output VCs included). A flit-holding
    /// router re-arms unless its pass proved it fully stalled (see
    /// [`Network::sleep_ok`]); every event that could unfreeze either kind
    /// (flit arrival, credit return, injection, ownership release by
    /// rescue) wakes it explicitly.
    #[inline]
    fn router_busy(&self, r: usize) -> bool {
        self.router_flits[r] > 0
    }

    /// Routers currently on the wake-set (the ones the next step will
    /// process) — the `active_routers` observability gauge. Walks only the
    /// wake-set's populated words via the summary level.
    #[inline]
    pub fn active_routers(&self) -> usize {
        let mut n = 0;
        for (si, &sw) in self.active_summary.iter().enumerate() {
            let mut sw = sw;
            while sw != 0 {
                let wi = si * 64 + sw.trailing_zeros() as usize;
                sw &= sw - 1;
                n += self.active_bits[wi].count_ones() as usize;
            }
        }
        n
    }

    /// True when no router has any scheduled work: the wake-set is empty.
    /// Implies zero buffered flits. O(routers/4096): only the summary
    /// level is scanned (a set summary bit always covers a nonzero word).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.active_summary.iter().all(|&w| w == 0)
    }

    /// Number of routers whose state chunk is materialized — the
    /// `routers_materialized` observability gauge.
    #[inline]
    pub fn routers_materialized(&self) -> u64 {
        u64::from(self.materialized)
    }

    /// Bytes held by materialized router state chunks — the
    /// `router_state_bytes` observability gauge.
    #[inline]
    pub fn router_state_bytes(&self) -> u64 {
        u64::from(self.materialized) * self.chunk_bytes
    }

    /// The topology.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Virtual channels per port.
    #[inline]
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// Flit buffers per VC.
    #[inline]
    pub fn buf_depth(&self) -> u32 {
        self.buf_depth
    }

    /// Transport counters so far.
    #[inline]
    pub fn counters(&self) -> NetworkCounters {
        self.counters
    }

    /// Read access to a router. An unmaterialized router resolves to the
    /// shared pristine template — semantically identical state (empty
    /// buffers, full credits, nothing routed or owned).
    #[inline]
    pub fn router(&self, node: NodeId) -> &Router {
        self.routers[node.index()]
            .as_deref()
            .unwrap_or(&self.pristine)
    }

    /// The in-flight packet table.
    #[inline]
    pub fn packets(&self) -> &PacketTable {
        &self.packets
    }

    /// Total flits currently buffered in the network. O(routers): sums the
    /// per-router occupancy counters instead of walking every VC buffer.
    pub fn flits_in_network(&self) -> u64 {
        self.router_flits.iter().map(|&c| c as u64).sum()
    }

    /// Register a packet about to be injected by `msg.src`'s NIC. The
    /// message stays in the store; routing-relevant fields are cached in
    /// the packet table entry.
    pub fn begin_packet(&mut self, h: MsgHandle, msg: &Message, now: u64) {
        let dst_router = self.topo.nic_router(msg.dst);
        self.packets.insert(PacketState {
            msg: h,
            mtype: msg.mtype,
            src: msg.src,
            dst: msg.dst,
            dst_router,
            crossed_dateline: 0,
            injected_at: now,
        });
        self.counters.packets_injected += 1;
    }

    /// Free flit slots in the injection buffer (local input VC `vc` of
    /// `nic`'s router).
    #[inline]
    pub fn injection_free(&self, nic: NicId, vc: u8) -> u32 {
        let (r, base) = self.nic_slot[nic.index()];
        let slot = base as usize + vc as usize;
        match self.routers[r as usize].as_deref() {
            Some(router) => self.buf_depth - router.len[slot] as u32,
            None => self.buf_depth, // pristine: entirely free
        }
    }

    /// True if injection VC `vc` of `nic` is between packets (its last
    /// buffered flit, if any, is a tail) — a new packet's head may enter.
    #[inline]
    pub fn injection_vc_idle(&self, nic: NicId, vc: u8) -> bool {
        let (r, base) = self.nic_slot[nic.index()];
        let slot = base as usize + vc as usize;
        match self.routers[r as usize].as_deref() {
            Some(router) => {
                let len = router.len[slot] as usize;
                len == 0 || router.flit_at(slot, len - 1).is_tail
            }
            None => true, // pristine: empty, so idle
        }
    }

    /// Push one flit from `nic` into injection VC `vc`. Returns false
    /// (without effect) when the buffer is full. Wakes the router: local
    /// injection precedes [`Network::step`] within a cycle, so the flit is
    /// routable this very cycle, exactly as under the dense scan. This is
    /// one of the two points that materialize a router chunk (the other is
    /// flit arrival in `Network::apply_moves`).
    pub fn inject_flit(&mut self, nic: NicId, vc: u8, flit: Flit) -> bool {
        let (r, base) = self.nic_slot[nic.index()];
        let ri = r as usize;
        let slot = base as usize + vc as usize;
        let buf_depth = self.buf_depth;
        {
            let Network {
                routers,
                free_pool,
                materialized,
                pristine,
                ..
            } = self;
            let router = materialize(&mut routers[ri], free_pool, materialized, pristine);
            if router.len[slot] as u32 >= buf_depth {
                return false;
            }
            router.push_flit(slot, flit);
        }
        self.router_flits[ri] += 1;
        self.counters.flits_injected += 1;
        self.wake(ri);
        true
    }

    /// Advance the network one cycle.
    ///
    /// Only routers on the wake-list are processed; the rest are provably
    /// inert (no flits, no owned or under-credited output VCs — checked by
    /// a dense shadow sweep in debug builds) and every phase is a no-op on
    /// them, so skipping changes nothing observable. The worklist is
    /// sorted ascending so grant and move ordering match the dense 0..N
    /// scan bit-exactly. Debug builds additionally re-execute the cycle
    /// with a reference four-phase implementation on a snapshot and
    /// compare the end states.
    pub fn step(&mut self, cycle: u64, routing: &dyn Routing, ej: &mut dyn EjectControl) {
        self.drain_wake_set();
        mdd_obs::counter_add(
            CounterId::RouterTicksSkipped,
            (self.routers.len() - self.worklist.len()) as u64,
        );
        mdd_obs::counter_add(CounterId::FusedPassRouters, self.worklist.len() as u64);
        #[cfg(not(debug_assertions))]
        self.step_inner(cycle, routing, ej);
        #[cfg(debug_assertions)]
        {
            self.skipped_router_check(cycle);
            let mut scratch = std::mem::take(&mut self.shadow);
            scratch.snapshot(self);
            let mut rec = shadow::RecordEj {
                inner: ej,
                log: std::mem::take(&mut scratch.ej_log),
            };
            self.step_inner(cycle, routing, &mut rec);
            scratch.ej_log = rec.log;
            scratch.run_reference_and_compare(self, cycle, routing);
            self.shadow = scratch;
        }
        // Re-arm: a router still holding work schedules itself for the
        // next cycle — unless its pass just proved it fully stalled, in
        // which case it sleeps until an external event (credit return,
        // flit arrival, ownership release, injection, extraction) wakes
        // it. Every one of those events calls [`Network::wake`] at the
        // point it mutates the router, so a sleeping router is frozen.
        for wi in 0..self.worklist.len() {
            let r = self.worklist[wi] as usize;
            if self.router_busy(r) && !self.sleep_ok[r] {
                self.wake(r);
            }
        }
    }

    /// Clear the previous cycle's arrival mask sparsely (only the words
    /// it actually wrote), then drain the two-level wake set: summary
    /// words ascending, group words within each ascending, bits within
    /// each word ascending — the dense 0..N router order, touching only
    /// populated words. Shared by [`Network::step`] and
    /// [`Network::step_sharded`], so both execute the same worklist.
    fn drain_wake_set(&mut self) {
        self.worklist.clear();
        for &wi in &self.cur_words {
            self.cur_mask[wi as usize] = 0;
        }
        self.cur_words.clear();
        for si in 0..self.active_summary.len() {
            let mut sw = std::mem::take(&mut self.active_summary[si]);
            while sw != 0 {
                let wi = si * 64 + sw.trailing_zeros() as usize;
                sw &= sw - 1;
                let w = std::mem::take(&mut self.active_bits[wi]);
                debug_assert_ne!(w, 0, "summary bit over an empty wake word");
                self.cur_mask[wi] = w;
                self.cur_words.push(wi as u32);
                let base = (wi * 64) as u32;
                let mut bits = w;
                while bits != 0 {
                    self.worklist.push(base + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
        }
    }

    /// The fused pipeline: one pass per woken router (phases 1, 2 and the
    /// blocked-timer marking), then the traversal phase.
    fn step_inner(&mut self, cycle: u64, routing: &dyn Routing, ej: &mut dyn EjectControl) {
        // Obs deltas are accumulated locally (plain u64 adds) and
        // published once per cycle, so the hot loop stays free of atomics.
        let mut obs = ObsDeltas::default();
        self.move_buf.clear();
        for wi in 0..self.worklist.len() {
            let r = self.worklist[wi] as usize;
            self.fused_router_pass(r, cycle, routing, ej, &mut obs);
        }
        self.apply_moves(cycle, ej);
        mdd_obs::counter_add(CounterId::VcAllocs, obs.allocs);
        mdd_obs::counter_add(CounterId::VcStalls, obs.stalls);
        mdd_obs::counter_add(CounterId::LinkBurstFlits, obs.burst_flits);
    }

    /// One router's fused pass: a single rotated walk over its occupancy
    /// bitmask performs route computation / VC allocation for waiting
    /// heads, blocked-timer pre-marking, and switch-request gathering;
    /// per-port round-robin grants follow.
    ///
    /// ### Ordering contract (why this equals the phased pipeline)
    ///
    /// * Allocation mutations are router-local (this router's routes and
    ///   output-VC owners) except [`EjectControl::can_accept`], whose call
    ///   sequence is router-ascending, rotated-slot order — identical to
    ///   the phased allocation sweep.
    /// * Grants select the *minimum round-robin rank* among a port's
    ///   eligible requesters; the rank depends only on the requester's
    ///   slot index and the port's `rr_out` pointer, so the gather order
    ///   (rotated here, ascending in the phased reference) is immaterial.
    /// * Credits are only mutated by the traversal phase, which runs after
    ///   every router's fused pass — all grant decisions see
    ///   start-of-cycle credits.
    /// * Moves are emitted per router in ascending-output-port order, so
    ///   the global move list matches the phased switch sweep exactly.
    fn fused_router_pass(
        &mut self,
        r: usize,
        cycle: u64,
        routing: &dyn Routing,
        ej: &mut dyn EjectControl,
        obs: &mut ObsDeltas,
    ) {
        let node = NodeId(r as u32);
        let nvcs = self.vcs as usize;
        // Stall-counter compensation for a slept gap: a scheduler that
        // re-armed this fully-stalled router every cycle would have
        // re-counted each memo-stalled head once per cycle. The router's
        // state was frozen while it slept (sleeping implies no external
        // event touched it), so the count per skipped cycle is exactly
        // what it was at sleep time.
        let gap = cycle.saturating_sub(self.last_pass[r]);
        if gap > 1 {
            obs.stalls += (gap - 1) * self.sleep_stalls[r] as u64;
        }
        self.last_pass[r] = cycle;
        let mut pass_stalls = 0u32;
        let mut dst_head = false;
        let moves_before = self.move_buf.len();
        // Per-port singly linked request chains, in the persistent scratch
        // (see the `sw_req_head` field docs; both `< 128`, so `u16::MAX`
        // stays a safe sentinel).
        let mut port_mask = 0u64;
        // Waiting heads that need a full allocation attempt, in scan order.
        let mut pend = [0u8; 128];
        let mut npend = 0usize;
        let total;
        {
            // Scan under a single router borrow: the occupancy walk touches
            // several parallel arrays per slot, and hoisting the borrow
            // keeps their base pointers live across the whole walk.
            let Network {
                routers,
                sw_req_head: req_head,
                sw_req_next: req_next,
                ..
            } = self;
            let router = mat_mut(routers, r);
            router.sync_rr_alloc(cycle);
            let nports = router.ports();
            total = nports * nvcs;
            debug_assert!(nports <= 64);
            let start = router.rr_alloc as usize % total;
            // Visit occupied slots in the dense scan's rotated order
            // (`start..total` then `0..start`, ascending within each half).
            // Slots the dense scan would have acted on all hold a flit, so
            // restricting to the occupancy mask is exact.
            let occ = router.in_occ;
            let low = occ & ((1u128 << start) - 1);
            let mut high = occ ^ low;
            let mut rest = low;
            loop {
                let idx = if high != 0 {
                    let i = high.trailing_zeros() as usize;
                    high &= high - 1;
                    i
                } else if rest != 0 {
                    let i = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    i
                } else {
                    break;
                };
                // Blocked-timer pre-mark (fused phase 4): every occupied
                // slot not already blocked starts its timer this cycle; the
                // traversal phase re-derives the mark for slots that move.
                if router.blocked[idx] == NOT_BLOCKED {
                    router.blocked[idx] = cycle;
                }
                // Phase 2 (gather): a routed slot with a buffered flit
                // stands as a switch requester for its output port.
                let q = router.route_port[idx];
                if q != NO_ROUTE {
                    port_mask |= 1 << q;
                    req_next[idx] = req_head[q as usize];
                    req_head[q as usize] = ((idx / nvcs) << 8) as u16 | idx as u16;
                } else if router.front_flit(idx).expect("occupied slot").is_head() {
                    // Phase 1: route computation & VC allocation.
                    if router.stall_epoch[idx] == router.alloc_epoch {
                        // Memoized stall: no output VC on this router has
                        // been released since the last full attempt, and
                        // the candidate set of a waiting packet is fixed,
                        // so every candidate is still owner-busy.
                        obs.stalls += 1;
                        pass_stalls += 1;
                    } else {
                        pend[npend] = idx as u8;
                        npend += 1;
                    }
                }
            }
            router.rr_alloc = router.rr_alloc.wrapping_add(1);
            router.rr_cycle = cycle + 1;
        }
        // Phase 1, deferred: full allocation attempts for the (rare)
        // non-memoized waiting heads. Deferral is exact: allocation only
        // mutates output-VC ownership, ejection earmarks, and the
        // attempting slot's own route — none of which the scan above reads
        // for *other* slots — and processing `pend` in scan order preserves
        // both the intra-router claim order (an earlier head can take an
        // output VC a later head wanted) and the `can_accept` call
        // sequence of the dense reference.
        for &slot in &pend[..npend] {
            let idx = slot as usize;
            let h = mat(&self.routers, r)
                .front_flit(idx)
                .expect("occupied slot")
                .msg;
            match self.alloc_slot(r, node, idx, h, cycle, routing, ej, obs) {
                AllocOutcome::Granted => {
                    // A freshly routed head is a switch requester this
                    // same cycle. Chain position is immaterial: grants
                    // minimize rank over the set.
                    let q = mat(&self.routers, r).route_port[idx];
                    debug_assert_ne!(q, NO_ROUTE);
                    port_mask |= 1 << q;
                    self.sw_req_next[idx] = self.sw_req_head[q as usize];
                    self.sw_req_head[q as usize] = ((idx / nvcs) << 8) as u16 | idx as u16;
                }
                AllocOutcome::StalledTransit => pass_stalls += 1,
                AllocOutcome::StalledAtDst => {
                    pass_stalls += 1;
                    dst_head = true;
                }
            }
        }
        // Phase 2 (grant): each requested output port (ascending) grants
        // the eligible requester closest after its round-robin pointer.
        {
            let Network {
                routers,
                move_buf,
                net_port,
                sw_req_head: req_head,
                sw_req_next: req_next,
                ..
            } = self;
            let router = mat_mut(routers, r);
            let mut in_used = 0u64; // input ports granted this cycle
            while port_mask != 0 {
                let q = port_mask.trailing_zeros() as usize;
                port_mask &= port_mask - 1;
                let rr = router.rr_out[q] as usize % total;
                let is_net = net_port[q];
                let mut best: Option<(usize, usize, usize)> = None;
                let mut contenders = 0u32;
                let mut cur = req_head[q];
                req_head[q] = u16::MAX; // restore the empty-chain invariant
                while cur != u16::MAX {
                    let idx = (cur & 0xff) as usize;
                    let p = (cur >> 8) as usize;
                    cur = req_next[idx];
                    if in_used & (1 << p) != 0 {
                        continue;
                    }
                    // Network outputs need a credit; local outputs were
                    // reserved at acceptance time.
                    if is_net
                        && router.out_credits[q * nvcs + router.route_vc[idx] as usize] == 0
                    {
                        continue;
                    }
                    contenders += 1;
                    let mut rank = idx + total - rr;
                    if rank >= total {
                        rank -= total;
                    }
                    if best.is_none_or(|(b, _, _)| rank < b) {
                        best = Some((rank, idx, p));
                    }
                }
                if let Some((_, idx, p)) = best {
                    in_used |= 1 << p;
                    router.rr_out[q] = if idx + 1 == total { 0 } else { (idx + 1) as u32 };
                    // Burst streaming: an uncontended port granting a
                    // packet-body flit is a wormhole stream in flight — the
                    // continuation of a multi-flit block transfer that
                    // needed no arbitration this cycle.
                    if contenders == 1
                        && !router.front_flit(idx).expect("requester has a flit").is_head()
                    {
                        obs.burst_flits += 1;
                    }
                    move_buf.push(Move {
                        router: r as u32,
                        in_port: p as u8,
                        in_vc: (idx - p * nvcs) as u8,
                        out_port: q as u8,
                        out_vc: router.route_vc[idx],
                    });
                }
            }
        }
        // Sleep decision. No grant anywhere implies every routed slot is
        // credit-blocked (a port with a creditable requester always grants
        // someone, and local routes never need credits), and with every
        // waiting head memo-stalled away from its destination, re-running
        // this pass is a state no-op until an external event arrives. A
        // head stalled at its destination router keeps the router awake:
        // ejection admission must be re-asked as endpoint queues drain.
        let stalled = !dst_head && self.move_buf.len() == moves_before;
        self.sleep_ok[r] = stalled;
        self.sleep_stalls[r] = if stalled { pass_stalls } else { 0 };
    }

    /// Full route-computation + VC-allocation attempt for the head at
    /// `(r, idx)` — the non-memoized path.
    #[allow(clippy::too_many_arguments)]
    fn alloc_slot(
        &mut self,
        r: usize,
        node: NodeId,
        idx: usize,
        h: MsgHandle,
        cycle: u64,
        routing: &dyn Routing,
        ej: &mut dyn EjectControl,
        obs: &mut ObsDeltas,
    ) -> AllocOutcome {
        let nvcs = self.vcs as usize;
        let Some(pkt) = self.packets.get(h).copied() else {
            debug_assert!(false, "flit in network without a registered packet");
            return AllocOutcome::Granted;
        };
        self.cand_buf.clear();
        let hint = cycle
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((r as u64) << 8)
            .wrapping_add(idx as u64);
        routing.candidates(&self.topo, node, &pkt, hint, &mut self.cand_buf);
        debug_assert!(
            !self.cand_buf.is_empty(),
            "routing function returned no candidates for {h:?} at {node}"
        );
        let mut granted = false;
        for ci in 0..self.cand_buf.len() {
            let c = self.cand_buf[ci];
            if let Some(local) = self.topo.port_local_index(c.port) {
                debug_assert_eq!(
                    node, pkt.dst_router,
                    "local candidate away from destination router"
                );
                let nic = self.topo.nic_at(node, local);
                if ej.can_accept(nic, h, cycle) {
                    let router = mat_mut(&mut self.routers, r);
                    router.route_port[idx] = c.port.0;
                    router.route_vc[idx] = 0;
                    granted = true;
                    break;
                }
            } else {
                let out_slot = c.port.index() * nvcs + c.vc as usize;
                let router = mat_mut(&mut self.routers, r);
                if router.out_free(out_slot) {
                    router.own_out(out_slot, h);
                    router.route_port[idx] = c.port.0;
                    router.route_vc[idx] = c.vc;
                    granted = true;
                    break;
                }
            }
        }
        if granted {
            obs.allocs += 1;
            AllocOutcome::Granted
        } else {
            obs.stalls += 1;
            if pkt.dst_router != node {
                // All candidates are output VCs of this router and all are
                // owner-busy; memoize until one is released. Destination
                // heads are exempt: their stall is an ejection refusal,
                // and `can_accept` both has side effects and depends on
                // NIC state this router cannot version.
                let router = mat_mut(&mut self.routers, r);
                router.stall_epoch[idx] = router.alloc_epoch;
                AllocOutcome::StalledTransit
            } else {
                AllocOutcome::StalledAtDst
            }
        }
    }

    /// Phase 3: apply granted moves (link traversal), table-driven.
    ///
    /// Also re-derives the blocked-timer marks the fused pre-marking could
    /// not know yet: a popped slot restarts (still occupied) or clears
    /// (emptied) its timer, and a flit arriving at a router covered by
    /// this cycle's worklist starts one — exactly the state the phased
    /// pipeline's trailing sweep would have left.
    fn apply_moves(&mut self, cycle: u64, ej: &mut dyn EjectControl) {
        mdd_obs::counter_add(CounterId::FlitsRouted, self.move_buf.len() as u64);
        let nvcs = self.vcs as usize;
        let ports = self.links.ports;
        // Disjoint field borrows so the per-move work indexes each array
        // directly instead of re-deriving `&mut self.routers[..]` per
        // access; `wake` is inlined as the bit-set it is.
        let Network {
            routers,
            packets,
            counters,
            move_buf,
            links,
            net_port,
            active_bits,
            active_summary,
            cur_mask,
            router_flits,
            buf_depth,
            free_pool,
            materialized,
            pristine,
            ..
        } = self;
        let _ = buf_depth; // release-build: only the debug assert reads it
        for mv in move_buf.iter() {
            let Move {
                router: r,
                in_port,
                in_vc,
                out_port,
                out_vc,
            } = *mv;
            let r = r as usize;
            let in_slot = in_port as usize * nvcs + in_vc as usize;
            let router = mat_mut(routers, r);
            let flit = router.pop_flit(in_slot);
            router.blocked[in_slot] = if router.len[in_slot] > 0 {
                cycle
            } else {
                NOT_BLOCKED
            };
            if flit.is_tail {
                router.route_port[in_slot] = NO_ROUTE;
            }
            router_flits[r] -= 1;
            // Return a credit upstream (network inputs only; NICs poll
            // injection space directly). The credit is an event for the
            // upstream router: wake it so it can use the freed slot. The
            // upstream router sent this flit, so it is materialized.
            let up = links.nbr[r * ports + in_port as usize];
            if up != u32::MAX {
                let up = up as usize;
                let up_slot = links.opp[in_port as usize] as usize * nvcs + in_vc as usize;
                let up_router = mat_mut(routers, up);
                up_router.out_credits[up_slot] += 1;
                debug_assert!(up_router.out_credits[up_slot] <= *buf_depth);
                active_bits[up >> 6] |= 1 << (up & 63);
                active_summary[up >> 12] |= 1 << ((up >> 6) & 63);
            }
            if net_port[out_port as usize] {
                let out_slot = out_port as usize * nvcs + out_vc as usize;
                let router = mat_mut(routers, r);
                router.vc_busy[out_slot] += 1;
                debug_assert!(router.out_credits[out_slot] > 0);
                router.out_credits[out_slot] -= 1;
                if flit.is_tail {
                    router.release_out(out_slot);
                }
                let dl = links.dateline[r * ports + out_port as usize];
                if dl != 0 && flit.is_head() {
                    match packets.get_mut(flit.msg) {
                        Some(st) => st.crossed_dateline |= dl,
                        None => debug_assert!(false, "dateline hop by unregistered packet"),
                    }
                }
                let down = links.nbr[r * ports + out_port as usize] as usize;
                debug_assert!(down != u32::MAX as usize, "allocated output implies the link exists");
                let down_slot = links.opp[out_port as usize] as usize * nvcs + out_vc as usize;
                // Flit arrival: the second (and only other) router
                // materialization point.
                let down_router =
                    materialize(&mut routers[down], free_pool, materialized, pristine);
                down_router.push_flit(down_slot, flit);
                // Arrival mark: the trailing sweep of the phased pipeline
                // would see this flit (post-move occupancy) at any router
                // it covers this cycle.
                if cur_mask[down >> 6] >> (down & 63) & 1 == 1
                    && down_router.blocked[down_slot] == NOT_BLOCKED
                {
                    down_router.blocked[down_slot] = cycle;
                }
                router_flits[down] += 1;
                active_bits[down >> 6] |= 1 << (down & 63);
                active_summary[down >> 12] |= 1 << ((down >> 6) & 63);
            } else {
                let nic = NicId(links.nic[r * ports + out_port as usize]);
                debug_assert!(nic.0 != u32::MAX, "output is network or local");
                if flit.is_tail {
                    let st = packets
                        .remove(flit.msg)
                        .expect("delivered packet must be registered");
                    counters.packets_delivered += 1;
                    ej.deliver_packet(nic, st.msg, st.injected_at, cycle);
                } else {
                    ej.deliver_flit(nic, flit.msg, cycle);
                }
                counters.flits_delivered += 1;
            }
            counters.flits_moved += 1;
        }
        self.move_buf.clear();
    }

    /// Debug-only: every router the activity scheduler is about to skip
    /// must be in the exact state on which the whole pipeline is a no-op,
    /// and the per-router flit counters must agree with the buffers.
    #[cfg(debug_assertions)]
    fn skipped_router_check(&self, cycle: u64) {
        // Wake-set invariant: a nonzero word is always covered by its
        // summary bit (the drain relies on walking summary bits only).
        for (wi, &w) in self.active_bits.iter().enumerate() {
            debug_assert!(
                w == 0 || self.active_summary[wi >> 6] >> (wi & 63) & 1 == 1,
                "wake word {wi} set without its summary bit at cycle {cycle}"
            );
        }
        for (r, chunk) in self.routers.iter().enumerate() {
            let Some(router) = chunk.as_deref() else {
                // An unmaterialized router has never held a flit (or was
                // reset); it must be indistinguishable from pristine.
                debug_assert_eq!(
                    self.router_flits[r], 0,
                    "router {r}: flits counted on an unmaterialized router at cycle {cycle}"
                );
                continue;
            };
            debug_assert_eq!(
                self.router_flits[r],
                router.buffered_flits(),
                "router {r}: flit counter out of sync at cycle {cycle}"
            );
            for s in 0..router.len.len() {
                debug_assert_eq!(
                    router.in_occ >> s & 1 == 1,
                    router.len[s] > 0,
                    "router {r}: occupancy bit {s} out of sync at cycle {cycle}"
                );
            }
            if self.worklist.binary_search(&(r as u32)).is_ok() {
                continue;
            }
            let nvcs = self.vcs as usize;
            for s in 0..router.len.len() {
                if router.len[s] == 0 {
                    // An empty VC may keep its route mid-packet (the flits
                    // seen so far moved on, the rest are still upstream or
                    // at the source NIC); no phase acts on it until the
                    // next flit arrival re-wakes the router.
                    debug_assert_eq!(
                        router.blocked[s], NOT_BLOCKED,
                        "router {r}: empty VC {s} with a blocked timer at {cycle}"
                    );
                    continue;
                }
                // A skipped occupied slot must be provably inert: its
                // blocked timer already runs, and it is either a
                // memo-stalled transit head (no release since the last
                // full attempt) or a routed-but-credit-starved requester.
                // Anything else would have re-armed or been woken.
                debug_assert!(
                    router.blocked[s] != NOT_BLOCKED,
                    "router {r} slept with an unmarked occupied VC {s} at {cycle}"
                );
                if router.route_port[s] == NO_ROUTE {
                    debug_assert!(
                        router
                            .front_flit(s)
                            .is_some_and(|f| f.is_head()),
                        "router {r} slept with an unrouted body flit at VC {s}, cycle {cycle}"
                    );
                    debug_assert_eq!(
                        router.stall_epoch[s], router.alloc_epoch,
                        "router {r} slept with a non-memoized waiting head at VC {s}, \
                         cycle {cycle}"
                    );
                } else {
                    let q = router.route_port[s] as usize;
                    debug_assert!(
                        self.net_port[q],
                        "router {r} slept with an eject-routed flit at VC {s}, cycle {cycle}"
                    );
                    debug_assert_eq!(
                        router.out_credits[q * nvcs + router.route_vc[s] as usize],
                        0,
                        "router {r} slept with a creditable requester at VC {s}, cycle {cycle}"
                    );
                }
            }
        }
    }

    /// Append the packets whose head flit has been blocked at router
    /// `node` for at least `threshold` cycles as of `now` — slot-ascending,
    /// the same order the full-network sweep produces within one router.
    fn blocked_heads_router(
        &self,
        r: usize,
        threshold: u64,
        now: u64,
        out: &mut Vec<(NodeId, MsgHandle)>,
    ) {
        if threshold == 0 || self.router_flits[r] == 0 {
            return;
        }
        let router = mat(&self.routers, r);
        let mut occ = router.in_occ;
        while occ != 0 {
            let slot = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let f = router.front_flit(slot).expect("occupied slot");
            if f.is_head()
                && router.blocked[slot] != NOT_BLOCKED
                && now.saturating_sub(router.blocked[slot]) >= threshold
            {
                out.push((NodeId(r as u32), f.msg));
            }
        }
    }

    /// Collect into `out` the packets whose head flit has been blocked at
    /// a router for at least `threshold` cycles as of `now` — the
    /// candidates for Disha router-side token capture. `out` is cleared
    /// first; callers keep a scratch vector so the periodic detector sweep
    /// allocates nothing in steady state.
    pub fn blocked_heads_into(
        &self,
        threshold: u64,
        now: u64,
        out: &mut Vec<(NodeId, MsgHandle)>,
    ) {
        out.clear();
        for r in 0..self.routers.len() {
            self.blocked_heads_router(r, threshold, now, out);
        }
    }

    /// [`Network::blocked_heads_into`] restricted to one router — what a
    /// token stop at `node` actually needs. Identical victim order to
    /// filtering the full sweep down to `node`, without walking the other
    /// `N - 1` routers.
    pub fn blocked_heads_at(
        &self,
        node: NodeId,
        threshold: u64,
        now: u64,
        out: &mut Vec<(NodeId, MsgHandle)>,
    ) {
        out.clear();
        self.blocked_heads_router(node.index(), threshold, now, out);
    }

    /// Remove every buffered flit of packet `id` from the network,
    /// releasing virtual-channel ownership and restoring upstream credits,
    /// in preparation for recovery-lane transport. Returns `None` if the
    /// packet is unknown (already delivered).
    ///
    /// A packet's flits in any one VC buffer form one contiguous run
    /// (wormhole flow control never interleaves packets within a VC), so
    /// each buffer is reclaimed by a single block move and its upstream
    /// credits are returned in one batch — the burst path of the data
    /// plane, counted by `link_burst_flits`.
    pub fn extract_packet(&mut self, h: MsgHandle) -> Option<ExtractedPacket> {
        let st = self.packets.remove(h)?;
        let mut flits_removed = 0u32;
        let mut burst_flits = 0u64;
        let mut head_router = None;
        let nvcs = self.vcs as usize;
        let ports = self.links.ports;
        for r in 0..self.routers.len() {
            // An unmaterialized router holds no flits and owns no output
            // VCs — nothing to reclaim, nothing to release.
            if self.routers[r].is_none() {
                debug_assert_eq!(self.router_flits[r], 0);
                continue;
            }
            let mut removed_here = 0u32;
            if self.router_flits[r] > 0 {
                let mut occ = mat(&self.routers, r).in_occ;
                while occ != 0 {
                    let slot = occ.trailing_zeros() as usize;
                    occ &= occ - 1;
                    // Locate the packet's contiguous run in this buffer.
                    let len = mat(&self.routers, r).len[slot] as usize;
                    let mut run_start = len;
                    let mut run_len = 0usize;
                    let mut had_head = false;
                    for k in 0..len {
                        let f = mat(&self.routers, r).flit_at(slot, k);
                        if f.msg == h {
                            if run_len == 0 {
                                run_start = k;
                            }
                            debug_assert_eq!(
                                run_start + run_len,
                                k,
                                "a packet's flits must be contiguous within a VC"
                            );
                            run_len += 1;
                            had_head |= f.is_head();
                        }
                    }
                    if run_len == 0 {
                        continue;
                    }
                    let front_was = run_start == 0;
                    let router = mat_mut(&mut self.routers, r);
                    router.remove_run(slot, run_start, run_len);
                    if front_was {
                        router.route_port[slot] = NO_ROUTE;
                        router.blocked[slot] = NOT_BLOCKED;
                    }
                    flits_removed += run_len as u32;
                    removed_here += run_len as u32;
                    burst_flits += run_len as u64;
                    if had_head {
                        head_router = Some(NodeId(r as u32));
                    }
                    // Restore upstream credits for the freed slots in one
                    // batch.
                    let p = slot / nvcs;
                    let up = self.links.nbr[r * ports + p];
                    if self.net_port[p] {
                        let up = up as usize;
                        let up_slot = self.links.opp[p] as usize * nvcs + slot % nvcs;
                        let up_router = mat_mut(&mut self.routers, up);
                        up_router.out_credits[up_slot] += run_len as u32;
                        debug_assert!(up_router.out_credits[up_slot] <= self.buf_depth);
                        self.wake(up);
                    }
                }
                self.router_flits[r] -= removed_here;
            }
            // Release any output VCs the packet held (it can hold one at a
            // router it no longer buffers flits in — the wormhole spans
            // routers head to tail).
            let mut released = false;
            let mut owned = mat(&self.routers, r).out_owned;
            while owned != 0 {
                let s = owned.trailing_zeros() as usize;
                owned &= owned - 1;
                let router = mat_mut(&mut self.routers, r);
                if router.out_owner[s] == h {
                    router.release_out(s);
                    released = true;
                }
            }
            // A rescue mutates router state out of band; wake everything
            // it touched so remaining traffic reschedules.
            if removed_here > 0 || released {
                self.wake(r);
            }
        }
        mdd_obs::counter_add(CounterId::LinkBurstFlits, burst_flits);
        let src_router = self.topo.nic_router(st.src);
        Some(ExtractedPacket {
            head_router: head_router.unwrap_or(src_router),
            flits_in_network: flits_removed,
            injected_at: st.injected_at,
            msg: st.msg,
        })
    }

    /// Busy-cycle counter of one output virtual channel (network ports).
    /// Unmaterialized routers never moved a flit: zero.
    pub fn vc_busy(&self, node: NodeId, port: PortId, vc: u8) -> u64 {
        match self.routers[node.index()].as_deref() {
            Some(router) => router.vc_busy[port.index() * self.vcs as usize + vc as usize],
            None => 0,
        }
    }

    /// Utilization statistics over all *network* virtual channels after
    /// `cycles` of operation: `(mean, max, coefficient_of_variation)`.
    /// A high CV quantifies the unbalanced channel usage the paper blames
    /// for strict avoidance's early saturation (Section 4.3.2).
    pub fn vc_utilization(&self, cycles: u64) -> (f64, f64, f64) {
        if cycles == 0 {
            return (0.0, 0.0, 0.0);
        }
        let ports = self.topo.ports_per_router();
        let mut vals = Vec::new();
        for node in self.topo.routers() {
            for p in 0..ports {
                if self.topo.port_dim_dir(PortId(p as u8)).is_none() {
                    continue; // local ports excluded
                }
                // On meshes, skip nonexistent boundary links.
                let (d, dir) = self.topo.port_dim_dir(PortId(p as u8)).unwrap();
                if self.topo.neighbor(node, d, dir).is_none() {
                    continue;
                }
                for v in 0..self.vcs {
                    vals.push(
                        self.vc_busy(node, PortId(p as u8), v) as f64 / cycles as f64,
                    );
                }
            }
        }
        if vals.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let max = vals.iter().copied().fold(0.0, f64::max);
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let cv = if mean > 1e-12 { var.sqrt() / mean } else { 0.0 };
        (mean, max, cv)
    }

    /// Drop every in-flight packet and clear all buffers (used when
    /// resetting between measurement runs; not part of the modelled
    /// hardware).
    pub fn hard_reset(&mut self) {
        // Return every materialized chunk to the free pool (reset happens
        // on the way back out, in [`materialize`]): the next measurement
        // window re-materializes from the pool without allocating.
        let Network {
            routers, free_pool, ..
        } = self;
        for slot in routers.iter_mut() {
            if let Some(chunk) = slot.take() {
                free_pool.push(chunk);
            }
        }
        self.materialized = 0;
        self.packets = PacketTable::new();
        self.active_bits.iter_mut().for_each(|w| *w = 0);
        self.active_summary.iter_mut().for_each(|w| *w = 0);
        self.cur_mask.iter_mut().for_each(|w| *w = 0);
        self.cur_words.clear();
        self.worklist.clear();
        self.router_flits.iter_mut().for_each(|c| *c = 0);
        self.sleep_ok.iter_mut().for_each(|b| *b = false);
        self.last_pass.iter_mut().for_each(|c| *c = 0);
        self.sleep_stalls.iter_mut().for_each(|c| *c = 0);
        self.sw_req_head = [u16::MAX; 64];
    }
}

/// Per-cycle observability deltas, published in one batch.
#[derive(Default, Debug)]
struct ObsDeltas {
    allocs: u64,
    stalls: u64,
    burst_flits: u64,
}

/// Partition of the router index space into contiguous shard ranges for
/// [`Network::step_sharded`].
///
/// Every interior boundary is a multiple of 64 (a whole wake-set word),
/// so the per-shard `active_bits` slices never share a word and shards
/// can set wake bits for their own routers without synchronization. On
/// networks smaller than `shards * 64` routers, trailing shards own
/// empty ranges — degenerate but valid (their workers return
/// immediately), so shard-count-invariance tests cover small topologies
/// too.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// `shards + 1` range boundaries: shard `s` owns `[bounds[s],
    /// bounds[s+1])`.
    bounds: Vec<u32>,
    /// Uniform shard width in routers (a multiple of 64); the last shard
    /// absorbs the remainder.
    stride: u32,
}

impl ShardPlan {
    /// Split `num_routers` routers into `shards` contiguous ranges of
    /// whole wake-set words.
    pub fn new(num_routers: u32, shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let words = (num_routers as usize).div_ceil(64);
        let wps = words.div_ceil(shards as usize).max(1);
        let stride = (wps * 64) as u32;
        let bounds = (0..=shards as u64)
            .map(|s| (s * u64::from(stride)).min(u64::from(num_routers)) as u32)
            .collect();
        ShardPlan { bounds, stride }
    }

    /// Number of shards (trailing ones may own empty ranges on small
    /// networks).
    #[inline]
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Router range `[lo, hi)` owned by shard `s`.
    #[inline]
    pub fn range(&self, s: usize) -> (u32, u32) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// The shard owning router `r`.
    #[inline]
    pub fn shard_of(&self, r: u32) -> usize {
        ((r / self.stride) as usize).min(self.shards() - 1)
    }

    /// Total routers covered (== the network's router count).
    #[inline]
    pub fn num_routers(&self) -> u32 {
        self.bounds[self.shards()]
    }
}

/// One cross-shard side effect of a granted move, buffered into the
/// destination shard's mailbox during the parallel phase and applied by
/// the coordinator at the cycle barrier. Each `(router, slot)` cell
/// receives at most one credit and at most one arrival per cycle (one
/// grant per output port, 1:1 link wiring), so in-cycle effects touch
/// disjoint state and deferred application converges to the same
/// physical representation the sequential interleaving produces; the
/// fixed (src, dst) drain order makes the schedule deterministic
/// independent of worker timing.
#[derive(Clone, Copy, Debug)]
enum CrossEffect {
    /// Credit return to an upstream router owned by another shard (plus
    /// the implied wake).
    Credit {
        /// Upstream router (global index).
        router: u32,
        /// Its flat output-VC slot.
        slot: u16,
    },
    /// Flit arrival at a downstream router owned by another shard (plus
    /// the implied wake, arrival-side blocked mark and, if needed,
    /// chunk materialization from the coordinator's pool).
    Arrival {
        /// Downstream router (global index).
        router: u32,
        /// Its flat input-VC slot.
        slot: u16,
        /// The flit traversing the link.
        flit: Flit,
    },
}

/// Deferred [`PacketTable`] mutation recorded by a shard (the table is
/// shared read-only during the parallel phase so every shard's
/// allocation pass observes start-of-cycle routing state, exactly as
/// the sequential schedule's all-passes-before-all-applies does).
/// Applied at the barrier in (shard, move) order — which, because
/// shards are ascending contiguous ranges and each shard's move list is
/// router-ascending, is the sequential traversal's own order.
#[derive(Clone, Copy, Debug)]
enum PkEvent {
    /// A head flit crossed a dateline link: OR `mask` into the packet's
    /// `crossed_dateline` bits.
    Dateline { msg: MsgHandle, mask: u8 },
    /// A tail flit ejected: remove the packet from the table.
    Delivered { msg: MsgHandle },
}

/// Per-shard reusable scratch plus the per-cycle outputs a shard hands
/// back to the coordinator at the barrier.
#[derive(Debug)]
struct ShardScratch {
    cand: Vec<RouteCandidate>,
    moves: Vec<Move>,
    req_head: [u16; 64],
    req_next: [u16; 128],
    /// Outgoing mailboxes, indexed by destination shard.
    mail: Vec<Vec<CrossEffect>>,
    /// Deferred packet-table events, in move order.
    pk: Vec<PkEvent>,
    /// This cycle's transport-counter delta.
    counters: NetworkCounters,
    /// This cycle's observability delta.
    obs: ObsDeltas,
    /// Moves granted this cycle (the `flits_routed` contribution).
    moves_routed: u64,
    /// Router chunks materialized by intra-shard arrivals this cycle.
    materialized: u32,
}

impl Default for ShardScratch {
    fn default() -> Self {
        ShardScratch {
            cand: Vec::with_capacity(64),
            moves: Vec::with_capacity(256),
            req_head: [u16::MAX; 64],
            req_next: [u16::MAX; 128],
            mail: Vec::new(),
            pk: Vec::new(),
            counters: NetworkCounters::default(),
            obs: ObsDeltas::default(),
            moves_routed: 0,
            materialized: 0,
        }
    }
}

/// Read-only network state shared by every shard during the parallel
/// phase. `packets` and `cur_mask` are frozen for the whole phase:
/// packet-table mutations are deferred as [`PkEvent`]s and the arrival
/// mask was fully built by the wake-set drain.
struct StepShared<'a> {
    topo: &'a Topology,
    vcs: u8,
    buf_depth: u32,
    net_port: &'a [bool],
    links: &'a Links,
    pristine: &'a Router,
    packets: &'a PacketTable,
    cur_mask: &'a [u64],
    plan: &'a ShardPlan,
}

/// One shard's mutable view of the network: disjoint slices of every
/// per-router array (router indices offset by `lo`, wake words by
/// `word_base`), its slice of the ascending worklist, its endpoint
/// controller and its scratch.
struct ShardTask<'a, E> {
    lo: u32,
    hi: u32,
    word_base: usize,
    routers: &'a mut [Option<Box<Router>>],
    router_flits: &'a mut [u32],
    sleep_ok: &'a mut [bool],
    last_pass: &'a mut [u64],
    sleep_stalls: &'a mut [u32],
    active_bits: &'a mut [u64],
    worklist: &'a [u32],
    ej: &'a mut E,
    sc: ShardScratch,
}

/// One shard's whole cycle: fused passes over its worklist slice, then
/// application of its own moves ([`shard_apply_moves`]). Mirrors
/// [`Network::step_inner`] restricted to the shard's router range.
fn run_shard<E: EjectControl>(
    mut t: ShardTask<'_, E>,
    sh: &StepShared<'_>,
    cycle: u64,
    routing: &dyn Routing,
) -> ShardScratch {
    for wi in 0..t.worklist.len() {
        let r = t.worklist[wi] as usize;
        shard_router_pass(&mut t, sh, r, cycle, routing);
    }
    t.sc.moves_routed = t.sc.moves.len() as u64;
    shard_apply_moves(&mut t, sh, cycle);
    t.sc
}

/// The shard-local port of [`Network::fused_router_pass`]: identical
/// decision logic over the shard's slices (`li = r - lo` addresses
/// them; the rr hint and the emitted moves keep global coordinates, so
/// every pseudo-random and round-robin decision matches the sequential
/// pass bit for bit).
fn shard_router_pass<E: EjectControl>(
    t: &mut ShardTask<'_, E>,
    sh: &StepShared<'_>,
    r: usize,
    cycle: u64,
    routing: &dyn Routing,
) {
    let li = r - t.lo as usize;
    let node = NodeId(r as u32);
    let nvcs = sh.vcs as usize;
    let gap = cycle.saturating_sub(t.last_pass[li]);
    if gap > 1 {
        t.sc.obs.stalls += (gap - 1) * t.sleep_stalls[li] as u64;
    }
    t.last_pass[li] = cycle;
    let mut pass_stalls = 0u32;
    let mut dst_head = false;
    let moves_before = t.sc.moves.len();
    let mut port_mask = 0u64;
    let mut pend = [0u8; 128];
    let mut npend = 0usize;
    let total;
    {
        let router = mat_mut(t.routers, li);
        router.sync_rr_alloc(cycle);
        let nports = router.ports();
        total = nports * nvcs;
        debug_assert!(nports <= 64);
        let start = router.rr_alloc as usize % total;
        let occ = router.in_occ;
        let low = occ & ((1u128 << start) - 1);
        let mut high = occ ^ low;
        let mut rest = low;
        loop {
            let idx = if high != 0 {
                let i = high.trailing_zeros() as usize;
                high &= high - 1;
                i
            } else if rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                i
            } else {
                break;
            };
            if router.blocked[idx] == NOT_BLOCKED {
                router.blocked[idx] = cycle;
            }
            let q = router.route_port[idx];
            if q != NO_ROUTE {
                port_mask |= 1 << q;
                t.sc.req_next[idx] = t.sc.req_head[q as usize];
                t.sc.req_head[q as usize] = ((idx / nvcs) << 8) as u16 | idx as u16;
            } else if router.front_flit(idx).expect("occupied slot").is_head() {
                if router.stall_epoch[idx] == router.alloc_epoch {
                    t.sc.obs.stalls += 1;
                    pass_stalls += 1;
                } else {
                    pend[npend] = idx as u8;
                    npend += 1;
                }
            }
        }
        router.rr_alloc = router.rr_alloc.wrapping_add(1);
        router.rr_cycle = cycle + 1;
    }
    for &slot in &pend[..npend] {
        let idx = slot as usize;
        let h = mat(t.routers, li)
            .front_flit(idx)
            .expect("occupied slot")
            .msg;
        match shard_alloc_slot(t, sh, r, node, idx, h, cycle, routing) {
            AllocOutcome::Granted => {
                let q = mat(t.routers, li).route_port[idx];
                debug_assert_ne!(q, NO_ROUTE);
                port_mask |= 1 << q;
                t.sc.req_next[idx] = t.sc.req_head[q as usize];
                t.sc.req_head[q as usize] = ((idx / nvcs) << 8) as u16 | idx as u16;
            }
            AllocOutcome::StalledTransit => pass_stalls += 1,
            AllocOutcome::StalledAtDst => {
                pass_stalls += 1;
                dst_head = true;
            }
        }
    }
    {
        let router = mat_mut(t.routers, li);
        let mut in_used = 0u64;
        while port_mask != 0 {
            let q = port_mask.trailing_zeros() as usize;
            port_mask &= port_mask - 1;
            let rr = router.rr_out[q] as usize % total;
            let is_net = sh.net_port[q];
            let mut best: Option<(usize, usize, usize)> = None;
            let mut contenders = 0u32;
            let mut cur = t.sc.req_head[q];
            t.sc.req_head[q] = u16::MAX;
            while cur != u16::MAX {
                let idx = (cur & 0xff) as usize;
                let p = (cur >> 8) as usize;
                cur = t.sc.req_next[idx];
                if in_used & (1 << p) != 0 {
                    continue;
                }
                if is_net
                    && router.out_credits[q * nvcs + router.route_vc[idx] as usize] == 0
                {
                    continue;
                }
                contenders += 1;
                let mut rank = idx + total - rr;
                if rank >= total {
                    rank -= total;
                }
                if best.is_none_or(|(b, _, _)| rank < b) {
                    best = Some((rank, idx, p));
                }
            }
            if let Some((_, idx, p)) = best {
                in_used |= 1 << p;
                router.rr_out[q] = if idx + 1 == total { 0 } else { (idx + 1) as u32 };
                if contenders == 1
                    && !router.front_flit(idx).expect("requester has a flit").is_head()
                {
                    t.sc.obs.burst_flits += 1;
                }
                t.sc.moves.push(Move {
                    router: r as u32,
                    in_port: p as u8,
                    in_vc: (idx - p * nvcs) as u8,
                    out_port: q as u8,
                    out_vc: router.route_vc[idx],
                });
            }
        }
    }
    let stalled = !dst_head && t.sc.moves.len() == moves_before;
    t.sleep_ok[li] = stalled;
    t.sleep_stalls[li] = if stalled { pass_stalls } else { 0 };
}

/// The shard-local port of [`Network::alloc_slot`]. Reads the shared
/// start-of-cycle packet table; all mutations stay within the shard's
/// router slice (a head's candidates are output VCs of the router it
/// waits at).
#[allow(clippy::too_many_arguments)]
fn shard_alloc_slot<E: EjectControl>(
    t: &mut ShardTask<'_, E>,
    sh: &StepShared<'_>,
    r: usize,
    node: NodeId,
    idx: usize,
    h: MsgHandle,
    cycle: u64,
    routing: &dyn Routing,
) -> AllocOutcome {
    let li = r - t.lo as usize;
    let nvcs = sh.vcs as usize;
    let Some(pkt) = sh.packets.get(h).copied() else {
        debug_assert!(false, "flit in network without a registered packet");
        return AllocOutcome::Granted;
    };
    t.sc.cand.clear();
    let hint = cycle
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((r as u64) << 8)
        .wrapping_add(idx as u64);
    routing.candidates(sh.topo, node, &pkt, hint, &mut t.sc.cand);
    debug_assert!(
        !t.sc.cand.is_empty(),
        "routing function returned no candidates for {h:?} at {node}"
    );
    let mut granted = false;
    for ci in 0..t.sc.cand.len() {
        let c = t.sc.cand[ci];
        if let Some(local) = sh.topo.port_local_index(c.port) {
            debug_assert_eq!(
                node, pkt.dst_router,
                "local candidate away from destination router"
            );
            let nic = sh.topo.nic_at(node, local);
            if t.ej.can_accept(nic, h, cycle) {
                let router = mat_mut(t.routers, li);
                router.route_port[idx] = c.port.0;
                router.route_vc[idx] = 0;
                granted = true;
                break;
            }
        } else {
            let out_slot = c.port.index() * nvcs + c.vc as usize;
            let router = mat_mut(t.routers, li);
            if router.out_free(out_slot) {
                router.own_out(out_slot, h);
                router.route_port[idx] = c.port.0;
                router.route_vc[idx] = c.vc;
                granted = true;
                break;
            }
        }
    }
    if granted {
        t.sc.obs.allocs += 1;
        AllocOutcome::Granted
    } else {
        t.sc.obs.stalls += 1;
        if pkt.dst_router != node {
            let router = mat_mut(t.routers, li);
            router.stall_epoch[idx] = router.alloc_epoch;
            AllocOutcome::StalledTransit
        } else {
            AllocOutcome::StalledAtDst
        }
    }
}

/// The shard-local port of [`Network::apply_moves`]: in-range effects
/// apply directly (identical to the sequential traversal phase);
/// out-of-range credit returns and flit arrivals go to the destination
/// shard's mailbox, and packet-table mutations are recorded as
/// [`PkEvent`]s — both applied by the coordinator at the barrier.
fn shard_apply_moves<E: EjectControl>(
    t: &mut ShardTask<'_, E>,
    sh: &StepShared<'_>,
    cycle: u64,
) {
    let nvcs = sh.vcs as usize;
    let ports = sh.links.ports;
    let lo = t.lo as usize;
    let hi = t.hi as usize;
    for mi in 0..t.sc.moves.len() {
        let Move {
            router: r,
            in_port,
            in_vc,
            out_port,
            out_vc,
        } = t.sc.moves[mi];
        let r = r as usize;
        let li = r - lo;
        let in_slot = in_port as usize * nvcs + in_vc as usize;
        let router = mat_mut(t.routers, li);
        let flit = router.pop_flit(in_slot);
        router.blocked[in_slot] = if router.len[in_slot] > 0 {
            cycle
        } else {
            NOT_BLOCKED
        };
        if flit.is_tail {
            router.route_port[in_slot] = NO_ROUTE;
        }
        t.router_flits[li] -= 1;
        let up = sh.links.nbr[r * ports + in_port as usize];
        if up != u32::MAX {
            let upu = up as usize;
            let up_slot = sh.links.opp[in_port as usize] as usize * nvcs + in_vc as usize;
            if (lo..hi).contains(&upu) {
                let up_router = mat_mut(t.routers, upu - lo);
                up_router.out_credits[up_slot] += 1;
                debug_assert!(up_router.out_credits[up_slot] <= sh.buf_depth);
                t.active_bits[(upu >> 6) - t.word_base] |= 1 << (upu & 63);
            } else {
                t.sc.mail[sh.plan.shard_of(up)].push(CrossEffect::Credit {
                    router: up,
                    slot: up_slot as u16,
                });
            }
        }
        if sh.net_port[out_port as usize] {
            let out_slot = out_port as usize * nvcs + out_vc as usize;
            let router = mat_mut(t.routers, li);
            router.vc_busy[out_slot] += 1;
            debug_assert!(router.out_credits[out_slot] > 0);
            router.out_credits[out_slot] -= 1;
            if flit.is_tail {
                router.release_out(out_slot);
            }
            let dl = sh.links.dateline[r * ports + out_port as usize];
            if dl != 0 && flit.is_head() {
                t.sc.pk.push(PkEvent::Dateline {
                    msg: flit.msg,
                    mask: dl,
                });
            }
            let down = sh.links.nbr[r * ports + out_port as usize] as usize;
            debug_assert!(
                down != u32::MAX as usize,
                "allocated output implies the link exists"
            );
            let down_slot = sh.links.opp[out_port as usize] as usize * nvcs + out_vc as usize;
            if (lo..hi).contains(&down) {
                // Intra-shard arrival: materialize by cloning the
                // pristine template. The recycle pool stays with the
                // coordinator — a fresh clone is state-identical to a
                // reset pool chunk, so only the allocation cost differs
                // (a deliberate concession; the frontier itself matches
                // the sequential schedule exactly).
                let slot = &mut t.routers[down - lo];
                if slot.is_none() {
                    t.sc.materialized += 1;
                    *slot = Some(Box::new(sh.pristine.clone()));
                }
                let down_router = slot.as_deref_mut().expect("just materialized");
                down_router.push_flit(down_slot, flit);
                if sh.cur_mask[down >> 6] >> (down & 63) & 1 == 1
                    && down_router.blocked[down_slot] == NOT_BLOCKED
                {
                    down_router.blocked[down_slot] = cycle;
                }
                t.router_flits[down - lo] += 1;
                t.active_bits[(down >> 6) - t.word_base] |= 1 << (down & 63);
            } else {
                t.sc.mail[sh.plan.shard_of(down as u32)].push(CrossEffect::Arrival {
                    router: down as u32,
                    slot: down_slot as u16,
                    flit,
                });
            }
        } else {
            let nic = NicId(sh.links.nic[r * ports + out_port as usize]);
            debug_assert!(nic.0 != u32::MAX, "output is network or local");
            if flit.is_tail {
                let st = sh
                    .packets
                    .get(flit.msg)
                    .expect("delivered packet must be registered");
                t.sc.counters.packets_delivered += 1;
                t.ej.deliver_packet(nic, st.msg, st.injected_at, cycle);
                t.sc.pk.push(PkEvent::Delivered { msg: flit.msg });
            } else {
                t.ej.deliver_flit(nic, flit.msg, cycle);
            }
            t.sc.counters.flits_delivered += 1;
        }
        t.sc.counters.flits_moved += 1;
    }
    t.sc.moves.clear();
}

impl Network {
    /// Advance the network one cycle with the per-cycle work partitioned
    /// across `plan.shards()` scoped worker threads — bit-identical to
    /// [`Network::step`] at any shard count.
    ///
    /// Each shard runs the fused pass over its slice of the worklist,
    /// then applies its own moves; effects landing in another shard's
    /// router range (credit returns, flit arrivals, wakes) are buffered
    /// into per-(src, dst) mailboxes and drained at the cycle barrier in
    /// fixed (src, dst) order, and packet-table mutations are deferred
    /// the same way. `ejs[s]` is shard `s`'s endpoint controller;
    /// ejection for a router always lands in its owning shard's
    /// controller, so controllers never race. In debug builds the cycle
    /// is validated against the phased reference pipeline exactly like
    /// the sequential step, with the per-shard endpoint logs merged in
    /// the sequential schedule's order.
    pub fn step_sharded<E: EjectControl + Send>(
        &mut self,
        cycle: u64,
        routing: &(dyn Routing + Sync),
        plan: &ShardPlan,
        ejs: &mut [E],
    ) {
        assert_eq!(ejs.len(), plan.shards(), "one endpoint controller per shard");
        assert_eq!(
            plan.num_routers() as usize,
            self.routers.len(),
            "shard plan covers a different network"
        );
        self.drain_wake_set();
        mdd_obs::counter_add(
            CounterId::RouterTicksSkipped,
            (self.routers.len() - self.worklist.len()) as u64,
        );
        mdd_obs::counter_add(CounterId::FusedPassRouters, self.worklist.len() as u64);
        #[cfg(not(debug_assertions))]
        self.run_shards(cycle, routing, plan, ejs);
        #[cfg(debug_assertions)]
        {
            self.skipped_router_check(cycle);
            let mut scratch = std::mem::take(&mut self.shadow);
            scratch.snapshot(self);
            let mut recs: Vec<shadow::ShardRecordEj<&mut E>> =
                ejs.iter_mut().map(shadow::ShardRecordEj::new).collect();
            self.run_shards(cycle, routing, plan, &mut recs);
            // Merge the per-shard endpoint logs into the sequential
            // schedule's order: every shard's allocation pass precedes
            // every shard's traversal in the reference, and shards are
            // ascending contiguous router ranges — so all accepts in
            // shard order, then all deliveries in shard order, is
            // exactly the reference's call sequence.
            scratch.ej_log.clear();
            for rec in &recs {
                scratch.ej_log.extend_from_slice(&rec.accepts);
            }
            for rec in &recs {
                scratch.ej_log.extend_from_slice(&rec.delivers);
            }
            scratch.run_reference_and_compare(self, cycle, routing);
            self.shadow = scratch;
        }
        // Re-arm, identical to the sequential step.
        for wi in 0..self.worklist.len() {
            let r = self.worklist[wi] as usize;
            if self.router_busy(r) && !self.sleep_ok[r] {
                self.wake(r);
            }
        }
        // Shard passes set their own `active_bits` words directly without
        // touching the shared summary level (a summary word spans up to
        // 4096 routers and may straddle shard bounds). Rebuild it from
        // the words — exact, because in both schedules a summary bit is
        // set iff one of its covered words is nonzero.
        for sw in &mut self.active_summary {
            *sw = 0;
        }
        for (wi, &w) in self.active_bits.iter().enumerate() {
            if w != 0 {
                self.active_summary[wi >> 6] |= 1 << (wi & 63);
            }
        }
    }

    /// The parallel phase plus barrier drain of one sharded cycle.
    fn run_shards<E: EjectControl + Send>(
        &mut self,
        cycle: u64,
        routing: &(dyn Routing + Sync),
        plan: &ShardPlan,
        ejs: &mut [E],
    ) {
        let nshards = plan.shards();
        let total_words = self.active_bits.len();
        let mut scratch = std::mem::take(&mut self.shard_scratch);
        scratch.resize_with(nshards, ShardScratch::default);
        for sc in &mut scratch {
            sc.mail.resize_with(nshards, Vec::new);
            sc.counters = NetworkCounters::default();
            sc.obs = ObsDeltas::default();
            sc.moves_routed = 0;
            sc.materialized = 0;
        }
        let mut outs;
        {
            let Network {
                topo,
                vcs,
                buf_depth,
                net_port,
                links,
                pristine,
                packets,
                cur_mask,
                routers,
                router_flits,
                sleep_ok,
                last_pass,
                sleep_stalls,
                active_bits,
                worklist,
                ..
            } = &mut *self;
            let shared = StepShared {
                topo: &*topo,
                vcs: *vcs,
                buf_depth: *buf_depth,
                net_port: &*net_port,
                links: &*links,
                pristine,
                packets: &*packets,
                cur_mask: &*cur_mask,
                plan,
            };
            let mut tasks: Vec<ShardTask<'_, E>> = Vec::with_capacity(nshards);
            let mut routers_rest: &mut [Option<Box<Router>>] = routers;
            let mut flits_rest: &mut [u32] = router_flits;
            let mut sleep_rest: &mut [bool] = sleep_ok;
            let mut pass_rest: &mut [u64] = last_pass;
            let mut stall_rest: &mut [u32] = sleep_stalls;
            let mut bits_rest: &mut [u64] = active_bits;
            let mut wl_rest: &[u32] = worklist;
            let mut ejs_rest: &mut [E] = ejs;
            let mut sc_it = scratch.into_iter();
            let mut word_lo = 0usize;
            for s in 0..nshards {
                let (lo, hi) = plan.range(s);
                let cnt = (hi - lo) as usize;
                // Interior bounds are either stride-aligned (whole words)
                // or clamped to `num_routers` mid-word; in the clamped
                // case every later shard is empty, so the covering word
                // belongs to this shard and rounding *up* is safe.
                let word_hi = if s + 1 == nshards {
                    total_words
                } else {
                    (hi as usize).div_ceil(64).min(total_words)
                };
                let (a, b) = std::mem::take(&mut routers_rest).split_at_mut(cnt);
                routers_rest = b;
                let (f, b) = std::mem::take(&mut flits_rest).split_at_mut(cnt);
                flits_rest = b;
                let (so, b) = std::mem::take(&mut sleep_rest).split_at_mut(cnt);
                sleep_rest = b;
                let (lp, b) = std::mem::take(&mut pass_rest).split_at_mut(cnt);
                pass_rest = b;
                let (ss, b) = std::mem::take(&mut stall_rest).split_at_mut(cnt);
                stall_rest = b;
                let (bits, b) =
                    std::mem::take(&mut bits_rest).split_at_mut(word_hi - word_lo);
                bits_rest = b;
                let (ej, b) = std::mem::take(&mut ejs_rest)
                    .split_first_mut()
                    .expect("one endpoint controller per shard");
                ejs_rest = b;
                let split = wl_rest.partition_point(|&r| r < hi);
                let (wl, b) = wl_rest.split_at(split);
                wl_rest = b;
                tasks.push(ShardTask {
                    lo,
                    hi,
                    word_base: word_lo,
                    routers: a,
                    router_flits: f,
                    sleep_ok: so,
                    last_pass: lp,
                    sleep_stalls: ss,
                    active_bits: bits,
                    worklist: wl,
                    ej,
                    sc: sc_it.next().expect("scratch sized to shard count"),
                });
                word_lo = word_hi;
            }
            outs = rayon::scope_map(tasks, |t| run_shard(t, &shared, cycle, routing));
        }
        // Barrier. Mailboxes drain in fixed (src, dst) order; every
        // effect touches a distinct (router, slot) cell this cycle, so
        // the order is belt-and-braces determinism, not a correctness
        // requirement.
        let buf_depth = self.buf_depth;
        let mut mailbox_effects = 0u64;
        for out in &mut outs {
            for dst in 0..nshards {
                let mut effects = std::mem::take(&mut out.mail[dst]);
                mailbox_effects += effects.len() as u64;
                for eff in &effects {
                    match *eff {
                        CrossEffect::Credit { router, slot } => {
                            let r = router as usize;
                            let up_router = mat_mut(&mut self.routers, r);
                            up_router.out_credits[slot as usize] += 1;
                            debug_assert!(up_router.out_credits[slot as usize] <= buf_depth);
                            self.wake(r);
                        }
                        CrossEffect::Arrival { router, slot, flit } => {
                            let r = router as usize;
                            let slot = slot as usize;
                            {
                                let Network {
                                    routers,
                                    free_pool,
                                    materialized,
                                    pristine,
                                    cur_mask,
                                    ..
                                } = &mut *self;
                                let down_router = materialize(
                                    &mut routers[r],
                                    free_pool,
                                    materialized,
                                    pristine,
                                );
                                down_router.push_flit(slot, flit);
                                if cur_mask[r >> 6] >> (r & 63) & 1 == 1
                                    && down_router.blocked[slot] == NOT_BLOCKED
                                {
                                    down_router.blocked[slot] = cycle;
                                }
                            }
                            self.router_flits[r] += 1;
                            self.wake(r);
                        }
                    }
                }
                effects.clear();
                out.mail[dst] = effects;
            }
        }
        // Deferred packet-table events, (shard, move) order — the
        // sequential traversal's own mutation order.
        for out in &mut outs {
            let mut pk = std::mem::take(&mut out.pk);
            for ev in &pk {
                match *ev {
                    PkEvent::Dateline { msg, mask } => match self.packets.get_mut(msg) {
                        Some(st) => st.crossed_dateline |= mask,
                        None => debug_assert!(false, "dateline hop by unregistered packet"),
                    },
                    PkEvent::Delivered { msg } => {
                        let st = self.packets.remove(msg);
                        debug_assert!(st.is_some(), "delivered packet must be registered");
                    }
                }
            }
            pk.clear();
            out.pk = pk;
        }
        // Merge per-shard counter and observability deltas, published
        // once — the hot loops stay free of shared-counter traffic.
        let mut obs = ObsDeltas::default();
        let mut moves_routed = 0u64;
        for out in &outs {
            self.counters.flits_moved += out.counters.flits_moved;
            self.counters.flits_delivered += out.counters.flits_delivered;
            self.counters.packets_delivered += out.counters.packets_delivered;
            self.counters.packets_injected += out.counters.packets_injected;
            self.counters.flits_injected += out.counters.flits_injected;
            self.materialized += out.materialized;
            obs.allocs += out.obs.allocs;
            obs.stalls += out.obs.stalls;
            obs.burst_flits += out.obs.burst_flits;
            moves_routed += out.moves_routed;
        }
        mdd_obs::counter_add(CounterId::FlitsRouted, moves_routed);
        mdd_obs::counter_add(CounterId::VcAllocs, obs.allocs);
        mdd_obs::counter_add(CounterId::VcStalls, obs.stalls);
        mdd_obs::counter_add(CounterId::LinkBurstFlits, obs.burst_flits);
        mdd_obs::counter_add(CounterId::ShardMailboxFlits, mailbox_effects);
        mdd_obs::counter_add(
            CounterId::ShardBarrierWaits,
            (nshards as u64).saturating_sub(1),
        );
        self.shard_scratch = outs;
    }
}

/// What one full allocation attempt did — feeds the router's sleep
/// decision.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AllocOutcome {
    /// A route (network output VC or ejection reservation) was granted.
    Granted,
    /// Every candidate output VC is owner-busy; the stall is memoized.
    StalledTransit,
    /// The destination NIC refused admission; must be re-asked each cycle.
    StalledAtDst,
}

/// Debug-build shadow machinery: every [`Network::step`] is re-executed by
/// a literal four-phase reference pipeline on a pre-cycle snapshot, with
/// endpoint interactions recorded during the real (fused) pass and
/// replayed to the reference; the two end states must match field by
/// field. This checks the fused pass, the stall memo, the blocked-timer
/// patch rules and the link tables against the phased semantics every
/// single cycle of every debug run.
#[cfg(debug_assertions)]
mod shadow {
    use super::*;

    /// One recorded endpoint interaction of the real pass.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub(super) enum EjEvent {
        Accept { nic: NicId, msg: MsgHandle, ok: bool },
        Flit { nic: NicId, msg: MsgHandle },
        Packet { nic: NicId, msg: MsgHandle, injected_at: u64 },
    }

    /// Wraps the real [`EjectControl`], recording the interaction log.
    pub(super) struct RecordEj<'a> {
        pub(super) inner: &'a mut dyn EjectControl,
        pub(super) log: Vec<EjEvent>,
    }

    impl EjectControl for RecordEj<'_> {
        fn can_accept(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) -> bool {
            let ok = self.inner.can_accept(nic, msg, cycle);
            self.log.push(EjEvent::Accept { nic, msg, ok });
            ok
        }
        fn deliver_flit(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) {
            self.log.push(EjEvent::Flit { nic, msg });
            self.inner.deliver_flit(nic, msg, cycle);
        }
        fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, injected_at: u64, cycle: u64) {
            self.log.push(EjEvent::Packet { nic, msg, injected_at });
            self.inner.deliver_packet(nic, msg, injected_at, cycle);
        }
    }

    /// Per-shard endpoint recorder for [`Network::step_sharded`].
    /// `can_accept` events and delivery events are kept in separate
    /// logs: the sharded schedule runs each shard's allocation pass
    /// before its traversal, so the global reference order is all
    /// accepts (shard order == router-ascending) followed by all
    /// deliveries (same) — [`Network::step_sharded`] concatenates the
    /// logs accordingly before replaying the reference.
    pub(super) struct ShardRecordEj<E> {
        inner: E,
        pub(super) accepts: Vec<EjEvent>,
        pub(super) delivers: Vec<EjEvent>,
    }

    impl<E: EjectControl> ShardRecordEj<E> {
        pub(super) fn new(inner: E) -> Self {
            ShardRecordEj {
                inner,
                accepts: Vec::new(),
                delivers: Vec::new(),
            }
        }
    }

    impl<E: EjectControl> EjectControl for ShardRecordEj<E> {
        fn can_accept(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) -> bool {
            let ok = self.inner.can_accept(nic, msg, cycle);
            self.accepts.push(EjEvent::Accept { nic, msg, ok });
            ok
        }
        fn deliver_flit(&mut self, nic: NicId, msg: MsgHandle, cycle: u64) {
            self.delivers.push(EjEvent::Flit { nic, msg });
            self.inner.deliver_flit(nic, msg, cycle);
        }
        fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, injected_at: u64, cycle: u64) {
            self.delivers.push(EjEvent::Packet { nic, msg, injected_at });
            self.inner.deliver_packet(nic, msg, injected_at, cycle);
        }
    }

    /// Replays a recorded log to the reference pipeline, asserting the
    /// call sequences are identical.
    struct ReplayEj<'a> {
        log: &'a [EjEvent],
        pos: usize,
    }

    impl EjectControl for ReplayEj<'_> {
        fn can_accept(&mut self, nic: NicId, msg: MsgHandle, _cycle: u64) -> bool {
            let ev = self.log.get(self.pos).copied();
            self.pos += 1;
            match ev {
                Some(EjEvent::Accept { nic: n, msg: m, ok }) if n == nic && m == msg => ok,
                other => panic!(
                    "shadow: reference asked can_accept({nic:?}, {msg:?}) but the \
                     real pass recorded {other:?}"
                ),
            }
        }
        fn deliver_flit(&mut self, nic: NicId, msg: MsgHandle, _cycle: u64) {
            let ev = self.log.get(self.pos).copied();
            self.pos += 1;
            assert_eq!(
                ev,
                Some(EjEvent::Flit { nic, msg }),
                "shadow: flit delivery sequences diverged"
            );
        }
        fn deliver_packet(&mut self, nic: NicId, msg: MsgHandle, injected_at: u64, _cycle: u64) {
            let ev = self.log.get(self.pos).copied();
            self.pos += 1;
            assert_eq!(
                ev,
                Some(EjEvent::Packet { nic, msg, injected_at }),
                "shadow: packet delivery sequences diverged"
            );
        }
    }

    /// Reusable snapshot + reference-pipeline scratch (all allocations
    /// are reused across cycles via `clone_from`).
    #[derive(Default, Debug)]
    pub(super) struct Scratch {
        routers: Vec<Option<Box<Router>>>,
        packets: PacketTable,
        counters: NetworkCounters,
        router_flits: Vec<u32>,
        active_bits: Vec<u64>,
        pub(super) ej_log: Vec<EjEvent>,
        cand: Vec<RouteCandidate>,
        moves: Vec<Move>,
    }

    impl Scratch {
        /// Capture the pre-cycle state of every worklist-relevant field.
        /// (`Option<Box<Router>>::clone_from` reuses the chunk allocation
        /// when both sides are materialized, so steady state stays
        /// allocation-free.)
        pub(super) fn snapshot(&mut self, net: &Network) {
            self.routers.clone_from(&net.routers);
            self.packets.clone_from(&net.packets);
            self.counters = net.counters;
            self.router_flits.clone_from(&net.router_flits);
            self.active_bits.clone_from(&net.active_bits);
            self.ej_log.clear();
        }

        /// Reference-side router access: the reference pipeline only
        /// touches woken routers and their link neighbors, all of which
        /// the snapshot holds materialized (or materializes on arrival in
        /// [`Scratch::ref_apply_moves`], mirroring the real pass).
        fn router_mut(&mut self, r: usize) -> &mut Router {
            self.routers[r]
                .as_deref_mut()
                .expect("reference touched an unmaterialized router")
        }

        /// Run the phased reference pipeline on the snapshot and compare
        /// its end state against the fused pipeline's (`net`, already
        /// advanced).
        pub(super) fn run_reference_and_compare(
            &mut self,
            net: &Network,
            cycle: u64,
            routing: &dyn Routing,
        ) {
            let log = std::mem::take(&mut self.ej_log);
            let mut ej = ReplayEj { log: &log, pos: 0 };
            self.ref_alloc_phase(net, cycle, routing, &mut ej);
            self.ref_switch_phase(net);
            self.ref_apply_moves(net, cycle, &mut ej);
            self.ref_blocked_sweep(net, cycle);
            assert_eq!(
                ej.pos,
                log.len(),
                "shadow: the fused pass performed more endpoint calls than the reference"
            );
            self.ej_log = log;
            self.compare(net, cycle);
        }

        /// Reference phase 1: route computation & output-VC allocation,
        /// rotated occupancy order, full candidate recomputation (no stall
        /// memo).
        fn ref_alloc_phase(
            &mut self,
            net: &Network,
            cycle: u64,
            routing: &dyn Routing,
            ej: &mut dyn EjectControl,
        ) {
            let nvcs = net.vcs as usize;
            for &r in &net.worklist {
                let r = r as usize;
                let node = NodeId(r as u32);
                let router = self.router_mut(r);
                router.sync_rr_alloc(cycle);
                let total = router.ports() * nvcs;
                let start = router.rr_alloc as usize % total;
                let occ = router.in_occ;
                let low = occ & ((1u128 << start) - 1);
                let mut high = occ ^ low;
                let mut pending = low;
                loop {
                    let idx = if high != 0 {
                        let i = high.trailing_zeros() as usize;
                        high &= high - 1;
                        i
                    } else if pending != 0 {
                        let i = pending.trailing_zeros() as usize;
                        pending &= pending - 1;
                        i
                    } else {
                        break;
                    };
                    let router = self.routers[r].as_deref().expect("woken router");
                    if router.route_port[idx] != NO_ROUTE {
                        continue;
                    }
                    let front = router.front_flit(idx).expect("occupied slot");
                    if !front.is_head() {
                        continue;
                    }
                    let h = front.msg;
                    let Some(pkt) = self.packets.get(h).copied() else {
                        continue;
                    };
                    self.cand.clear();
                    let hint = cycle
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((r as u64) << 8)
                        .wrapping_add(idx as u64);
                    routing.candidates(&net.topo, node, &pkt, hint, &mut self.cand);
                    for ci in 0..self.cand.len() {
                        let c = self.cand[ci];
                        if let Some(local) = net.topo.port_local_index(c.port) {
                            let nic = net.topo.nic_at(node, local);
                            if ej.can_accept(nic, h, cycle) {
                                let router = self.router_mut(r);
                                router.route_port[idx] = c.port.0;
                                router.route_vc[idx] = 0;
                                break;
                            }
                        } else {
                            let out_slot = c.port.index() * nvcs + c.vc as usize;
                            let router = self.router_mut(r);
                            if router.out_free(out_slot) {
                                router.own_out(out_slot, h);
                                router.route_port[idx] = c.port.0;
                                router.route_vc[idx] = c.vc;
                                break;
                            }
                        }
                    }
                }
                let router = self.router_mut(r);
                router.rr_alloc = router.rr_alloc.wrapping_add(1);
                router.rr_cycle = cycle + 1;
            }
        }

        /// Reference phase 2: switch allocation — requests gathered in
        /// ascending slot order, then per-port round-robin grants.
        fn ref_switch_phase(&mut self, net: &Network) {
            self.moves.clear();
            let nvcs = net.vcs as usize;
            for &r in &net.worklist {
                let r = r as usize;
                let router = self.routers[r].as_deref_mut().expect("woken router");
                let total = router.ports() * nvcs;
                let mut reqs: Vec<(usize, u8, u8)> = Vec::new();
                let mut port_mask = 0u64;
                let mut occ = router.in_occ;
                while occ != 0 {
                    let idx = occ.trailing_zeros() as usize;
                    occ &= occ - 1;
                    if router.route_port[idx] != NO_ROUTE {
                        port_mask |= 1 << router.route_port[idx];
                        reqs.push((idx, router.route_port[idx], router.route_vc[idx]));
                    }
                }
                let mut in_used = [false; 64];
                while port_mask != 0 {
                    let q = port_mask.trailing_zeros() as usize;
                    port_mask &= port_mask - 1;
                    let rr = router.rr_out[q] as usize % total;
                    let mut best: Option<(usize, usize, u8)> = None;
                    for &(idx, op, ov) in &reqs {
                        if op as usize != q || in_used[idx / nvcs] {
                            continue;
                        }
                        if net.net_port[q] && router.out_credits[q * nvcs + ov as usize] == 0 {
                            continue;
                        }
                        let rank = (idx + total - rr) % total;
                        if best.is_none_or(|(b, _, _)| rank < b) {
                            best = Some((rank, idx, ov));
                        }
                    }
                    if let Some((_, idx, ov)) = best {
                        in_used[idx / nvcs] = true;
                        router.rr_out[q] = ((idx + 1) % total) as u32;
                        self.moves.push(Move {
                            router: r as u32,
                            in_port: (idx / nvcs) as u8,
                            in_vc: (idx % nvcs) as u8,
                            out_port: q as u8,
                            out_vc: ov,
                        });
                    }
                }
            }
        }

        /// Reference phase 3: link traversal via direct topology queries
        /// (independently validating the link tables).
        fn ref_apply_moves(&mut self, net: &Network, cycle: u64, ej: &mut dyn EjectControl) {
            let nvcs = net.vcs as usize;
            for mi in 0..self.moves.len() {
                let Move { router: r, in_port, in_vc, out_port, out_vc } = self.moves[mi];
                let r = r as usize;
                let node = NodeId(r as u32);
                let in_slot = in_port as usize * nvcs + in_vc as usize;
                let router = self.router_mut(r);
                let flit = router.pop_flit(in_slot);
                router.blocked[in_slot] = NOT_BLOCKED;
                if flit.is_tail {
                    router.route_port[in_slot] = NO_ROUTE;
                }
                self.router_flits[r] -= 1;
                if let Some((d, dir)) = net.topo.port_dim_dir(PortId(in_port)) {
                    let up = net.topo.neighbor(node, d, dir).expect("input link exists");
                    let upport = net.topo.port(d, dir.opposite());
                    let up_slot = upport.index() * nvcs + in_vc as usize;
                    self.router_mut(up.index()).out_credits[up_slot] += 1;
                    self.active_bits[up.index() >> 6] |= 1 << (up.index() & 63);
                }
                let out = PortId(out_port);
                if let Some((d2, dir2)) = net.topo.port_dim_dir(out) {
                    let out_slot = out_port as usize * nvcs + out_vc as usize;
                    let router = self.router_mut(r);
                    router.vc_busy[out_slot] += 1;
                    router.out_credits[out_slot] -= 1;
                    if flit.is_tail {
                        router.release_out(out_slot);
                    }
                    if flit.is_head() && net.topo.crosses_dateline(node, d2, dir2) {
                        if let Some(st) = self.packets.get_mut(flit.msg) {
                            st.crossed_dateline |= 1 << d2;
                        }
                    }
                    let down = net.topo.neighbor(node, d2, dir2).expect("output link exists");
                    let dport = net.topo.port(d2, dir2.opposite());
                    let down_slot = dport.index() * nvcs + out_vc as usize;
                    // Mirror the real pass's arrival materialization: a
                    // fresh chunk is pristine-identical whichever side
                    // creates it.
                    let down_router = self.routers[down.index()]
                        .get_or_insert_with(|| Box::new(net.pristine.as_ref().clone()));
                    down_router.push_flit(down_slot, flit);
                    self.router_flits[down.index()] += 1;
                    self.active_bits[down.index() >> 6] |= 1 << (down.index() & 63);
                } else {
                    let local = net.topo.port_local_index(out).expect("local port");
                    let nic = net.topo.nic_at(node, local);
                    if flit.is_tail {
                        let st = self.packets.remove(flit.msg).expect("registered packet");
                        self.counters.packets_delivered += 1;
                        ej.deliver_packet(nic, st.msg, st.injected_at, cycle);
                    } else {
                        ej.deliver_flit(nic, flit.msg, cycle);
                    }
                    self.counters.flits_delivered += 1;
                }
                self.counters.flits_moved += 1;
            }
        }

        /// Reference phase 4: the trailing blocked-timer sweep.
        fn ref_blocked_sweep(&mut self, net: &Network, cycle: u64) {
            for &r in &net.worklist {
                let router = self.router_mut(r as usize);
                let mut occ = router.in_occ;
                while occ != 0 {
                    let idx = occ.trailing_zeros() as usize;
                    occ &= occ - 1;
                    if router.blocked[idx] == NOT_BLOCKED {
                        router.blocked[idx] = cycle;
                    }
                }
            }
        }

        /// Compare the reference end state against the fused pipeline's.
        /// The memoization clocks (`stall_epoch`, `alloc_epoch`) are
        /// excluded: they are fused-pass bookkeeping with no phased
        /// counterpart.
        fn compare(&self, net: &Network, cycle: u64) {
            assert_eq!(self.counters, net.counters, "shadow: counters diverged at {cycle}");
            assert_eq!(
                self.router_flits, net.router_flits,
                "shadow: per-router flit counts diverged at {cycle}"
            );
            assert_eq!(
                self.active_bits, net.active_bits,
                "shadow: wake sets diverged at {cycle}"
            );
            assert!(
                self.packets == net.packets,
                "shadow: packet tables diverged at {cycle}"
            );
            for (r, (sa, sb)) in self.routers.iter().zip(&net.routers).enumerate() {
                let (a, b) = match (sa.as_deref(), sb.as_deref()) {
                    (Some(a), Some(b)) => (a, b),
                    (None, None) => continue,
                    (a, b) => panic!(
                        "shadow: router {r} materialization diverged at {cycle} \
                         (reference {:?}, fused {:?})",
                        a.map(|_| "materialized"),
                        b.map(|_| "materialized"),
                    ),
                };
                assert_eq!(a.in_occ, b.in_occ, "shadow: router {r} occupancy at {cycle}");
                assert_eq!(a.head, b.head, "shadow: router {r} ring heads at {cycle}");
                assert_eq!(a.len, b.len, "shadow: router {r} buffer lengths at {cycle}");
                assert_eq!(a.bufs, b.bufs, "shadow: router {r} flit buffers at {cycle}");
                assert_eq!(
                    a.route_port, b.route_port,
                    "shadow: router {r} route ports at {cycle}"
                );
                // route_vc is only meaningful where a route is set.
                for s in 0..a.route_vc.len() {
                    if a.route_port[s] != NO_ROUTE {
                        assert_eq!(
                            a.route_vc[s], b.route_vc[s],
                            "shadow: router {r} route vc slot {s} at {cycle}"
                        );
                    }
                }
                assert_eq!(a.blocked, b.blocked, "shadow: router {r} blocked timers at {cycle}");
                assert_eq!(a.out_owned, b.out_owned, "shadow: router {r} ownership at {cycle}");
                let mut owned = a.out_owned;
                while owned != 0 {
                    let s = owned.trailing_zeros() as usize;
                    owned &= owned - 1;
                    assert_eq!(
                        a.out_owner[s], b.out_owner[s],
                        "shadow: router {r} out-VC {s} owner at {cycle}"
                    );
                }
                assert_eq!(a.out_credits, b.out_credits, "shadow: router {r} credits at {cycle}");
                assert_eq!(a.vc_busy, b.vc_busy, "shadow: router {r} vc_busy at {cycle}");
                assert_eq!(a.rr_out, b.rr_out, "shadow: router {r} rr_out at {cycle}");
                assert_eq!(a.rr_alloc, b.rr_alloc, "shadow: router {r} rr_alloc at {cycle}");
                assert_eq!(a.rr_cycle, b.rr_cycle, "shadow: router {r} rr_cycle at {cycle}");
            }
        }
    }
}
