//! Per-router state: input virtual channels, output virtual channels and
//! arbitration pointers.

use crate::vc::{OutVc, Vc};
use mdd_topology::PortId;

/// One wormhole router: `ports_per_router` input ports and output ports,
/// each with `vcs` virtual channels.
///
/// Virtual channels are stored flat, indexed `port * vcs + vc`, so the
/// per-cycle allocation and switch scans walk contiguous memory instead
/// of chasing a `Vec` per port.
#[derive(Clone, Debug)]
pub struct Router {
    pub(crate) in_vcs: Vec<Vc>,
    pub(crate) out_vcs: Vec<OutVc>,
    /// Round-robin pointer per output port, rotating switch-allocation
    /// priority over `(input port, vc)` requesters.
    pub(crate) rr_out: Vec<u32>,
    /// Rotation offset for the VC-allocation scan, advanced every cycle to
    /// avoid structural starvation.
    pub(crate) rr_alloc: u32,
    /// First cycle whose `rr_alloc` advancement has not yet been applied.
    /// The dense scan bumped `rr_alloc` once per cycle for every router;
    /// the activity-driven scan instead catches a woken router up lazily
    /// ([`Router::sync_rr_alloc`]) so its rotation offset is bit-identical
    /// to what the dense schedule would have produced.
    pub(crate) rr_cycle: u64,
    /// Occupancy bitmask over input-VC slots: bit `s` is set iff
    /// `in_vcs[s].buf` is non-empty. Maintained at every flit push, pop
    /// and extraction so the per-cycle scans visit only occupied slots;
    /// scanning set bits in (rotated) ascending order reproduces the
    /// dense full-array scan exactly, because every slot the dense scan
    /// would act on holds at least one flit.
    pub(crate) in_occ: u128,
    nvcs: u8,
}

impl Router {
    /// Create a router with `ports` ports, `vcs` VCs per port, and
    /// `buf_depth`-flit input buffers per VC.
    pub fn new(ports: usize, vcs: u8, buf_depth: u32) -> Self {
        let slots = ports * vcs as usize;
        assert!(slots <= 128, "occupancy bitmask supports at most 128 VC slots per router");
        Router {
            in_vcs: (0..slots).map(|_| Vc::new(buf_depth)).collect(),
            out_vcs: (0..slots).map(|_| OutVc::new(buf_depth)).collect(),
            rr_out: vec![0; ports],
            rr_alloc: 0,
            rr_cycle: 0,
            in_occ: 0,
            nvcs: vcs,
        }
    }

    /// Record that slot `slot` just received a flit.
    #[inline]
    pub(crate) fn occ_mark(&mut self, slot: usize) {
        self.in_occ |= 1 << slot;
    }

    /// Re-derive slot `slot`'s occupancy bit after flits left its buffer.
    #[inline]
    pub(crate) fn occ_sync(&mut self, slot: usize) {
        if self.in_vcs[slot].buf.is_empty() {
            self.in_occ &= !(1 << slot);
        }
    }

    /// Apply the per-cycle `rr_alloc` advancement for every cycle since
    /// this router was last processed, up to (but not including) `cycle`.
    /// Call before reading `rr_alloc` in the allocation phase; follow with
    /// the regular end-of-cycle increment.
    #[inline]
    pub(crate) fn sync_rr_alloc(&mut self, cycle: u64) {
        let lag = cycle.saturating_sub(self.rr_cycle);
        if lag > 0 {
            self.rr_alloc = self.rr_alloc.wrapping_add(lag as u32);
            self.rr_cycle = cycle;
        }
    }

    /// Number of ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.rr_out.len()
    }

    /// Virtual channels per port.
    #[inline]
    pub fn vcs(&self) -> u8 {
        self.nvcs
    }

    /// Flat index of `(port, vc)` into the VC arrays.
    #[inline]
    pub(crate) fn slot(&self, port: usize, vc: usize) -> usize {
        port * self.nvcs as usize + vc
    }

    /// Read access to an input VC.
    #[inline]
    pub fn vc(&self, port: PortId, vc: u8) -> &Vc {
        &self.in_vcs[self.slot(port.index(), vc as usize)]
    }

    /// Read access to an output VC.
    #[inline]
    pub fn out_vc(&self, port: PortId, vc: u8) -> &OutVc {
        &self.out_vcs[self.slot(port.index(), vc as usize)]
    }

    /// Total buffered flits across all input VCs.
    pub fn buffered_flits(&self) -> u32 {
        self.in_vcs.iter().map(|v| v.buf.len() as u32).sum()
    }

    /// Iterate `(port, vc_index, vc)` over all input VCs.
    pub fn iter_vcs(&self) -> impl Iterator<Item = (PortId, u8, &Vc)> {
        let nvcs = self.nvcs as usize;
        self.in_vcs
            .iter()
            .enumerate()
            .map(move |(i, vc)| (PortId((i / nvcs) as u8), (i % nvcs) as u8, vc))
    }
}
