//! Per-router state in structure-of-arrays form: input virtual channels,
//! output virtual channels and arbitration pointers.
//!
//! Every per-VC field lives in its own contiguous array indexed by the
//! flat slot `port * vcs + vc`, so each pipeline sweep (occupancy walk,
//! route gather, credit check, blocked-timer mark) touches exactly one
//! cache-resident array per field instead of striding through a
//! buffer-sized record per slot. Flit storage is one flat ring
//! (`buf_depth` entries per slot), so block operations — burst extraction
//! runs, the debug shadow snapshot — are plain `memcpy`-shaped moves.

use crate::flit::Flit;
use crate::vc::{OutVc, VcRef};
use mdd_protocol::MsgHandle;
use mdd_topology::PortId;

/// `route_port` sentinel: no route allocated.
pub(crate) const NO_ROUTE: u8 = u8::MAX;
/// `blocked` sentinel: the slot's front flit is not (yet) blocked.
pub(crate) const NOT_BLOCKED: u64 = u64::MAX;
/// `stall_epoch` sentinel: no memoized allocation stall.
pub(crate) const EPOCH_NONE: u64 = u64::MAX;

/// One wormhole router: `ports_per_router` input ports and output ports,
/// each with `vcs` virtual channels, stored as structure-of-arrays.
///
/// Flat slot index `port * vcs + vc` addresses every per-VC array. Public
/// read access goes through the [`VcRef`] / [`OutVc`] views:
///
/// ```
/// use mdd_router::Router;
/// use mdd_topology::PortId;
///
/// let r = Router::new(5, 2, 2);
/// assert_eq!(r.ports(), 5);
/// assert_eq!(r.vcs(), 2);
/// let vc = r.vc(PortId(3), 1);
/// assert_eq!(vc.capacity(), 2);
/// assert_eq!(vc.free_slots(), 2);
/// assert!(vc.front().is_none() && vc.route().is_none());
/// let ovc = r.out_vc(PortId(3), 1);
/// assert!(ovc.is_free());
/// assert_eq!(ovc.credits, 2);
/// ```
#[derive(Debug)]
pub struct Router {
    /// Flat ring flit storage: slot `s` owns `bufs[s*depth .. (s+1)*depth]`.
    pub(crate) bufs: Vec<Flit>,
    /// Ring head offset of each slot's FIFO (`< depth`).
    pub(crate) head: Vec<u16>,
    /// Buffered flits per slot (`<= depth`).
    pub(crate) len: Vec<u16>,
    /// Allocated output port of the front packet ([`NO_ROUTE`] = none).
    pub(crate) route_port: Vec<u8>,
    /// Allocated output VC of the front packet (valid iff routed).
    pub(crate) route_vc: Vec<u8>,
    /// First cycle the front flit failed to advance ([`NOT_BLOCKED`] =
    /// making progress). Drives the deadlock-detection timers.
    pub(crate) blocked: Vec<u64>,
    /// Allocation-stall memo: the [`Router::alloc_epoch`] at which this
    /// slot's head last found every candidate output VC owned. While the
    /// epoch still matches, the whole candidate recomputation is skipped —
    /// no output VC on this router has been released since, so the stall
    /// outcome is unchanged by construction. Invalidated ([`EPOCH_NONE`])
    /// whenever the slot's front flit changes.
    pub(crate) stall_epoch: Vec<u64>,
    /// Owner of each output VC — valid only where [`Router::out_owned`]
    /// has the bit set (placeholder handles elsewhere).
    pub(crate) out_owner: Vec<MsgHandle>,
    /// Credits (free downstream buffer slots) per output VC.
    pub(crate) out_credits: Vec<u32>,
    /// Validity mask over `out_owner`: bit `s` set iff output VC `s` is
    /// owned by a packet.
    pub(crate) out_owned: u128,
    /// Round-robin pointer per output port, rotating switch-allocation
    /// priority over `(input port, vc)` requesters.
    pub(crate) rr_out: Vec<u32>,
    /// Rotation offset for the VC-allocation scan, advanced every cycle to
    /// avoid structural starvation.
    pub(crate) rr_alloc: u32,
    /// First cycle whose `rr_alloc` advancement has not yet been applied.
    /// The dense scan bumped `rr_alloc` once per cycle for every router;
    /// the activity-driven scan instead catches a woken router up lazily
    /// ([`Router::sync_rr_alloc`]) so its rotation offset is bit-identical
    /// to what the dense schedule would have produced.
    pub(crate) rr_cycle: u64,
    /// Occupancy bitmask over input-VC slots: bit `s` is set iff slot `s`
    /// buffers at least one flit. Maintained at every flit push, pop and
    /// extraction so the fused pass visits only occupied slots; scanning
    /// set bits in (rotated) ascending order reproduces the dense
    /// full-array scan exactly, because every slot the dense scan would
    /// act on holds at least one flit.
    pub(crate) in_occ: u128,
    /// Bumped every time an output VC owner is released (tail passage,
    /// extraction). Validity clock for [`Router::stall_epoch`].
    pub(crate) alloc_epoch: u64,
    /// Busy cycles per output VC slot (network ports only are ever
    /// incremented). Lives in the router chunk — not a network-wide dense
    /// array — so a never-woken router contributes zero bytes.
    pub(crate) vc_busy: Vec<u64>,
    nvcs: u8,
    depth: u16,
}

impl Router {
    /// Create a router with `ports` ports, `vcs` VCs per port, and
    /// `buf_depth`-flit input buffers per VC.
    pub fn new(ports: usize, vcs: u8, buf_depth: u32) -> Self {
        let slots = ports * vcs as usize;
        assert!(slots <= 128, "occupancy bitmask supports at most 128 VC slots per router");
        assert!(buf_depth <= u16::MAX as u32, "flit buffers deeper than 65535 are unsupported");
        let depth = buf_depth as u16;
        Router {
            bufs: vec![
                Flit {
                    msg: MsgHandle::dangling(),
                    seq: 0,
                    is_tail: false,
                };
                slots * depth as usize
            ],
            head: vec![0; slots],
            len: vec![0; slots],
            route_port: vec![NO_ROUTE; slots],
            route_vc: vec![0; slots],
            blocked: vec![NOT_BLOCKED; slots],
            stall_epoch: vec![EPOCH_NONE; slots],
            out_owner: vec![MsgHandle::dangling(); slots],
            out_credits: vec![buf_depth; slots],
            out_owned: 0,
            rr_out: vec![0; ports],
            rr_alloc: 0,
            rr_cycle: 0,
            in_occ: 0,
            alloc_epoch: 0,
            vc_busy: vec![0; slots],
            nvcs: vcs,
            depth,
        }
    }

    /// Restore every field to the freshly-constructed state without
    /// releasing any allocation — the free-pool recycle path of the lazily
    /// materialized network. A recycled chunk must be indistinguishable
    /// from [`Router::new`]'s output (the debug shadow checker compares
    /// whole arrays, dead buffer entries included), so the flit store is
    /// refilled with the same placeholder pattern.
    pub(crate) fn reset(&mut self) {
        self.bufs.fill(Flit {
            msg: MsgHandle::dangling(),
            seq: 0,
            is_tail: false,
        });
        self.head.fill(0);
        self.len.fill(0);
        self.route_port.fill(NO_ROUTE);
        self.route_vc.fill(0);
        self.blocked.fill(NOT_BLOCKED);
        self.stall_epoch.fill(EPOCH_NONE);
        self.out_owner.fill(MsgHandle::dangling());
        self.out_credits.fill(self.depth as u32);
        self.out_owned = 0;
        self.rr_out.fill(0);
        self.rr_alloc = 0;
        self.rr_cycle = 0;
        self.in_occ = 0;
        self.alloc_epoch = 0;
        self.vc_busy.fill(0);
    }

    /// Heap + inline bytes held by this router's state chunk — the unit
    /// behind the `router_state_bytes` observability gauge.
    pub fn state_bytes(&self) -> u64 {
        use std::mem::size_of;
        (size_of::<Self>()
            + self.bufs.capacity() * size_of::<Flit>()
            + self.head.capacity() * size_of::<u16>()
            + self.len.capacity() * size_of::<u16>()
            + self.route_port.capacity()
            + self.route_vc.capacity()
            + self.blocked.capacity() * size_of::<u64>()
            + self.stall_epoch.capacity() * size_of::<u64>()
            + self.out_owner.capacity() * size_of::<MsgHandle>()
            + self.out_credits.capacity() * size_of::<u32>()
            + self.rr_out.capacity() * size_of::<u32>()
            + self.vc_busy.capacity() * size_of::<u64>()) as u64
    }

    /// Append an arriving flit to slot `slot`. Panics on overflow —
    /// credits must prevent this. Marks occupancy and, when the buffer was
    /// empty (the flit becomes the front), invalidates the stall memo.
    #[inline]
    pub(crate) fn push_flit(&mut self, slot: usize, flit: Flit) {
        let depth = self.depth as usize;
        let len = self.len[slot] as usize;
        assert!(len < depth, "VC buffer overflow: credit accounting violated");
        let pos = slot * depth + (self.head[slot] as usize + len) % depth;
        self.bufs[pos] = flit;
        self.len[slot] = (len + 1) as u16;
        if len == 0 {
            self.in_occ |= 1 << slot;
            self.stall_epoch[slot] = EPOCH_NONE;
        }
    }

    /// Remove and return slot `slot`'s front flit. The front changes, so
    /// the stall memo is invalidated; occupancy is re-derived.
    #[inline]
    pub(crate) fn pop_flit(&mut self, slot: usize) -> Flit {
        let depth = self.depth as usize;
        debug_assert!(self.len[slot] > 0, "pop from empty VC buffer");
        let flit = self.bufs[slot * depth + self.head[slot] as usize];
        self.head[slot] = ((self.head[slot] as usize + 1) % depth) as u16;
        self.len[slot] -= 1;
        if self.len[slot] == 0 {
            self.in_occ &= !(1 << slot);
        }
        self.stall_epoch[slot] = EPOCH_NONE;
        flit
    }

    /// Slot `slot`'s front flit, if any.
    #[inline]
    pub(crate) fn front_flit(&self, slot: usize) -> Option<Flit> {
        if self.len[slot] == 0 {
            None
        } else {
            Some(self.bufs[slot * self.depth as usize + self.head[slot] as usize])
        }
    }

    /// The `k`-th buffered flit of slot `slot` (0 = front). Caller
    /// guarantees `k < len`.
    #[inline]
    pub(crate) fn flit_at(&self, slot: usize, k: usize) -> Flit {
        let depth = self.depth as usize;
        debug_assert!(k < self.len[slot] as usize);
        self.bufs[slot * depth + (self.head[slot] as usize + k) % depth]
    }

    /// Remove the contiguous run `[run_start, run_start + run_len)` of
    /// buffered flits from slot `slot` in one block operation: a front run
    /// is a head advance, a back run a length cut, and a middle run one
    /// block shift of the tail — never a per-flit `retain` walk.
    pub(crate) fn remove_run(&mut self, slot: usize, run_start: usize, run_len: usize) {
        let depth = self.depth as usize;
        let len = self.len[slot] as usize;
        debug_assert!(run_len > 0 && run_start + run_len <= len);
        if run_start == 0 {
            // Front run: advance the ring head, no data movement.
            self.head[slot] = ((self.head[slot] as usize + run_len) % depth) as u16;
        } else {
            // Shift the tail of the FIFO over the removed run (a no-op for
            // a back run: the loop body never executes).
            for k in run_start..(len - run_len) {
                let src = slot * depth + (self.head[slot] as usize + k + run_len) % depth;
                let dst = slot * depth + (self.head[slot] as usize + k) % depth;
                self.bufs[dst] = self.bufs[src];
            }
        }
        self.len[slot] = (len - run_len) as u16;
        if self.len[slot] == 0 {
            self.in_occ &= !(1 << slot);
        }
        self.stall_epoch[slot] = EPOCH_NONE;
    }

    /// The front packet's allocated route, if any.
    #[inline]
    pub(crate) fn route_of(&self, slot: usize) -> Option<(PortId, u8)> {
        if self.route_port[slot] == NO_ROUTE {
            None
        } else {
            Some((PortId(self.route_port[slot]), self.route_vc[slot]))
        }
    }

    /// True if output VC `slot` is unowned (a new packet may allocate it).
    #[inline]
    pub(crate) fn out_free(&self, slot: usize) -> bool {
        self.out_owned >> slot & 1 == 0
    }

    /// Record `h` as the owner of output VC `slot`.
    #[inline]
    pub(crate) fn own_out(&mut self, slot: usize, h: MsgHandle) {
        self.out_owner[slot] = h;
        self.out_owned |= 1 << slot;
    }

    /// Release output VC `slot`. Advances the allocation epoch: a freed
    /// output VC is the only event that can turn a previously stalled
    /// allocation into a success, so every memoized stall on this router
    /// expires here.
    #[inline]
    pub(crate) fn release_out(&mut self, slot: usize) {
        self.out_owned &= !(1 << slot);
        self.alloc_epoch += 1;
    }

    /// Apply the per-cycle `rr_alloc` advancement for every cycle since
    /// this router was last processed, up to (but not including) `cycle`.
    /// Call before reading `rr_alloc` in the allocation phase; follow with
    /// the regular end-of-cycle increment.
    #[inline]
    pub(crate) fn sync_rr_alloc(&mut self, cycle: u64) {
        let lag = cycle.saturating_sub(self.rr_cycle);
        if lag > 0 {
            self.rr_alloc = self.rr_alloc.wrapping_add(lag as u32);
            self.rr_cycle = cycle;
        }
    }

    /// Number of ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.rr_out.len()
    }

    /// Virtual channels per port.
    #[inline]
    pub fn vcs(&self) -> u8 {
        self.nvcs
    }

    /// Flit-buffer depth per VC.
    #[inline]
    pub fn buf_depth(&self) -> u32 {
        self.depth as u32
    }

    /// Flat index of `(port, vc)` into the VC arrays.
    #[inline]
    pub(crate) fn slot(&self, port: usize, vc: usize) -> usize {
        port * self.nvcs as usize + vc
    }

    /// Read view of an input VC.
    ///
    /// ```
    /// use mdd_router::Router;
    /// use mdd_topology::PortId;
    /// let r = Router::new(4, 2, 2);
    /// assert!(r.vc(PortId(2), 0).front().is_none());
    /// assert_eq!(r.vc(PortId(2), 0).blocked_for(100), 0);
    /// ```
    #[inline]
    pub fn vc(&self, port: PortId, vc: u8) -> VcRef<'_> {
        VcRef::new(self, self.slot(port.index(), vc as usize))
    }

    /// Snapshot of an output VC's state (owner and credits).
    ///
    /// ```
    /// use mdd_router::Router;
    /// use mdd_topology::PortId;
    /// let r = Router::new(4, 2, 2);
    /// let out = r.out_vc(PortId(1), 1);
    /// assert!(out.is_free());                  // no wormhole holds it yet
    /// assert_eq!(out.credits, r.buf_depth());  // downstream buffer empty
    /// ```
    #[inline]
    pub fn out_vc(&self, port: PortId, vc: u8) -> OutVc {
        let slot = self.slot(port.index(), vc as usize);
        OutVc {
            owner: if self.out_free(slot) {
                None
            } else {
                Some(self.out_owner[slot])
            },
            credits: self.out_credits[slot],
        }
    }

    /// Total buffered flits across all input VCs.
    pub fn buffered_flits(&self) -> u32 {
        self.len.iter().map(|&l| l as u32).sum()
    }

    /// Iterate `(port, vc_index, vc view)` over all input VCs.
    ///
    /// ```
    /// use mdd_router::Router;
    /// let r = Router::new(3, 4, 2);
    /// assert_eq!(r.iter_vcs().count(), 3 * 4); // every (port, vc) slot
    /// assert!(r.iter_vcs().all(|(_, _, vc)| vc.is_empty()));
    /// ```
    pub fn iter_vcs(&self) -> impl Iterator<Item = (PortId, u8, VcRef<'_>)> {
        let nvcs = self.nvcs as usize;
        (0..self.len.len())
            .map(move |i| (PortId((i / nvcs) as u8), (i % nvcs) as u8, VcRef::new(self, i)))
    }
}

impl Clone for Router {
    fn clone(&self) -> Self {
        Router {
            bufs: self.bufs.clone(),
            head: self.head.clone(),
            len: self.len.clone(),
            route_port: self.route_port.clone(),
            route_vc: self.route_vc.clone(),
            blocked: self.blocked.clone(),
            stall_epoch: self.stall_epoch.clone(),
            out_owner: self.out_owner.clone(),
            out_credits: self.out_credits.clone(),
            out_owned: self.out_owned,
            rr_out: self.rr_out.clone(),
            rr_alloc: self.rr_alloc,
            rr_cycle: self.rr_cycle,
            in_occ: self.in_occ,
            alloc_epoch: self.alloc_epoch,
            vc_busy: self.vc_busy.clone(),
            nvcs: self.nvcs,
            depth: self.depth,
        }
    }

    /// Allocation-free in steady state: every backing `Vec` is reused via
    /// `clone_from` (the debug shadow check snapshots all routers each
    /// cycle, so this path is hot in debug builds).
    fn clone_from(&mut self, source: &Self) {
        self.bufs.clone_from(&source.bufs);
        self.head.clone_from(&source.head);
        self.len.clone_from(&source.len);
        self.route_port.clone_from(&source.route_port);
        self.route_vc.clone_from(&source.route_vc);
        self.blocked.clone_from(&source.blocked);
        self.stall_epoch.clone_from(&source.stall_epoch);
        self.out_owner.clone_from(&source.out_owner);
        self.out_credits.clone_from(&source.out_credits);
        self.out_owned = source.out_owned;
        self.rr_out.clone_from(&source.rr_out);
        self.rr_alloc = source.rr_alloc;
        self.rr_cycle = source.rr_cycle;
        self.in_occ = source.in_occ;
        self.alloc_epoch = source.alloc_epoch;
        self.vc_busy.clone_from(&source.vc_busy);
        self.nvcs = source.nvcs;
        self.depth = source.depth;
    }
}
