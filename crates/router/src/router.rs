//! Per-router state: input virtual channels, output virtual channels and
//! arbitration pointers.

use crate::vc::{OutVc, Vc};
use mdd_topology::PortId;

/// One wormhole router: `ports_per_router` input ports and output ports,
/// each with `vcs` virtual channels.
#[derive(Clone, Debug)]
pub struct Router {
    pub(crate) in_vcs: Vec<Vec<Vc>>,
    pub(crate) out_vcs: Vec<Vec<OutVc>>,
    /// Round-robin pointer per output port, rotating switch-allocation
    /// priority over `(input port, vc)` requesters.
    pub(crate) rr_out: Vec<u32>,
    /// Rotation offset for the VC-allocation scan, advanced every cycle to
    /// avoid structural starvation.
    pub(crate) rr_alloc: u32,
}

impl Router {
    /// Create a router with `ports` ports, `vcs` VCs per port, and
    /// `buf_depth`-flit input buffers per VC.
    pub fn new(ports: usize, vcs: u8, buf_depth: u32) -> Self {
        Router {
            in_vcs: (0..ports)
                .map(|_| (0..vcs).map(|_| Vc::new(buf_depth)).collect())
                .collect(),
            out_vcs: (0..ports)
                .map(|_| (0..vcs).map(|_| OutVc::new(buf_depth)).collect())
                .collect(),
            rr_out: vec![0; ports],
            rr_alloc: 0,
        }
    }

    /// Number of ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.in_vcs.len()
    }

    /// Virtual channels per port.
    #[inline]
    pub fn vcs(&self) -> u8 {
        self.in_vcs[0].len() as u8
    }

    /// Read access to an input VC.
    #[inline]
    pub fn vc(&self, port: PortId, vc: u8) -> &Vc {
        &self.in_vcs[port.index()][vc as usize]
    }

    /// Read access to an output VC.
    #[inline]
    pub fn out_vc(&self, port: PortId, vc: u8) -> &OutVc {
        &self.out_vcs[port.index()][vc as usize]
    }

    /// Total buffered flits across all input VCs.
    pub fn buffered_flits(&self) -> u32 {
        self.in_vcs
            .iter()
            .flatten()
            .map(|v| v.buf.len() as u32)
            .sum()
    }

    /// Iterate `(port, vc_index, vc)` over all input VCs.
    pub fn iter_vcs(&self) -> impl Iterator<Item = (PortId, u8, &Vc)> {
        self.in_vcs.iter().enumerate().flat_map(|(p, vcs)| {
            vcs.iter()
                .enumerate()
                .map(move |(v, vc)| (PortId(p as u8), v as u8, vc))
        })
    }
}
