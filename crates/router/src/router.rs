//! Per-router state: input virtual channels, output virtual channels and
//! arbitration pointers.

use crate::vc::{OutVc, Vc};
use mdd_topology::PortId;

/// One wormhole router: `ports_per_router` input ports and output ports,
/// each with `vcs` virtual channels.
///
/// Virtual channels are stored flat, indexed `port * vcs + vc`, so the
/// per-cycle allocation and switch scans walk contiguous memory instead
/// of chasing a `Vec` per port.
#[derive(Clone, Debug)]
pub struct Router {
    pub(crate) in_vcs: Vec<Vc>,
    pub(crate) out_vcs: Vec<OutVc>,
    /// Round-robin pointer per output port, rotating switch-allocation
    /// priority over `(input port, vc)` requesters.
    pub(crate) rr_out: Vec<u32>,
    /// Rotation offset for the VC-allocation scan, advanced every cycle to
    /// avoid structural starvation.
    pub(crate) rr_alloc: u32,
    nvcs: u8,
}

impl Router {
    /// Create a router with `ports` ports, `vcs` VCs per port, and
    /// `buf_depth`-flit input buffers per VC.
    pub fn new(ports: usize, vcs: u8, buf_depth: u32) -> Self {
        let slots = ports * vcs as usize;
        Router {
            in_vcs: (0..slots).map(|_| Vc::new(buf_depth)).collect(),
            out_vcs: (0..slots).map(|_| OutVc::new(buf_depth)).collect(),
            rr_out: vec![0; ports],
            rr_alloc: 0,
            nvcs: vcs,
        }
    }

    /// Number of ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.rr_out.len()
    }

    /// Virtual channels per port.
    #[inline]
    pub fn vcs(&self) -> u8 {
        self.nvcs
    }

    /// Flat index of `(port, vc)` into the VC arrays.
    #[inline]
    pub(crate) fn slot(&self, port: usize, vc: usize) -> usize {
        port * self.nvcs as usize + vc
    }

    /// Read access to an input VC.
    #[inline]
    pub fn vc(&self, port: PortId, vc: u8) -> &Vc {
        &self.in_vcs[self.slot(port.index(), vc as usize)]
    }

    /// Read access to an output VC.
    #[inline]
    pub fn out_vc(&self, port: PortId, vc: u8) -> &OutVc {
        &self.out_vcs[self.slot(port.index(), vc as usize)]
    }

    /// Total buffered flits across all input VCs.
    pub fn buffered_flits(&self) -> u32 {
        self.in_vcs.iter().map(|v| v.buf.len() as u32).sum()
    }

    /// Iterate `(port, vc_index, vc)` over all input VCs.
    pub fn iter_vcs(&self) -> impl Iterator<Item = (PortId, u8, &Vc)> {
        let nvcs = self.nvcs as usize;
        self.in_vcs
            .iter()
            .enumerate()
            .map(move |(i, vc)| (PortId((i / nvcs) as u8), (i % nvcs) as u8, vc))
    }
}
