//! Open-loop synthetic request generation.

use crate::source::TrafficSource;
use mdd_protocol::{IdAlloc, Message, MessageStore, MsgHandle, PatternSpec};
use mdd_topology::NicId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Destination selection for original requests (the home node of the
/// transaction). The paper evaluates `Random` (Table 2); the others are
/// standard stress patterns provided for wider exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DestPattern {
    /// Uniform random over all other nodes.
    Random,
    /// Bit-complement of the source index.
    BitComplement,
    /// Transpose: node `i` sends to `(i * k + i / k) mod N` style partner
    /// (matrix-transpose permutation over a square node grid).
    Transpose,
    /// Uniform random, except a `fraction` of requests target one hotspot
    /// node.
    Hotspot {
        /// The favoured node.
        node: u32,
        /// Per-mille of requests directed at the hotspot.
        permille: u16,
    },
}

/// Per-node Bernoulli request generator with unbounded source queues
/// (open-loop: applied load is independent of network acceptance, the
/// standard Burton-Normal-Form methodology).
///
/// ```
/// use mdd_traffic::{SyntheticTraffic, DestPattern, TrafficSource};
/// use mdd_protocol::{PatternSpec, IdAlloc};
/// use std::sync::Arc;
/// let pat = Arc::new(PatternSpec::pat100()); // 24 flits per transaction
/// let mut tr = SyntheticTraffic::new(pat, 64, 0.24, DestPattern::Random, 7);
/// assert!((tr.txn_rate() - 0.01).abs() < 1e-12);
/// let mut ids = IdAlloc::new();
/// let mut store = mdd_protocol::MessageStore::new();
/// for c in 0..100 { tr.tick(c, &mut ids, &mut store); }
/// assert!(tr.generated() > 0);
/// ```
#[derive(Debug)]
pub struct SyntheticTraffic {
    pattern: Arc<PatternSpec>,
    txn_rate: f64,
    dest: DestPattern,
    rng: StdRng,
    pending: Vec<VecDeque<MsgHandle>>,
    num_nics: u32,
    /// Transactions generated so far.
    pub generated: u64,
}

impl SyntheticTraffic {
    /// A generator over `num_nics` nodes at `load` flits/node/cycle of
    /// applied traffic (counting all messages of each transaction).
    pub fn new(
        pattern: Arc<PatternSpec>,
        num_nics: u32,
        load: f64,
        dest: DestPattern,
        seed: u64,
    ) -> Self {
        assert!(num_nics >= 2, "traffic needs at least two endpoints");
        let txn_rate = load / pattern.flits_per_txn();
        SyntheticTraffic {
            pattern,
            txn_rate,
            dest,
            rng: StdRng::seed_from_u64(seed),
            pending: (0..num_nics).map(|_| VecDeque::new()).collect(),
            num_nics,
            generated: 0,
        }
    }

    /// Transactions per node per cycle implied by the applied load.
    pub fn txn_rate(&self) -> f64 {
        self.txn_rate
    }

    /// Generate this cycle's new requests into the per-node source queues.
    pub fn tick(&mut self, cycle: u64, ids: &mut IdAlloc, store: &mut MessageStore) {
        for src in 0..self.num_nics {
            if self.rng.random::<f64>() >= self.txn_rate {
                continue;
            }
            let msg = self.make_request(NicId(src), cycle, ids);
            self.pending[src as usize].push_back(store.insert(msg));
            self.generated += 1;
        }
    }

    /// Build one original request from `src` at `cycle`.
    pub fn make_request(&mut self, src: NicId, cycle: u64, ids: &mut IdAlloc) -> Message {
        // Field-disjoint borrows (pattern shared, rng mutable) make the
        // old defensive `Arc` clone unnecessary; RNG draw order (shape,
        // home, owner) is load-bearing for reproducibility.
        let shape_id = self.pattern.sample_shape(&mut self.rng);
        let uses_owner = self.pattern.shape(shape_id).uses_owner();
        let home = self.pick_dest(src);
        let owner = if uses_owner {
            self.pick_third(src, home)
        } else {
            home
        };
        let mtype = self.pattern.shape(shape_id).mtype(0);
        Message {
            id: ids.next_msg(),
            txn: ids.next_txn(),
            mtype,
            shape: shape_id,
            chain_pos: 0,
            src,
            dst: home,
            requester: src,
            home,
            owner,
            length_flits: self.pattern.protocol().length(mtype),
            created: cycle,
            is_backoff: false,
            rescued: false,
            sharers: 0,
        }
    }

    fn pick_dest(&mut self, src: NicId) -> NicId {
        let n = self.num_nics;
        match self.dest {
            DestPattern::Random => {
                let mut d = self.rng.random_range(0..n - 1);
                if d >= src.0 {
                    d += 1;
                }
                NicId(d)
            }
            DestPattern::BitComplement => {
                let bits = 32 - (n - 1).leading_zeros();
                let d = (!src.0) & ((1 << bits) - 1);
                NicId(if d == src.0 || d >= n { (src.0 + 1) % n } else { d })
            }
            DestPattern::Transpose => {
                let k = (n as f64).sqrt() as u32;
                let (x, y) = (src.0 % k, src.0 / k);
                let d = x * k + y;
                NicId(if d == src.0 || d >= n { (src.0 + 1) % n } else { d })
            }
            DestPattern::Hotspot { node, permille } => {
                if self.rng.random_range(0..1000) < permille as u32 && node != src.0 {
                    NicId(node)
                } else {
                    let mut d = self.rng.random_range(0..n - 1);
                    if d >= src.0 {
                        d += 1;
                    }
                    NicId(d)
                }
            }
        }
    }

    fn pick_third(&mut self, a: NicId, b: NicId) -> NicId {
        let n = self.num_nics;
        if n <= 2 {
            return b;
        }
        loop {
            let d = NicId(self.rng.random_range(0..n));
            if d != a && d != b {
                return d;
            }
        }
    }

}

impl TrafficSource for SyntheticTraffic {
    fn tick(&mut self, cycle: u64, ids: &mut IdAlloc, store: &mut MessageStore) {
        SyntheticTraffic::tick(self, cycle, ids, store);
    }

    fn pending_head(&self, nic: NicId) -> Option<MsgHandle> {
        self.pending[nic.index()].front().copied()
    }

    fn pop_pending(&mut self, nic: NicId) -> Option<MsgHandle> {
        self.pending[nic.index()].pop_front()
    }

    fn backlog(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    fn generated(&self) -> u64 {
        self.generated
    }

    /// With a positive rate the per-node Bernoulli draws happen every
    /// cycle and their order is load-bearing (skipping a tick would shift
    /// the RNG stream for every later draw), so the source must run at
    /// `from`. At rate zero no draw can ever fire or influence anything,
    /// so ticks may be skipped wholesale.
    fn next_arrival_cycle(&self, from: u64) -> u64 {
        if self.txn_rate <= 0.0 {
            u64::MAX
        } else {
            from
        }
    }
}
