//! Open-loop synthetic request generation.

use crate::source::TrafficSource;
use mdd_protocol::{IdAlloc, Message, MessageStore, MsgHandle, PatternSpec};
use mdd_topology::NicId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Destination selection for original requests (the home node of the
/// transaction). The paper evaluates `Random` (Table 2); the others are
/// standard stress patterns provided for wider exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DestPattern {
    /// Uniform random over all other nodes.
    Random,
    /// Bit-complement of the source index.
    BitComplement,
    /// Transpose: node `i` sends to `(i * k + i / k) mod N` style partner
    /// (matrix-transpose permutation over a square node grid).
    Transpose,
    /// Ring successor in NIC index order (`src + 1 mod N`): a
    /// locality-preserving permutation whose hop count stays constant as
    /// the network scales — the scale ladder's fixed-per-node-activity
    /// pattern. (Uniform random traffic grows its average path length
    /// with the radix, so the same per-node injection rate loads a large
    /// torus far more heavily per link.)
    Neighbor,
    /// Uniform random, except a `fraction` of requests target one hotspot
    /// node.
    Hotspot {
        /// The favoured node.
        node: u32,
        /// Per-mille of requests directed at the hotspot.
        permille: u16,
    },
}

/// Per-node Bernoulli request generator with unbounded source queues
/// (open-loop: applied load is independent of network acceptance, the
/// standard Burton-Normal-Form methodology).
///
/// ```
/// use mdd_traffic::{SyntheticTraffic, DestPattern, TrafficSource};
/// use mdd_protocol::{PatternSpec, IdAlloc};
/// use std::sync::Arc;
/// let pat = Arc::new(PatternSpec::pat100()); // 24 flits per transaction
/// let mut tr = SyntheticTraffic::new(pat, 64, 0.24, DestPattern::Random, 7);
/// assert!((tr.txn_rate() - 0.01).abs() < 1e-12);
/// let mut ids = IdAlloc::new();
/// let mut store = mdd_protocol::MessageStore::new();
/// for c in 0..100 { tr.tick(c, &mut ids, &mut store); }
/// assert!(tr.generated() > 0);
/// ```
#[derive(Debug)]
pub struct SyntheticTraffic {
    pattern: Arc<PatternSpec>,
    txn_rate: f64,
    dest: DestPattern,
    rng: StdRng,
    pending: Vec<VecDeque<MsgHandle>>,
    num_nics: u32,
    /// Sparse-arrival event queue: `Some` holds `(next arrival cycle,
    /// src)` entries, one per node, ordered so same-cycle arrivals pop in
    /// ascending source order. `None` is the dense per-cycle Bernoulli
    /// mode (one RNG draw per node per cycle — the original, golden-
    /// pinned stream).
    arrivals: Option<std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>>,
    /// Occupancy bitmap over `pending`: bit `i` set ⟺ queue `i` is
    /// non-empty. Lets the simulator's issue loop visit only NICs with
    /// queued requests instead of polling all of them every cycle.
    pending_bits: Vec<u64>,
    /// Transactions generated so far.
    pub generated: u64,
}

impl SyntheticTraffic {
    /// A generator over `num_nics` nodes at `load` flits/node/cycle of
    /// applied traffic (counting all messages of each transaction).
    pub fn new(
        pattern: Arc<PatternSpec>,
        num_nics: u32,
        load: f64,
        dest: DestPattern,
        seed: u64,
    ) -> Self {
        assert!(num_nics >= 2, "traffic needs at least two endpoints");
        let txn_rate = load / pattern.flits_per_txn();
        SyntheticTraffic {
            pattern,
            txn_rate,
            dest,
            rng: StdRng::seed_from_u64(seed),
            pending: (0..num_nics).map(|_| VecDeque::new()).collect(),
            num_nics,
            arrivals: None,
            pending_bits: vec![0; (num_nics as usize).div_ceil(64)],
            generated: 0,
        }
    }

    /// Queue one generated request at `src`, keeping the occupancy bitmap
    /// in sync.
    fn queue_pending(&mut self, src: u32, h: MsgHandle) {
        self.pending[src as usize].push_back(h);
        self.pending_bits[src as usize / 64] |= 1 << (src % 64);
        self.generated += 1;
    }

    /// Switch to sparse event-driven arrivals: per-node inter-arrival
    /// gaps are sampled geometrically (the same Bernoulli process, drawn
    /// as waiting times), so generation costs O(arrivals) per cycle
    /// instead of one RNG draw per node per cycle, and
    /// [`next_arrival_cycle`](TrafficSource::next_arrival_cycle) becomes
    /// exact — a quiescent stretch can be fast-forwarded even while
    /// generation is on. The realized arrival *process* has the same
    /// distribution as the dense mode but a different RNG stream, so
    /// results are reproducible per mode, not across modes; golden-pinned
    /// configurations keep the dense default.
    pub fn sparse_arrivals(mut self) -> Self {
        let mut heap = std::collections::BinaryHeap::with_capacity(self.num_nics as usize);
        for src in 0..self.num_nics {
            let gap = self.sample_gap();
            heap.push(std::cmp::Reverse((gap, src)));
        }
        self.arrivals = Some(heap);
        self
    }

    /// Cycles until the next arrival of one node's Bernoulli(`txn_rate`)
    /// process: a geometric waiting time (0 = fires on the very next
    /// opportunity).
    fn sample_gap(&mut self) -> u64 {
        if self.txn_rate >= 1.0 {
            return 0;
        }
        let u: f64 = self.rng.random();
        // ln(1-u) ∈ (-inf, 0]; ln(1-p) < 0. u ∈ [0, 1) keeps both finite.
        let gap = ((1.0 - u).ln() / (1.0 - self.txn_rate).ln()).floor();
        if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        }
    }

    /// Transactions per node per cycle implied by the applied load.
    pub fn txn_rate(&self) -> f64 {
        self.txn_rate
    }

    /// Generate this cycle's new requests into the per-node source queues.
    pub fn tick(&mut self, cycle: u64, ids: &mut IdAlloc, store: &mut MessageStore) {
        if self.arrivals.is_some() {
            // Pop every arrival due by now (ascending source order within
            // a cycle); entries stranded in the past by a generation
            // pause fire once immediately.
            while let Some(&std::cmp::Reverse((due, src))) =
                self.arrivals.as_ref().expect("checked above").peek()
            {
                if due > cycle {
                    break;
                }
                self.arrivals.as_mut().expect("checked above").pop();
                let msg = self.make_request(NicId(src), cycle, ids);
                let h = store.insert(msg);
                self.queue_pending(src, h);
                let gap = self.sample_gap();
                self.arrivals
                    .as_mut()
                    .expect("checked above")
                    .push(std::cmp::Reverse((cycle + 1 + gap, src)));
            }
            return;
        }
        if self.txn_rate <= 0.0 {
            return;
        }
        for src in 0..self.num_nics {
            if self.rng.random::<f64>() >= self.txn_rate {
                continue;
            }
            let msg = self.make_request(NicId(src), cycle, ids);
            let h = store.insert(msg);
            self.queue_pending(src, h);
        }
    }

    /// Build one original request from `src` at `cycle`.
    pub fn make_request(&mut self, src: NicId, cycle: u64, ids: &mut IdAlloc) -> Message {
        // Field-disjoint borrows (pattern shared, rng mutable) make the
        // old defensive `Arc` clone unnecessary; RNG draw order (shape,
        // home, owner) is load-bearing for reproducibility.
        let shape_id = self.pattern.sample_shape(&mut self.rng);
        let uses_owner = self.pattern.shape(shape_id).uses_owner();
        let home = self.pick_dest(src);
        let owner = if uses_owner {
            self.pick_third(src, home)
        } else {
            home
        };
        let mtype = self.pattern.shape(shape_id).mtype(0);
        Message {
            id: ids.next_msg(),
            txn: ids.next_txn(),
            mtype,
            shape: shape_id,
            chain_pos: 0,
            src,
            dst: home,
            requester: src,
            home,
            owner,
            length_flits: self.pattern.protocol().length(mtype),
            created: cycle,
            is_backoff: false,
            rescued: false,
            sharers: 0,
        }
    }

    fn pick_dest(&mut self, src: NicId) -> NicId {
        let n = self.num_nics;
        match self.dest {
            DestPattern::Random => {
                let mut d = self.rng.random_range(0..n - 1);
                if d >= src.0 {
                    d += 1;
                }
                NicId(d)
            }
            DestPattern::BitComplement => {
                let bits = 32 - (n - 1).leading_zeros();
                let d = (!src.0) & ((1 << bits) - 1);
                NicId(if d == src.0 || d >= n { (src.0 + 1) % n } else { d })
            }
            DestPattern::Transpose => {
                let k = (n as f64).sqrt() as u32;
                let (x, y) = (src.0 % k, src.0 / k);
                let d = x * k + y;
                NicId(if d == src.0 || d >= n { (src.0 + 1) % n } else { d })
            }
            DestPattern::Neighbor => NicId((src.0 + 1) % n),
            DestPattern::Hotspot { node, permille } => {
                if self.rng.random_range(0..1000) < permille as u32 && node != src.0 {
                    NicId(node)
                } else {
                    let mut d = self.rng.random_range(0..n - 1);
                    if d >= src.0 {
                        d += 1;
                    }
                    NicId(d)
                }
            }
        }
    }

    fn pick_third(&mut self, a: NicId, b: NicId) -> NicId {
        let n = self.num_nics;
        if n <= 2 {
            return b;
        }
        loop {
            let d = NicId(self.rng.random_range(0..n));
            if d != a && d != b {
                return d;
            }
        }
    }

}

impl TrafficSource for SyntheticTraffic {
    fn tick(&mut self, cycle: u64, ids: &mut IdAlloc, store: &mut MessageStore) {
        SyntheticTraffic::tick(self, cycle, ids, store);
    }

    fn pending_head(&self, nic: NicId) -> Option<MsgHandle> {
        self.pending[nic.index()].front().copied()
    }

    fn pop_pending(&mut self, nic: NicId) -> Option<MsgHandle> {
        let h = self.pending[nic.index()].pop_front();
        if self.pending[nic.index()].is_empty() {
            self.pending_bits[nic.index() / 64] &= !(1 << (nic.0 % 64));
        }
        h
    }

    fn backlog(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    fn pending_sources(&self, out: &mut Vec<NicId>) -> bool {
        out.clear();
        for (w, &word) in self.pending_bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                out.push(NicId((w * 64) as u32 + word.trailing_zeros()));
                word &= word - 1;
            }
        }
        true
    }

    fn generated(&self) -> u64 {
        self.generated
    }

    /// In dense mode with a positive rate the per-node Bernoulli draws
    /// happen every cycle and their order is load-bearing (skipping a
    /// tick would shift the RNG stream for every later draw), so the
    /// source must run at `from`. At rate zero no draw can ever fire or
    /// influence anything, so ticks may be skipped wholesale. Sparse mode
    /// ([`SyntheticTraffic::sparse_arrivals`]) knows its next arrival
    /// exactly.
    fn next_arrival_cycle(&self, from: u64) -> u64 {
        if self.txn_rate <= 0.0 {
            return u64::MAX;
        }
        match &self.arrivals {
            // Sparse mode schedules arrivals ahead of time, so the next
            // one is known exactly and idle stretches can be jumped.
            Some(heap) => heap
                .peek()
                .map_or(u64::MAX, |&std::cmp::Reverse((due, _))| due.max(from)),
            None => from,
        }
    }
}
