//! # mdd-traffic
//!
//! Workload substrate: the open-loop synthetic request generators used for
//! the performance evaluation (Section 4.3) and the calibrated application
//! models that stand in for the paper's RSIM/Splash-2 execution traces
//! (Section 4.2) — see DESIGN.md for the substitution rationale.
//!
//! The synthetic generator injects original requests (the first message
//! type of every dependency chain) at a configurable rate; all subordinate
//! messages are produced by the endpoints as transactions unfold, exactly
//! as in FlexSim. Applied load is specified in flits/node/cycle and
//! converted to a per-node transaction rate through the pattern's expected
//! flits per transaction.

#![warn(missing_docs)]

mod apps;
mod source;
mod synthetic;
mod trace;

pub use apps::{AppModel, AppPhase};
pub use source::TrafficSource;
pub use synthetic::{DestPattern, SyntheticTraffic};
pub use trace::{TraceEvent, TraceLog};

#[cfg(test)]
mod tests;
