//! The traffic-source abstraction the simulator drives.

use mdd_protocol::{IdAlloc, MessageStore, MsgHandle};
use mdd_topology::NicId;

/// A source of original request messages. The simulator calls [`tick`]
/// once per cycle, then moves messages from each node's source queue into
/// the NIC as MSHRs/queue space permit (open-loop: the source queue is
/// unbounded, so applied load is independent of acceptance).
///
/// Generated messages live in the simulation's [`MessageStore`]; the
/// source queues hold only their handles.
///
/// [`tick`]: TrafficSource::tick
pub trait TrafficSource: Send {
    /// Generate this cycle's new requests into per-node source queues,
    /// inserting each message into `store`.
    fn tick(&mut self, cycle: u64, ids: &mut IdAlloc, store: &mut MessageStore);

    /// Peek the head of `nic`'s source queue.
    fn pending_head(&self, nic: NicId) -> Option<MsgHandle>;

    /// Pop the head of `nic`'s source queue.
    fn pop_pending(&mut self, nic: NicId) -> Option<MsgHandle>;

    /// Total requests waiting in source queues.
    fn backlog(&self) -> usize;

    /// Fill `out` (cleared first) with every NIC whose source queue is
    /// non-empty, in ascending NIC order, and return `true`. The default
    /// returns `false` with `out` untouched, meaning the source does not
    /// track queue occupancy and the caller must poll every NIC's
    /// [`TrafficSource::pending_head`] densely. An override must report
    /// exactly the set the dense poll would find non-empty, so issue
    /// order (and with it all downstream state) is bit-identical.
    fn pending_sources(&self, out: &mut Vec<NicId>) -> bool {
        let _ = out;
        false
    }

    /// Transactions generated so far.
    fn generated(&self) -> u64;

    /// Earliest cycle `>= from` at which [`TrafficSource::tick`] might
    /// generate a request or otherwise needs to run. The default returns
    /// `from` (the source must be ticked every cycle). A source may
    /// return a later cycle **only** when skipping its ticks over
    /// `from..answer` leaves all observable state — including any RNG
    /// stream whose draws could ever influence later output —
    /// bit-identical; the simulator uses this to fast-forward fully
    /// quiescent stretches.
    fn next_arrival_cycle(&self, from: u64) -> u64 {
        from
    }
}
