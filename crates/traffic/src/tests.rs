//! Tests for workload generation.

use crate::*;
use mdd_protocol::{IdAlloc, MessageStore, PatternSpec};
use mdd_topology::NicId;
use std::sync::Arc;

#[test]
fn generation_rate_matches_load() {
    let pat = Arc::new(PatternSpec::pat100());
    // PAT100: 24 flits per transaction. Load 0.24 flits/node/cycle =>
    // 0.01 transactions/node/cycle.
    let mut tr = SyntheticTraffic::new(pat, 64, 0.24, DestPattern::Random, 42);
    assert!((tr.txn_rate() - 0.01).abs() < 1e-12);
    let mut ids = IdAlloc::new();
    let mut store = MessageStore::new();
    let cycles = 20_000u64;
    for c in 0..cycles {
        tr.tick(c, &mut ids, &mut store);
    }
    let expected = 0.01 * 64.0 * cycles as f64;
    let got = tr.generated as f64;
    assert!(
        (got - expected).abs() < expected * 0.05,
        "generated {got}, expected ≈{expected}"
    );
}

#[test]
fn requests_are_well_formed() {
    let pat = Arc::new(PatternSpec::pat271());
    let mut tr = SyntheticTraffic::new(pat.clone(), 16, 0.2, DestPattern::Random, 7);
    let mut ids = IdAlloc::new();
    for i in 0..500 {
        let m = tr.make_request(NicId(i % 16), 0, &mut ids);
        assert_ne!(m.dst, m.src, "never self-addressed");
        assert_eq!(m.requester, m.src);
        assert_eq!(m.home, m.dst);
        assert_eq!(m.chain_pos, 0);
        let shape = pat.shape(m.shape);
        assert_eq!(shape.mtype(0), m.mtype);
        if shape.uses_owner() {
            assert_ne!(m.owner, m.src);
            assert_ne!(m.owner, m.home);
        }
        assert_eq!(m.length_flits, pat.protocol().length(m.mtype));
    }
}

#[test]
fn pending_queue_fifo() {
    let pat = Arc::new(PatternSpec::pat100());
    let mut tr = SyntheticTraffic::new(pat, 4, 10.0, DestPattern::Random, 1);
    let mut ids = IdAlloc::new();
    let mut store = MessageStore::new();
    for c in 0..10 {
        tr.tick(c, &mut ids, &mut store);
    }
    assert!(tr.backlog() > 0, "rate 10 flits/cycle floods the queues");
    let first = tr.pending_head(NicId(0)).unwrap();
    let popped = tr.pop_pending(NicId(0)).unwrap();
    assert_eq!(popped, first);
    assert_eq!(store.get(popped).src, NicId(0));
}

#[test]
fn dest_patterns_never_self_address() {
    let pat = Arc::new(PatternSpec::pat100());
    let mut ids = IdAlloc::new();
    for dest in [
        DestPattern::Random,
        DestPattern::BitComplement,
        DestPattern::Transpose,
        DestPattern::Hotspot {
            node: 3,
            permille: 300,
        },
    ] {
        let mut tr = SyntheticTraffic::new(pat.clone(), 16, 0.2, dest, 11);
        for i in 0..200 {
            let m = tr.make_request(NicId(i % 16), 0, &mut ids);
            assert_ne!(m.dst, m.src, "{dest:?} self-addressed");
            assert!(m.dst.0 < 16);
        }
    }
}

#[test]
fn hotspot_concentrates_traffic() {
    let pat = Arc::new(PatternSpec::pat100());
    let mut tr = SyntheticTraffic::new(
        pat,
        16,
        0.2,
        DestPattern::Hotspot {
            node: 5,
            permille: 500,
        },
        13,
    );
    let mut ids = IdAlloc::new();
    let mut hits = 0;
    let n = 2000;
    for i in 0..n {
        let m = tr.make_request(NicId(i % 16), 0, &mut ids);
        if m.dst == NicId(5) {
            hits += 1;
        }
    }
    let frac = hits as f64 / n as f64;
    assert!(frac > 0.4, "hotspot fraction {frac} too low");
}

#[test]
fn app_models_match_published_characteristics() {
    for app in AppModel::all() {
        let total: f64 = app.phases.iter().map(|p| p.time_fraction).sum();
        assert!((total - 1.0).abs() < 1e-9, "{}: phases must sum to 1", app.name);
        assert!(app.avg_load() < 0.35, "{}: all apps stay below saturation", app.name);
    }
    // FFT/LU/Water stay under 5% of capacity for >= 92% of time (Fig. 6).
    for app in [AppModel::fft(), AppModel::lu(), AppModel::water()] {
        let low_time: f64 = app
            .phases
            .iter()
            .filter(|p| p.load_fraction < 0.05)
            .map(|p| p.time_fraction)
            .sum();
        assert!(low_time >= 0.92, "{}: low-load time {low_time}", app.name);
    }
    // Radix is the only one approaching saturation loads.
    assert!(AppModel::radix().avg_load() > 0.15);
    assert!(AppModel::radix().phases.iter().any(|p| p.load_fraction >= 0.30));
    // Water is sharing-heavy; the others are private-heavy.
    assert!(AppModel::water().p_private < 0.2);
    assert!(AppModel::fft().p_private > 0.9);
}

#[test]
fn app_load_schedule_lookup() {
    let app = AppModel::radix();
    assert!((app.load_at(0.0) - 0.045).abs() < 1e-9);
    assert!((app.load_at(0.5) - 0.27).abs() < 1e-9);
    assert!((app.load_at(0.9) - 0.30).abs() < 1e-9);
    assert!((app.load_at(0.9999) - 0.30).abs() < 1e-9);
}

#[test]
fn app_access_streams_are_deterministic_and_partitioned() {
    let app = AppModel::fft();
    let mut r1 = app.rng(9);
    let mut r2 = app.rng(9);
    for _ in 0..100 {
        assert_eq!(app.sample_access(3, 16, &mut r1), app.sample_access(3, 16, &mut r2));
    }
    // Private regions are disjoint across processors.
    let mut rng = app.rng(1);
    for _ in 0..500 {
        let (addr, _) = app.sample_access(2, 16, &mut rng);
        if addr >= app.shared_lines {
            let region = (addr - app.shared_lines) / app.private_lines;
            assert_eq!(region, 2, "private access must stay in own region");
        }
    }
}

#[test]
fn trace_roundtrip() {
    let mut log = TraceLog::new();
    for i in 0..50u64 {
        log.push(TraceEvent {
            cycle: i * 3,
            proc: (i % 16) as u32,
            addr: i * 7,
            write: i % 2 == 0,
        });
    }
    let mut buf = Vec::new();
    log.save(&mut buf).unwrap();
    let loaded = TraceLog::load(std::io::BufReader::new(&buf[..])).unwrap();
    assert_eq!(loaded.events(), log.events());
}

#[test]
fn trace_parser_rejects_garbage() {
    let bad = b"12 3 4 x\n" as &[u8];
    assert!(TraceLog::load(std::io::BufReader::new(bad)).is_err());
    let short = b"12 3\n" as &[u8];
    assert!(TraceLog::load(std::io::BufReader::new(short)).is_err());
    let ok = b"# comment\n\n12 3 4 w\n" as &[u8];
    assert_eq!(TraceLog::load(std::io::BufReader::new(ok)).unwrap().len(), 1);
}
