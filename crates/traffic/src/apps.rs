//! Calibrated Splash-2 application models.
//!
//! The paper drives its characterization (Section 4.2) with RSIM execution
//! traces of FFT, LU, Radix and Water on 16 processors. Those traces are
//! not available, so each application is modelled by (a) a *load profile* —
//! a piecewise-constant schedule of network load levels calibrated to the
//! published Figure 6 histograms — and (b) a *sharing model* — the mix of
//! private accesses, reads to shared data and writes to shared data,
//! calibrated so the directory engine reproduces the Table 1 response mix.
//! DESIGN.md records this substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One phase of an application's execution: a fraction of total runtime
/// spent at a given network load level.
#[derive(Clone, Copy, Debug)]
pub struct AppPhase {
    /// Fraction of the execution time (phases sum to 1).
    pub time_fraction: f64,
    /// Network load during the phase, as a fraction of network capacity.
    pub load_fraction: f64,
}

/// A synthetic application model.
#[derive(Clone, Debug)]
pub struct AppModel {
    /// Application name (matches the Splash-2 benchmark it models).
    pub name: &'static str,
    /// The load schedule (Figure 6 calibration).
    pub phases: Vec<AppPhase>,
    /// Probability an access touches private data (home-owned: a direct
    /// reply).
    pub p_private: f64,
    /// Probability an access is a *write* given it touches shared data
    /// (writes to shared lines invalidate sharers).
    pub p_write_shared: f64,
    /// Size of the shared working set in cache lines.
    pub shared_lines: u64,
    /// Size of each processor's private region in cache lines.
    pub private_lines: u64,
    /// Producer-consumer structure: `Some(p_produce)` gives each shared
    /// line a designated producer that writes it while other processors
    /// only read it — the access pattern of Water's per-molecule updates.
    /// With probability `p_produce` a shared access is the producer
    /// updating one of its own lines; otherwise it is a consumer read.
    /// `None` falls back to unstructured sharing.
    pub owner_affinity: Option<f64>,
    /// Probability a Modified line has been capacity-evicted (written
    /// back) at its owner by the time another node accesses it.
    pub writeback_rate: f64,
}

impl AppModel {
    /// FFT: nearly all accesses private / home-owned (Table 1: 98.7%
    /// direct replies), very low load (under 5% of capacity ~96% of time).
    pub fn fft() -> Self {
        AppModel {
            name: "FFT",
            phases: vec![
                AppPhase { time_fraction: 0.96, load_fraction: 0.02 },
                AppPhase { time_fraction: 0.04, load_fraction: 0.08 },
            ],
            p_private: 0.985,
            p_write_shared: 0.45,
            shared_lines: 64,
            private_lines: 4096,
            owner_affinity: None,
            writeback_rate: 0.2,
        }
    }

    /// LU: 96.5% direct replies, low load.
    pub fn lu() -> Self {
        AppModel {
            name: "LU",
            phases: vec![
                AppPhase { time_fraction: 0.97, load_fraction: 0.02 },
                AppPhase { time_fraction: 0.03, load_fraction: 0.06 },
            ],
            p_private: 0.960,
            p_write_shared: 0.50,
            shared_lines: 64,
            private_lines: 4096,
            owner_affinity: None,
            writeback_rate: 0.2,
        }
    }

    /// Radix: 95.5% direct replies but the highest load of the four
    /// (bursts to ~30% of capacity, average ~19%).
    pub fn radix() -> Self {
        AppModel {
            name: "Radix",
            phases: vec![
                AppPhase { time_fraction: 0.40, load_fraction: 0.045 },
                AppPhase { time_fraction: 0.30, load_fraction: 0.27 },
                AppPhase { time_fraction: 0.30, load_fraction: 0.30 },
            ],
            p_private: 0.950,
            p_write_shared: 0.55,
            shared_lines: 96,
            private_lines: 4096,
            owner_affinity: None,
            writeback_rate: 0.2,
        }
    }

    /// Water: heavy sharing — only 15.2% direct replies, 50.1%
    /// invalidations, 34.7% forwardings; low load.
    pub fn water() -> Self {
        AppModel {
            name: "Water",
            phases: vec![
                AppPhase { time_fraction: 0.92, load_fraction: 0.025 },
                AppPhase { time_fraction: 0.08, load_fraction: 0.06 },
            ],
            p_private: 0.05,
            p_write_shared: 0.05,
            shared_lines: 64,
            private_lines: 1024,
            owner_affinity: Some(0.55),
            writeback_rate: 0.05,
        }
    }

    /// The four modelled applications in the paper's order.
    pub fn all() -> Vec<AppModel> {
        vec![Self::fft(), Self::lu(), Self::radix(), Self::water()]
    }

    /// Expected (time-averaged) network load fraction.
    pub fn avg_load(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.time_fraction * p.load_fraction)
            .sum()
    }

    /// The load fraction in force at `progress` ∈ [0,1) of execution.
    pub fn load_at(&self, progress: f64) -> f64 {
        let mut acc = 0.0;
        for p in &self.phases {
            acc += p.time_fraction;
            if progress < acc {
                return p.load_fraction;
            }
        }
        self.phases.last().map_or(0.0, |p| p.load_fraction)
    }

    /// Sample one memory access for processor `proc` out of `nprocs`:
    /// returns `(cache line address, is_write)`. Private lines live in a
    /// per-processor region; shared lines are drawn from a common pool
    /// with a mild Zipf-like skew.
    pub fn sample_access(&self, proc: u32, nprocs: u32, rng: &mut StdRng) -> (u64, bool) {
        if rng.random::<f64>() < self.p_private {
            let line = rng.random_range(0..self.private_lines);
            // Private regions are disjoint per processor and placed after
            // the shared pool.
            let addr = self.shared_lines + proc as u64 * self.private_lines + line;
            // Private data: write ratio is irrelevant to coherence traffic
            // classification; use a typical 30%.
            (addr, rng.random::<f64>() < 0.3)
        } else if let Some(p_produce) = self.owner_affinity {
            if rng.random::<f64>() < p_produce {
                // The producer updates one of its own lines. Producer of
                // line `l` is `(l + shift) % nprocs` with a shift that
                // decorrelates producers from home nodes.
                let per = (self.shared_lines / nprocs as u64).max(1);
                let k = rng.random_range(0..per);
                let shift = nprocs as u64 / 2 + 1;
                let line = (k * nprocs as u64
                    + ((proc as u64 + nprocs as u64 - shift % nprocs as u64)
                        % nprocs as u64))
                    % self.shared_lines;
                (line, true)
            } else {
                // A consumer reads (occasionally writes) a line chosen
                // uniformly, so reads and producer updates stay balanced
                // per line (each update is consumed roughly once).
                let line = rng.random_range(0..self.shared_lines);
                (line, rng.random::<f64>() < self.p_write_shared)
            }
        } else {
            // Zipf-ish skew: squaring a uniform variate favours low lines.
            let u: f64 = rng.random();
            let line = ((u * u) * self.shared_lines as f64) as u64;
            let _ = nprocs;
            (line.min(self.shared_lines - 1), rng.random::<f64>() < self.p_write_shared)
        }
    }

    /// The designated producer of shared line `line` under owner-affinity.
    pub fn producer_of(&self, line: u64, nprocs: u32) -> u32 {
        let shift = nprocs as u64 / 2 + 1;
        ((line + shift) % nprocs as u64) as u32
    }

    /// A seeded RNG for this application (deterministic per name).
    pub fn rng(&self, seed: u64) -> StdRng {
        let mix = self
            .name
            .bytes()
            .fold(seed, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
        StdRng::seed_from_u64(mix)
    }
}
