//! A minimal trace format for recorded access streams.
//!
//! Traces preserve per-access timing so burstiness survives replay (the
//! paper records "all data accesses of each application ... along with
//! timing information in order to preserve traffic burstiness"). The
//! on-disk format is line-oriented text: `cycle proc addr r|w`.

use std::io::{BufRead, Write};

/// One recorded memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Issue cycle.
    pub cycle: u64,
    /// Issuing processor.
    pub proc: u32,
    /// Cache-line address.
    pub addr: u64,
    /// True for writes.
    pub write: bool,
}

/// An in-memory trace, ordered by cycle.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; events must be pushed in non-decreasing cycle
    /// order.
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.cycle <= ev.cycle),
            "trace events must be time-ordered"
        );
        self.events.push(ev);
    }

    /// All events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize to the line format.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for ev in &self.events {
            writeln!(
                w,
                "{} {} {} {}",
                ev.cycle,
                ev.proc,
                ev.addr,
                if ev.write { "w" } else { "r" }
            )?;
        }
        Ok(())
    }

    /// Parse from the line format. Malformed lines produce an error naming
    /// the line number.
    pub fn load<R: BufRead>(r: R) -> std::io::Result<TraceLog> {
        let mut log = TraceLog::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let cycle = field(parts.next(), i, "cycle")?
                .parse::<u64>()
                .map_err(|e| bad_line(i, &e))?;
            let proc = field(parts.next(), i, "proc")?
                .parse::<u32>()
                .map_err(|e| bad_line(i, &e))?;
            let addr = field(parts.next(), i, "addr")?
                .parse::<u64>()
                .map_err(|e| bad_line(i, &e))?;
            let write = match field(parts.next(), i, "r/w")? {
                "w" => true,
                "r" => false,
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("trace line {}: expected r or w, got {other}", i + 1),
                    ))
                }
            };
            log.push(TraceEvent {
                cycle,
                proc,
                addr,
                write,
            });
        }
        Ok(log)
    }
}

fn field<'a>(s: Option<&'a str>, i: usize, what: &str) -> std::io::Result<&'a str> {
    s.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("trace line {}: missing {what}", i + 1),
        )
    })
}

fn bad_line(i: usize, e: &dyn std::fmt::Display) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("trace line {}: {e}", i + 1),
    )
}
