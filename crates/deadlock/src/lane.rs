//! The recovery lane: exclusive pipelined transport over the ring of
//! deadlock buffers.

use mdd_protocol::MsgHandle;
use mdd_topology::{NodeId, RecoveryRing};

/// A completed lane transfer: the rescued message has fully arrived in the
/// destination NIC's deadlock message buffer.
#[derive(Clone, Copy, Debug)]
pub struct LaneDelivery {
    /// Handle of the rescued message (still owned by the store).
    pub msg: MsgHandle,
    /// Cycle at which the tail reached the destination DMB.
    pub arrived_at: u64,
}

/// The deadlock-buffer lane. At most one rescued packet occupies the lane
/// at any time (guaranteed by the token); a transfer of `L` flits over `d`
/// forward ring hops completes after `d·hop_latency + L` cycles.
#[derive(Debug)]
pub struct RecoveryLane {
    ring: RecoveryRing,
    hop_latency: u64,
    active: Option<(MsgHandle, NodeId, u64)>,
    /// Transfers completed over the lane's lifetime.
    pub transfers: u64,
    /// Total flits carried.
    pub flits_carried: u64,
}

impl RecoveryLane {
    /// Build a lane over `ring` with `hop_latency` cycles per ring hop
    /// (1 models a dedicated flit-wide lane; larger values model the token
    /// and rescued flits multiplexing over shared link bandwidth — the A3
    /// ablation).
    pub fn new(ring: RecoveryRing, hop_latency: u64) -> Self {
        assert!(hop_latency >= 1);
        RecoveryLane {
            ring,
            hop_latency,
            active: None,
            transfers: 0,
            flits_carried: 0,
        }
    }

    /// The ring order used by the lane (shared with the token tour).
    pub fn ring(&self) -> &RecoveryRing {
        &self.ring
    }

    /// Per-hop latency.
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// True while a transfer is in progress.
    pub fn busy(&self) -> bool {
        self.active.is_some()
    }

    /// Launch a transfer of `length_flits` flits from `src` to `dst` at
    /// cycle `now`; returns the arrival cycle. Panics if the lane is busy
    /// (the token excludes concurrent rescues).
    pub fn send(&mut self, msg: MsgHandle, length_flits: u32, src: NodeId, dst: NodeId, now: u64) -> u64 {
        assert!(self.active.is_none(), "recovery lane is exclusive");
        let d = self.ring.ring_distance(src, dst) as u64;
        let arrive = now + d * self.hop_latency + length_flits as u64;
        self.flits_carried += length_flits as u64;
        self.active = Some((msg, dst, arrive));
        arrive
    }

    /// Poll for arrival: returns the delivery once `now` reaches the
    /// arrival cycle.
    pub fn poll(&mut self, now: u64) -> Option<LaneDelivery> {
        match &self.active {
            Some((_, _, arrive)) if *arrive <= now => {
                let (msg, _, arrive) = self.active.take().unwrap();
                self.transfers += 1;
                Some(LaneDelivery {
                    msg,
                    arrived_at: arrive,
                })
            }
            _ => None,
        }
    }

    /// Latency for a control message (the token itself, 1 flit) from `a`
    /// to `b` along the ring.
    pub fn control_delay(&self, a: NodeId, b: NodeId) -> u64 {
        self.ring.ring_distance(a, b) as u64 * self.hop_latency + 1
    }
}
