//! # mdd-deadlock
//!
//! Deadlock machinery shared by the recovery schemes:
//!
//! * the **circulating token** of (Extended) Disha Sequential — it tours
//!   every router *and every network interface* (the paper's first
//!   extension over Disha), may be captured at either kind of stop, and is
//!   reused to deliver a rescued message's subordinates before being
//!   returned along the sender chain and finally re-released,
//! * the **recovery lane**: the unidirectional ring of per-router
//!   flit-sized deadlock buffers (DB) terminating in packet-sized deadlock
//!   message buffers (DMB) at the network interfaces. Because the token
//!   admits at most one rescued packet at a time, the lane is modelled as
//!   an exclusive pipelined transfer: a packet of `L` flits sent `d` ring
//!   hops arrives after `d·h + L` cycles (head pipeline fill plus body
//!   streaming), with `h` the configurable per-hop latency,
//! * the **wait-for graph** with Tarjan SCC + knot detection used as the
//!   ground-truth deadlock oracle (Warnakulasuriya & Pinkston's model: a
//!   deadlock corresponds to a knot — a strongly connected component with
//!   no escape arcs — in the resource wait-for graph), mirroring
//!   FlexSim 1.2's CWG-based detection (Section 4.1).

#![warn(missing_docs)]

mod cwg;
mod lane;
mod layout;
mod token;

pub use cwg::WaitForGraph;
pub use lane::{LaneDelivery, RecoveryLane};
pub use layout::{Resource, ResourceLayout};
pub use token::{CirculatingToken, TokenState};

#[cfg(test)]
mod tests;
