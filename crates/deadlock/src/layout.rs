//! Shared vertex layout and human-readable naming for resource graphs.
//!
//! Both the dynamic channel wait-for graph (built from live simulator
//! state in `mdd-core`) and the static channel dependency graph (built
//! from configuration alone in `mdd-verify`) index the same resources:
//! router virtual channels first, then per-NIC endpoint input and output
//! queues. [`ResourceLayout`] owns that arithmetic in one place so a
//! runtime deadlock trace and a static cycle witness name resources
//! identically.
//!
//! Vertex layout over `R` routers × `P` ports × `V` virtual channels and
//! `N` NICs × `Q` queues per direction:
//!
//! * input VC of router `r`, port `p`, channel `v` → `(r·P + p)·V + v`
//! * NIC `n` input queue `q`  → `R·P·V + n·2Q + q`
//! * NIC `n` output queue `q` → `R·P·V + n·2Q + Q + q`

use mdd_topology::{NicId, NodeId, PortId, Topology};

/// One resource vertex, decoded from its flat id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resource {
    /// An input virtual channel of a router port.
    ChannelVc {
        /// Router owning the channel.
        router: NodeId,
        /// Input port the channel belongs to.
        port: PortId,
        /// Virtual-channel index within the port.
        vc: u8,
    },
    /// An endpoint (NIC) input queue.
    InputQueue {
        /// The network interface.
        nic: NicId,
        /// Queue index within the NIC (per the configured queue org).
        queue: usize,
    },
    /// An endpoint (NIC) output queue.
    OutputQueue {
        /// The network interface.
        nic: NicId,
        /// Queue index within the NIC (per the configured queue org).
        queue: usize,
    },
}

/// Vertex-id arithmetic and naming for one network configuration.
#[derive(Clone, Debug)]
pub struct ResourceLayout {
    topo: Topology,
    vcs: usize,
    queues: usize,
}

impl ResourceLayout {
    /// Layout for `topo` with `vcs` virtual channels per port and
    /// `queues` endpoint queues per NIC direction.
    pub fn new(topo: &Topology, vcs: usize, queues: usize) -> Self {
        ResourceLayout {
            topo: topo.clone(),
            vcs,
            queues,
        }
    }

    /// The topology the layout describes.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Virtual channels per router port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Endpoint queues per NIC direction.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// Number of router-VC vertices (the endpoint vertices start here).
    pub fn vc_base(&self) -> usize {
        self.topo.num_routers() as usize * self.topo.ports_per_router() * self.vcs
    }

    /// Total number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vc_base() + self.topo.num_nics() as usize * 2 * self.queues
    }

    /// Vertex of input VC `v` on port `p` of router `r`.
    pub fn vc_vertex(&self, r: NodeId, p: PortId, v: u8) -> u32 {
        let ports = self.topo.ports_per_router();
        ((r.index() * ports + p.index()) * self.vcs + v as usize) as u32
    }

    /// Vertex of NIC `n`'s input queue `q`.
    pub fn in_queue_vertex(&self, n: NicId, q: usize) -> u32 {
        (self.vc_base() + n.index() * 2 * self.queues + q) as u32
    }

    /// Vertex of NIC `n`'s output queue `q`.
    pub fn out_queue_vertex(&self, n: NicId, q: usize) -> u32 {
        (self.vc_base() + n.index() * 2 * self.queues + self.queues + q) as u32
    }

    /// Decode a flat vertex id back into the resource it denotes.
    ///
    /// Panics if `v` is out of range for this layout.
    pub fn resource(&self, v: u32) -> Resource {
        let v = v as usize;
        let base = self.vc_base();
        if v < base {
            let ports = self.topo.ports_per_router();
            let vc = v % self.vcs;
            let rp = v / self.vcs;
            Resource::ChannelVc {
                router: NodeId((rp / ports) as u32),
                port: PortId((rp % ports) as u8),
                vc: vc as u8,
            }
        } else {
            let e = v - base;
            let nic = NicId((e / (2 * self.queues)) as u32);
            let q = e % (2 * self.queues);
            if q < self.queues {
                Resource::InputQueue { nic, queue: q }
            } else {
                Resource::OutputQueue {
                    nic,
                    queue: q - self.queues,
                }
            }
        }
    }

    /// Human-readable name of a port: `+x` / `-y` for network ports,
    /// `local L` for ports facing NIC `L` of the router.
    pub fn port_name(&self, port: PortId) -> String {
        match self.topo.port_dim_dir(port) {
            Some((d, dir)) => {
                let sign = match dir {
                    mdd_topology::Direction::Plus => '+',
                    mdd_topology::Direction::Minus => '-',
                };
                format!("{sign}{}", dim_name(d))
            }
            None => match self.topo.port_local_index(port) {
                Some(l) => format!("local {l}"),
                None => format!("port {}", port.index()),
            },
        }
    }

    /// Human-readable name of a vertex, e.g. `router 12 (4,1) port +x vc 3`
    /// or `nic 7 input queue 2`.
    pub fn describe(&self, v: u32) -> String {
        match self.resource(v) {
            Resource::ChannelVc { router, port, vc } => {
                format!(
                    "router {} {} port {} vc {}",
                    router.index(),
                    self.topo.coord(router),
                    self.port_name(port),
                    vc
                )
            }
            Resource::InputQueue { nic, queue } => {
                format!("nic {} input queue {}", nic.index(), queue)
            }
            Resource::OutputQueue { nic, queue } => {
                format!("nic {} output queue {}", nic.index(), queue)
            }
        }
    }

    /// Render a cycle as an indented multi-line wait chain. Each step may
    /// carry a note (typically the blocked occupant: message type and
    /// destination). The final line repeats the first vertex, closing the
    /// cycle visually:
    ///
    /// ```text
    ///   nic 3 input queue 0 [RQ -> FRQ]
    ///   -> nic 3 output queue 1 [FRQ]
    ///   -> router 3 (1,0) port local 0 vc 2 [FRQ to nic 0]
    ///   -> nic 3 input queue 0  (cycle closes)
    /// ```
    pub fn format_cycle(&self, cycle: &[u32], notes: &[String]) -> String {
        let mut out = String::new();
        for (i, &v) in cycle.iter().enumerate() {
            let arrow = if i == 0 { "  " } else { "  -> " };
            out.push_str(arrow);
            out.push_str(&self.describe(v));
            if let Some(note) = notes.get(i) {
                if !note.is_empty() {
                    out.push_str(" [");
                    out.push_str(note);
                    out.push(']');
                }
            }
            out.push('\n');
        }
        if let Some(&first) = cycle.first() {
            out.push_str("  -> ");
            out.push_str(&self.describe(first));
            out.push_str("  (cycle closes)\n");
        }
        out
    }
}

/// Conventional dimension names: `x`, `y`, `z`, then `d3`, `d4`, …
fn dim_name(d: usize) -> String {
    match d {
        0 => "x".into(),
        1 => "y".into(),
        2 => "z".into(),
        _ => format!("d{d}"),
    }
}
