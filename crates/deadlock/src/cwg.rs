//! Wait-for graph construction and knot detection.
//!
//! Vertices are abstract resource ids supplied by the caller (the
//! simulator maps virtual channels, message queues and memory controllers
//! onto them). An edge `a → b` means "the agent holding `a` waits for
//! `b`". Following the formal model of Warnakulasuriya & Pinkston, a
//! deadlock corresponds to a *knot*: a strongly connected component
//! containing a cycle from which no arc escapes — every resource reachable
//! from the component leads back into it.

/// A directed wait-for graph over `n` resource vertices.
///
/// ```
/// use mdd_deadlock::WaitForGraph;
/// let mut g = WaitForGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 0);
/// assert!(g.has_deadlock(), "a closed cycle is a knot");
/// g.add_edge(1, 2); // 2 is free: an escape
/// assert!(!g.has_deadlock());
/// ```
#[derive(Clone, Debug)]
pub struct WaitForGraph {
    n: usize,
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl WaitForGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        WaitForGraph {
            n,
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges added.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Add the wait-for arc `a → b`.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        debug_assert!((a as usize) < self.n && (b as usize) < self.n);
        self.adj[a as usize].push(b);
        self.edges += 1;
    }

    /// Strongly connected components (Tarjan, iterative), in reverse
    /// topological order.
    pub fn sccs(&self) -> Vec<Vec<u32>> {
        #[derive(Clone, Copy)]
        struct VState {
            index: u32,
            lowlink: u32,
            on_stack: bool,
            visited: bool,
        }
        let mut st = vec![
            VState {
                index: 0,
                lowlink: 0,
                on_stack: false,
                visited: false,
            };
            self.n
        ];
        let mut next_index = 0u32;
        let mut stack: Vec<u32> = Vec::new();
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        // Explicit DFS stack: (vertex, child iterator position).
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..self.n as u32 {
            if st[root as usize].visited {
                continue;
            }
            call.push((root, 0));
            st[root as usize].visited = true;
            st[root as usize].index = next_index;
            st[root as usize].lowlink = next_index;
            next_index += 1;
            st[root as usize].on_stack = true;
            stack.push(root);
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                let vs = v as usize;
                if *ci < self.adj[vs].len() {
                    let w = self.adj[vs][*ci];
                    *ci += 1;
                    let ws = w as usize;
                    if !st[ws].visited {
                        st[ws].visited = true;
                        st[ws].index = next_index;
                        st[ws].lowlink = next_index;
                        next_index += 1;
                        st[ws].on_stack = true;
                        stack.push(w);
                        call.push((w, 0));
                    } else if st[ws].on_stack {
                        st[vs].lowlink = st[vs].lowlink.min(st[ws].index);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        let lp = st[parent as usize].lowlink.min(st[vs].lowlink);
                        st[parent as usize].lowlink = lp;
                    }
                    if st[vs].lowlink == st[vs].index {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            st[w as usize].on_stack = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// True if `comp` (one SCC) contains a cycle: more than one vertex, or
    /// a self-loop.
    fn has_cycle(&self, comp: &[u32]) -> bool {
        comp.len() > 1 || self.adj[comp[0] as usize].contains(&comp[0])
    }

    /// Detect knots: cyclic SCCs from which no arc escapes to a vertex
    /// outside every knot... precisely: an SCC `K` is *locally* a knot when
    /// every arc leaving a vertex of `K` stays within `K`. Resources in
    /// such components can never be released: they are deadlocked.
    ///
    /// Returns the deadlocked vertex sets (possibly empty).
    pub fn knots(&self) -> Vec<Vec<u32>> {
        let sccs = self.sccs();
        let mut comp_of = vec![u32::MAX; self.n];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                comp_of[v as usize] = ci as u32;
            }
        }
        let mut out = Vec::new();
        'scc: for (ci, comp) in sccs.iter().enumerate() {
            if !self.has_cycle(comp) {
                continue;
            }
            for &v in comp {
                for &w in &self.adj[v as usize] {
                    if comp_of[w as usize] != ci as u32 {
                        continue 'scc; // an escape arc exists
                    }
                }
            }
            let mut k = comp.clone();
            k.sort_unstable();
            out.push(k);
        }
        out
    }

    /// Convenience: true if any knot (deadlock) exists.
    pub fn has_deadlock(&self) -> bool {
        !self.knots().is_empty()
    }

    /// Extract one simple cycle lying entirely inside `comp` (the vertex
    /// set of a cyclic SCC, as returned by [`WaitForGraph::sccs`] or
    /// [`WaitForGraph::knots`]). Returns an empty vector if `comp` holds
    /// no cycle (a trivial SCC without a self-loop).
    ///
    /// The walk follows, from each vertex, its first out-arc that stays
    /// inside the component; because every vertex of a cyclic SCC has such
    /// an arc, the walk must revisit a vertex, and the portion from the
    /// first revisit onward is a simple cycle — the witness printed for
    /// deadlock traces.
    pub fn cycle_in_component(&self, comp: &[u32]) -> Vec<u32> {
        if comp.is_empty() {
            return Vec::new();
        }
        if comp.len() == 1 {
            let v = comp[0];
            return if self.adj[v as usize].contains(&v) {
                vec![v]
            } else {
                Vec::new()
            };
        }
        let mut inside = vec![false; self.n];
        for &v in comp {
            inside[v as usize] = true;
        }
        // Walk first-inside-arcs until a vertex repeats.
        let mut seen_at = vec![usize::MAX; self.n];
        let mut path: Vec<u32> = Vec::new();
        let mut v = comp[0];
        loop {
            if seen_at[v as usize] != usize::MAX {
                return path[seen_at[v as usize]..].to_vec();
            }
            seen_at[v as usize] = path.len();
            path.push(v);
            match self.adj[v as usize].iter().find(|&&w| inside[w as usize]) {
                Some(&w) => v = w,
                // Unreachable for a genuine SCC; bail out defensively.
                None => return Vec::new(),
            }
        }
    }
}
