//! The circulating token of Extended Disha Sequential.

use mdd_topology::{RecoveryRing, TourStop};

/// Token status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenState {
    /// Touring router and NIC stops, available for capture.
    Circulating,
    /// Captured by a rescue episode; circulation is suspended.
    Captured,
    /// Lost in transit (fault injection); a watchdog regenerates it after
    /// a time-out. The paper flags the token as a single point of failure
    /// requiring "a reliable token management mechanism" — this models
    /// the standard timeout-regeneration scheme.
    Lost,
}

/// The token: a single control capability touring all routers and network
/// interfaces. Whichever stop holds it when a potential deadlock is flagged
/// may capture it; it is released for re-circulation at the capturing
/// stop's position once the rescue episode completes.
#[derive(Debug)]
pub struct CirculatingToken {
    tour_len: usize,
    pos: usize,
    hop_cycles: u64,
    next_move: u64,
    state: TokenState,
    lost_at: u64,
    regen_timeout: u64,
    /// Completed circulations (for diagnostics).
    pub laps: u64,
    /// Times the token was captured.
    pub captures: u64,
    /// Times the watchdog regenerated a lost token.
    pub regenerations: u64,
}

impl CirculatingToken {
    /// A token touring `ring` (routers interleaved with their NICs),
    /// advancing one stop every `hop_cycles` cycles.
    pub fn new(ring: &RecoveryRing, hop_cycles: u64) -> Self {
        assert!(hop_cycles >= 1);
        let tour_len = ring.tour_len();
        CirculatingToken {
            tour_len,
            pos: 0,
            hop_cycles,
            next_move: 0,
            state: TokenState::Circulating,
            lost_at: 0,
            // Watchdog: two silent circulations' worth of cycles.
            regen_timeout: 2 * tour_len as u64 * hop_cycles,
            laps: 0,
            captures: 0,
            regenerations: 0,
        }
    }

    /// Override the watchdog regeneration time-out (builder style).
    pub fn with_regen_timeout(mut self, cycles: u64) -> Self {
        self.regen_timeout = cycles.max(1);
        self
    }

    /// Fault injection: the token's control packet is lost in transit.
    /// Only a circulating token can be lost — during a rescue episode it
    /// travels with the rescued message under the lane's stronger
    /// delivery guarantees.
    pub fn drop_token(&mut self, now: u64) {
        assert_eq!(
            self.state,
            TokenState::Circulating,
            "only a circulating token can be dropped"
        );
        self.state = TokenState::Lost;
        self.lost_at = now;
    }

    /// Current state.
    pub fn state(&self) -> TokenState {
        self.state
    }

    /// The stop currently holding the token.
    pub fn current_stop(&self, ring: &RecoveryRing) -> TourStop {
        ring.tour_stop(self.pos)
    }

    /// Advance the tour if due. Returns the stop the token lands on when it
    /// moves (capture eligibility should be checked then); `None` if the
    /// token did not move this cycle or is captured.
    pub fn advance(&mut self, ring: &RecoveryRing, now: u64) -> Option<TourStop> {
        if self.state == TokenState::Lost {
            if now.saturating_sub(self.lost_at) >= self.regen_timeout {
                // Watchdog fires: regenerate at the last known position.
                self.state = TokenState::Circulating;
                self.regenerations += 1;
                self.next_move = now;
            } else {
                return None;
            }
        }
        if self.state != TokenState::Circulating || now < self.next_move {
            return None;
        }
        self.pos = (self.pos + 1) % self.tour_len;
        if self.pos == 0 {
            self.laps += 1;
        }
        self.next_move = now + self.hop_cycles;
        Some(ring.tour_stop(self.pos))
    }

    /// The next cycle at which [`CirculatingToken::advance`] can have any
    /// effect: the pending hop while circulating, the watchdog firing
    /// while lost, or `None` while captured (the owning episode drives
    /// every cycle itself). Calls to `advance` strictly before this cycle
    /// are no-ops, which is what lets a quiescent simulator fast-forward
    /// to it.
    pub fn next_event(&self) -> Option<u64> {
        match self.state {
            TokenState::Circulating => Some(self.next_move),
            TokenState::Lost => Some(self.lost_at + self.regen_timeout),
            TokenState::Captured => None,
        }
    }

    /// Capture the token at its current stop.
    pub fn capture(&mut self) {
        debug_assert_eq!(self.state, TokenState::Circulating);
        self.state = TokenState::Captured;
        self.captures += 1;
    }

    /// Release the token for re-circulation; it resumes from the capturing
    /// stop at cycle `now` (the paper: "if the token is captured by a
    /// network interface, it is released for re-circulation by the same
    /// network interface").
    pub fn release(&mut self, now: u64) {
        debug_assert_eq!(self.state, TokenState::Captured);
        self.state = TokenState::Circulating;
        self.next_move = now + self.hop_cycles;
    }
}
