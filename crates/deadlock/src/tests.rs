//! Tests for the deadlock machinery.

use crate::*;
use mdd_protocol::{Message, MessageId, MessageStore, MsgType, ShapeId, TransactionId};
use mdd_topology::{NicId, NodeId, RecoveryRing, Topology, TopologyKind, TourStop};

fn ring44() -> RecoveryRing {
    RecoveryRing::new(&Topology::new(TopologyKind::Torus, &[4, 4], 1))
}

fn msg(id: u64, len: u32) -> Message {
    Message {
        id: MessageId(id),
        txn: TransactionId(id),
        mtype: MsgType(0),
        shape: ShapeId(0),
        chain_pos: 0,
        src: NicId(0),
        dst: NicId(5),
        requester: NicId(0),
        home: NicId(5),
        owner: NicId(5),
        length_flits: len,
        created: 0,
        is_backoff: false,
        rescued: true,
        sharers: 0,
    }
}

// ---------------------------------------------------------------------
// Wait-for graph / knots.
// ---------------------------------------------------------------------

#[test]
fn acyclic_graph_has_no_deadlock() {
    let mut g = WaitForGraph::new(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(0, 4);
    assert!(!g.has_deadlock());
    assert_eq!(g.sccs().len(), 5, "every vertex its own SCC");
}

#[test]
fn simple_cycle_is_a_knot() {
    let mut g = WaitForGraph::new(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    let knots = g.knots();
    assert_eq!(knots, vec![vec![0, 1, 2]]);
}

#[test]
fn cycle_with_escape_is_not_a_knot() {
    // 0 -> 1 -> 2 -> 0, but 1 also waits on 3, which is free (no
    // out-edges): OR-semantics escape — not a deadlock.
    let mut g = WaitForGraph::new(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(1, 3);
    assert!(!g.has_deadlock());
}

#[test]
fn self_loop_is_a_knot() {
    let mut g = WaitForGraph::new(2);
    g.add_edge(0, 0);
    assert_eq!(g.knots(), vec![vec![0]]);
}

#[test]
fn two_disjoint_knots_detected() {
    let mut g = WaitForGraph::new(6);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(4, 2);
    let mut knots = g.knots();
    knots.sort();
    assert_eq!(knots, vec![vec![0, 1], vec![2, 3, 4]]);
}

#[test]
fn upstream_cycle_draining_into_knot_is_single_knot() {
    // SCC {0,1} has an arc into knot {2,3}: only {2,3} is a knot, but a
    // deadlock exists and {0,1} is deadlock-dependent.
    let mut g = WaitForGraph::new(4);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 2);
    assert_eq!(g.knots(), vec![vec![2, 3]]);
}

#[test]
fn dense_graph_scc_correctness() {
    // Two SCCs connected in a chain plus isolated vertices.
    let mut g = WaitForGraph::new(8);
    for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)] {
        g.add_edge(a, b);
    }
    let sccs = g.sccs();
    let mut sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 1, 3, 3]);
    // {3,4,5} is the sink SCC: the only knot.
    assert_eq!(g.knots(), vec![vec![3, 4, 5]]);
}

// ---------------------------------------------------------------------
// Recovery lane.
// ---------------------------------------------------------------------

#[test]
fn lane_transfer_timing() {
    let ring = ring44();
    let mut lane = RecoveryLane::new(ring, 1);
    let a = lane.ring().at(2);
    let b = lane.ring().at(7);
    let mut store = MessageStore::new();
    let h = store.insert(msg(1, 8));
    let arrive = lane.send(h, 8, a, b, 100);
    assert_eq!(arrive, 100 + 5 + 8, "5 ring hops + 8 flits");
    assert!(lane.busy());
    assert!(lane.poll(arrive - 1).is_none());
    let d = lane.poll(arrive).expect("arrives on time");
    assert_eq!(store.get(d.msg).id, MessageId(1));
    assert!(!lane.busy());
    assert_eq!(lane.transfers, 1);
    assert_eq!(lane.flits_carried, 8);
}

#[test]
fn lane_wraps_backward_destinations() {
    let ring = ring44();
    let mut lane = RecoveryLane::new(ring, 2);
    let a = lane.ring().at(10);
    let b = lane.ring().at(3); // 9 forward hops on a 16-ring
    let mut store = MessageStore::new();
    let h = store.insert(msg(1, 4));
    let arrive = lane.send(h, 4, a, b, 0);
    assert_eq!(arrive, 9 * 2 + 4);
}

#[test]
#[should_panic(expected = "exclusive")]
fn lane_rejects_concurrent_transfers() {
    let ring = ring44();
    let mut lane = RecoveryLane::new(ring, 1);
    let a = lane.ring().at(0);
    let b = lane.ring().at(1);
    let mut store = MessageStore::new();
    let h1 = store.insert(msg(1, 4));
    let h2 = store.insert(msg(2, 4));
    lane.send(h1, 4, a, b, 0);
    lane.send(h2, 4, a, b, 0);
}

#[test]
fn control_delay_is_ring_distance() {
    let ring = ring44();
    let lane = RecoveryLane::new(ring, 1);
    let a = lane.ring().at(0);
    let b = lane.ring().at(6);
    assert_eq!(lane.control_delay(a, b), 7);
    assert_eq!(lane.control_delay(b, a), 11);
    assert_eq!(lane.control_delay(a, a), 1);
}

// ---------------------------------------------------------------------
// Circulating token.
// ---------------------------------------------------------------------

#[test]
fn token_tours_all_stops() {
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
    let ring = RecoveryRing::new(&topo);
    let mut token = CirculatingToken::new(&ring, 1);
    let mut routers_seen = 0;
    let mut nics_seen = 0;
    for now in 0..ring.tour_len() as u64 {
        match token.advance(&ring, now) {
            Some(TourStop::Router(_)) => routers_seen += 1,
            Some(TourStop::Nic(_)) => nics_seen += 1,
            None => panic!("token must move every cycle at hop=1"),
        }
    }
    assert_eq!(routers_seen + nics_seen, ring.tour_len());
    assert_eq!(routers_seen, 16);
    assert_eq!(nics_seen, 16);
    assert_eq!(token.laps, 1);
}

#[test]
fn token_hop_cycles_throttle_movement() {
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
    let ring = RecoveryRing::new(&topo);
    let mut token = CirculatingToken::new(&ring, 4);
    let mut moves = 0;
    for now in 0..40 {
        if token.advance(&ring, now).is_some() {
            moves += 1;
        }
    }
    assert_eq!(moves, 10, "one move per 4 cycles");
}

#[test]
fn captured_token_does_not_circulate() {
    let topo = Topology::new(TopologyKind::Torus, &[4, 4], 1);
    let ring = RecoveryRing::new(&topo);
    let mut token = CirculatingToken::new(&ring, 1);
    token.advance(&ring, 0);
    let stop = token.current_stop(&ring);
    token.capture();
    assert_eq!(token.state(), TokenState::Captured);
    for now in 1..10 {
        assert!(token.advance(&ring, now).is_none());
    }
    // Released at the same stop; circulation resumes afterwards.
    token.release(10);
    assert_eq!(token.current_stop(&ring), stop);
    assert!(token.advance(&ring, 10).is_none(), "one hop delay after release");
    assert!(token.advance(&ring, 11).is_some());
    assert_eq!(token.captures, 1);
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// SCCs partition the vertex set.
        #[test]
        fn sccs_partition(n in 1usize..30,
                          edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120)) {
            let mut g = WaitForGraph::new(n);
            for (a, b) in edges {
                g.add_edge(a % n as u32, b % n as u32);
            }
            let sccs = g.sccs();
            let mut seen = vec![false; n];
            for comp in &sccs {
                for &v in comp {
                    prop_assert!(!seen[v as usize], "vertex in two SCCs");
                    seen[v as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "every vertex in some SCC");
        }

        /// Every knot is closed: no edges leave it, and it contains a cycle.
        #[test]
        fn knots_are_closed_and_cyclic(n in 1usize..25,
                                       edges in proptest::collection::vec((0u32..25, 0u32..25), 0..100)) {
            let mut g = WaitForGraph::new(n);
            let mut adj = vec![vec![]; n];
            for (a, b) in edges {
                let (a, b) = (a % n as u32, b % n as u32);
                g.add_edge(a, b);
                adj[a as usize].push(b);
            }
            for knot in g.knots() {
                prop_assert!(knot.len() > 1 || adj[knot[0] as usize].contains(&knot[0]));
                for &v in &knot {
                    for &w in &adj[v as usize] {
                        prop_assert!(knot.contains(&w), "edge escapes the knot");
                    }
                }
            }
        }

        /// Lane timing: arrival = now + hops*h + flits, for any endpoints.
        #[test]
        fn lane_timing_formula(src in 0usize..16, dst in 0usize..16,
                               len in 1u32..32, h in 1u64..4, now in 0u64..1000) {
            let ring = ring44();
            let mut lane = RecoveryLane::new(ring, h);
            let a = lane.ring().at(src);
            let b = lane.ring().at(dst);
            let d = lane.ring().ring_distance(a, b) as u64;
            let mut store = MessageStore::new();
            let hm = store.insert(msg(1, len));
            let arrive = lane.send(hm, len, a, b, now);
            prop_assert_eq!(arrive, now + d * h + len as u64);
            prop_assert!(lane.poll(arrive).is_some());
        }
    }
}

// Silence an unused-import warning for NodeId used only in type positions
// above on some toolchains.
#[allow(dead_code)]
fn _types(_: NodeId) {}

/// Naive reference implementation of knot detection: a vertex set is
/// deadlocked iff some cyclic vertex's reachable set contains no vertex
/// with out-degree zero. Cross-checked against the Tarjan-based detector
/// on random graphs.
fn naive_has_deadlock(n: usize, edges: &[(u32, u32)]) -> bool {
    let mut adj = vec![vec![]; n];
    for &(a, b) in edges {
        adj[a as usize].push(b as usize);
    }
    let reach = |start: usize| -> Vec<usize> {
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        let mut out = vec![start];
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    out.push(w);
                    stack.push(w);
                }
            }
        }
        out
    };
    for v in 0..n {
        // v on a cycle: v reaches itself through at least one edge.
        let on_cycle = adj[v].iter().any(|&w| reach(w).contains(&v));
        if !on_cycle {
            continue;
        }
        // Deadlocked if every reachable vertex still has a way to wait —
        // i.e. no reachable vertex has out-degree 0 (an escape).
        if reach(v).iter().all(|&w| !adj[w].is_empty()) {
            return true;
        }
    }
    false
}

mod oracle_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The fast knot detector agrees with the naive reachability-based
        /// oracle on random graphs.
        #[test]
        fn knots_match_naive_oracle(n in 1usize..14,
                                    edges in proptest::collection::vec((0u32..14, 0u32..14), 0..40)) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let mut g = WaitForGraph::new(n);
            for &(a, b) in &edges {
                g.add_edge(a, b);
            }
            prop_assert_eq!(
                g.has_deadlock(),
                super::naive_has_deadlock(n, &edges),
                "detector disagrees with the naive oracle on {:?}",
                edges
            );
        }
    }
}
