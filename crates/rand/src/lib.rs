//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The simulation workspace builds in environments with no network access
//! and no vendored registry, so every dependency must live in-tree. This
//! crate reimplements exactly the surface the simulator uses —
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — with the same module layout and method names as
//! rand 0.9, so the simulator sources are byte-for-byte compatible with
//! the real crate should it ever become available again.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64: not the ChaCha12 stream of upstream `StdRng`, but a
//! high-quality, fast, deterministic generator — all the simulator needs
//! (reproducibility is *per build*, which is also all upstream promises
//! across versions).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.random::<f64>(), b.random::<f64>());
//! assert!(a.random_range(0u32..10) < 10);
//! ```

#![warn(missing_docs)]

/// Types that can be drawn uniformly from a generator's raw 64-bit
/// stream (the subset of rand's `StandardUniform` the simulator uses).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1), as in upstream rand.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types [`Rng::random_range`] can sample over a `Range`.
pub trait UniformInt: Copy {
    /// Sample uniformly from `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Lemire multiply-shift mapping of the raw stream onto
                // [0, span). The modulo-free bias is < 2^-64 per draw —
                // irrelevant for simulation workloads.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl UniformInt for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * f64::draw(rng)
    }
}

/// The generator trait: a raw 64-bit stream plus the derived uniform
/// sampling helpers the simulator calls.
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of `T` (for `f64`: uniform in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from the half-open range `lo..hi`.
    #[inline]
    fn random_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(range.start, range.end, self)
    }

    /// A biased coin: true with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators (mirrors the upstream module layout).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let out = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(124);
        assert_ne!(StdRng::seed_from_u64(123).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.random_range(3u32..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(r: &mut R) -> f64 {
            r.random()
        }
        let mut r = StdRng::seed_from_u64(1);
        let _ = draw(&mut r);
    }
}
