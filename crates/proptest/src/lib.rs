//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace builds with no network access, so this crate provides
//! the exact macro-and-trait surface its property tests use — the
//! [`proptest!`] macro (with `#![proptest_config(..)]` support), the
//! [`Strategy`] trait with [`Strategy::prop_map`], range / tuple /
//! [`Just`] / [`prop_oneof!`] / [`collection::vec`] strategies, and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion forms.
//!
//! Semantics: each test samples its strategies from a deterministic
//! per-test generator (seeded from the test's module path and name) and
//! runs [`ProptestConfig::cases`] cases. Unlike upstream proptest there
//! is no shrinking — a failing case reports the case number and message
//! and the deterministic seeding makes the failure reproducible on every
//! run, which is what the simulator's CI discipline needs.
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In a real test module the function would also carry #[test]; this
//! // doctest invokes it directly instead.
//! proptest! {
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Configuration and errors.
// ---------------------------------------------------------------------

/// Per-test run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases the test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps whole-workspace test runs
        // fast while still exercising each property broadly. Tests that
        // need a specific count set it via `#![proptest_config(..)]`.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (carried by `return Err(..)` out of the
/// generated test body; the harness turns it into a panic).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// An error with message `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------
// Deterministic test generator.
// ---------------------------------------------------------------------

/// The deterministic generator behind each property test.
pub mod test_runner {
    /// SplitMix64 over a seed hashed from the test's full name: stable
    /// across runs and across test-order permutations.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator keyed to `name` (typically `module_path!() +
        /// test name`).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, folded into a nonzero seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// A uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> core::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OneOf").field("options", &self.options.len()).finish()
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Build a [`OneOf`] from boxed alternatives — the target of
/// [`prop_oneof!`]; call directly when the macro form is inconvenient.
pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    OneOf { options }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end || len.start == 0, "bad length range");
        VecStrategy { element, len }
    }

    /// The result of [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Define deterministic property tests.
///
/// Accepts the upstream surface the workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then any number of `#[test] fn name(pat
/// in strategy, ..) { body }` items. Each body runs once per case and
/// may `return Ok(())` early or fail via [`prop_assert!`] /
/// [`prop_assert_eq!`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    let ($($arg,)+) =
                        ($($crate::Strategy::sample(&($strat), &mut __rng),)+);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
    )*};
}

/// A uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

/// Assert a condition inside a property-test body; failure aborts the
/// case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property-test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a property-test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Kind {
        A,
        B,
    }

    fn arb_kind() -> impl Strategy<Value = Kind> {
        prop_oneof![Just(Kind::A), Just(Kind::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u32..10, 0u32..10),
                           mut xs in crate::collection::vec(0u64..100, 1..20)) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn oneof_and_map(k in arb_kind(),
                         doubled in (1u32..50).prop_map(|v| v * 2)) {
            prop_assert!(k == Kind::A || k == Kind::B);
            prop_assert_eq!(doubled % 2, 0);
            if doubled > 200 {
                return Ok(()); // unreachable; exercises early-return form
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("some::test");
        let mut b = TestRng::deterministic("some::test");
        assert_eq!(
            (0..64).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..64).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
        let mut c = TestRng::deterministic("some::other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn failing_case_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("case 1/3"), "got panic message: {msg}");
    }
}
