//! Incremental re-verdicts agree with from-scratch degraded analysis.
//!
//! The acceptance property for the incremental analyzer: for any
//! configuration and any fault set, [`BaseAnalysis::reverify`] (which
//! splices cached clean segments around rebuilt dirty ones, and derives
//! routing-interchangeable message types by relabeling) must produce the
//! same verdict *and the same rendered witness* as [`verify_faulted`],
//! which rebuilds every segment of the degraded CDG from scratch and
//! never derives anything. `verify_faulted` is the honest oracle; any
//! splice, orbit, dateline-mask, or retype bug shows up here.
//!
//! Configurations deliberately include infeasible VC budgets (via
//! [`VcMap::build_degraded`], e.g. SA at 2 VCs), because the fault
//! frontier and `mddsim --verify` both analyze such degraded maps.

use mdd_protocol::{PatternSpec, QueueOrg};
use mdd_routing::{Scheme, SchemeRouting, VcMap};
use mdd_topology::{Direction, FaultSet, NodeId, Topology, TopologyKind};
use mdd_verify::{verify_faulted, AnalysisConfig, BaseAnalysis};
use proptest::prelude::*;

const SCHEMES: [Scheme; 4] = [
    Scheme::StrictAvoidance { shared_adaptive: false },
    Scheme::StrictAvoidance { shared_adaptive: true },
    Scheme::DeflectiveRecovery,
    Scheme::ProgressiveRecovery,
];

const QUEUE_ORGS: [QueueOrg; 3] = [QueueOrg::Shared, QueueOrg::PerNetwork, QueueOrg::PerType];

fn topology(idx: usize) -> Topology {
    match idx {
        0 => Topology::new(TopologyKind::Torus, &[4, 4], 1),
        1 => Topology::new(TopologyKind::Mesh, &[4, 4], 1),
        // Odd radix: minimal paths are unique in each dimension, so some
        // destinations stay clean under a link fault and reverify really
        // splices cached segments instead of rebuilding everything.
        2 => Topology::new(TopologyKind::Torus, &[5, 5], 1),
        _ => Topology::new(TopologyKind::Torus, &[8, 8], 1),
    }
}

fn config(topo_idx: usize, scheme_idx: usize, vcs: u8, pat_idx: usize, org_idx: usize) -> AnalysisConfig {
    let topo = topology(topo_idx);
    let scheme = SCHEMES[scheme_idx];
    let pattern = if pat_idx == 0 { PatternSpec::pat100() } else { PatternSpec::pat271() };
    let escape = if topo.kind() == TopologyKind::Mesh { 1 } else { 2 };
    // build_degraded never fails for vcs > 0: infeasible budgets get the
    // best map the budget allows, which is exactly what --verify falls
    // back to and what the fault frontier sweeps.
    let map = VcMap::build_degraded(scheme, pattern.protocol(), vcs, escape);
    AnalysisConfig::new(topo, scheme, SchemeRouting::new(map), pattern, QUEUE_ORGS[org_idx])
}

fn fault_set(topo: &Topology, links: &[(usize, usize, usize)], router: Option<usize>) -> FaultSet {
    let nr = topo.num_routers() as usize;
    let mut f = FaultSet::new(topo);
    for &(node, d, dir_bit) in links {
        let dir = if dir_bit == 0 { Direction::Plus } else { Direction::Minus };
        f.fail_link(topo, NodeId((node % nr) as u32), d % topo.dims(), dir);
    }
    if let Some(r) = router {
        f.fail_router(topo, NodeId((r % nr) as u32));
    }
    f
}

fn assert_agreement(cfg: &AnalysisConfig, base: &BaseAnalysis, faults: &FaultSet) -> Result<(), TestCaseError> {
    let incremental = base.reverify(faults);
    let scratch = verify_faulted(&cfg.input(), faults);
    let label = format!(
        "scheme {:?} topo {:?} {}x{} vcs {} faults [{}]",
        cfg.scheme(),
        cfg.topo().kind(),
        cfg.topo().radix(0),
        cfg.topo().radix(1),
        cfg.input().routing.map().num_vcs(),
        faults.label(),
    );
    prop_assert_eq!(incremental.name(), scratch.name(), "verdict diverged: {}", label);
    prop_assert_eq!(
        incremental.witness().map(|w| w.rendered.clone()),
        scratch.witness().map(|w| w.rendered.clone()),
        "witness diverged: {}",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_reverify_matches_from_scratch(
        topo_idx in 0usize..4,
        scheme_idx in 0usize..4,
        vcs_idx in 0usize..3,
        pat_idx in 0usize..2,
        org_idx in 0usize..3,
        links in proptest::collection::vec((0usize..64, 0usize..2, 0usize..2), 0..3),
        router in 0usize..64,
        fail_a_router in 0usize..2,
    ) {
        let vcs = [2u8, 4, 8][vcs_idx];
        let cfg = config(topo_idx, scheme_idx, vcs, pat_idx, org_idx);
        let faults = fault_set(cfg.topo(), &links, (fail_a_router == 1).then_some(router));
        let base = BaseAnalysis::analyze(cfg.clone());
        assert_agreement(&cfg, &base, &faults)?;
    }
}

/// The 16x16 requirement, pinned deterministically: one base analysis,
/// re-verdicted under a link fault, a router fault, and a compound fault.
/// At 256 routers the debug-build internal cross-check inside `reverify`
/// fires too, so in debug each fault is checked twice against the oracle.
#[test]
fn sixteen_by_sixteen_reverify_matches_from_scratch() {
    let topo = Topology::new(TopologyKind::Torus, &[16, 16], 1);
    let scheme = Scheme::StrictAvoidance { shared_adaptive: false };
    let pattern = PatternSpec::pat271();
    let map = VcMap::build_degraded(scheme, pattern.protocol(), 8, 2);
    let cfg =
        AnalysisConfig::new(topo, scheme, SchemeRouting::new(map), pattern, QueueOrg::PerType);
    let base = BaseAnalysis::analyze(cfg.clone());

    let mut link = FaultSet::new(cfg.topo());
    link.fail_link(cfg.topo(), NodeId(37), 1, Direction::Plus);
    let mut router = FaultSet::new(cfg.topo());
    router.fail_router(cfg.topo(), NodeId(200));
    let mut compound = FaultSet::new(cfg.topo());
    compound.fail_link(cfg.topo(), NodeId(0), 0, Direction::Minus);
    compound.fail_router(cfg.topo(), NodeId(129));

    for faults in [&link, &router, &compound] {
        let incremental = base.reverify(faults);
        let scratch = verify_faulted(&cfg.input(), faults);
        assert_eq!(incremental.name(), scratch.name(), "faults [{}]", faults.label());
        assert_eq!(
            incremental.witness().map(|w| &w.rendered),
            scratch.witness().map(|w| &w.rendered),
            "faults [{}]",
            faults.label()
        );
    }
}
