//! Minimal-VC synthesis: the smallest VC budget a scheme needs.
//!
//! The verifier answers "is this configuration safe?"; synthesis inverts
//! the question into "what is the *cheapest* safe configuration?" by
//! probing [`verify_quotiented`](crate::verify_quotiented) over the VC
//! budget. Verdict rank is monotone in the budget for the paper's schemes
//! (more virtual channels only ever add escape/adaptive structure), so a
//! binary search finds the frontier in `O(log max)` probes — but because
//! monotonicity is an empirical property of the routing schemes rather
//! than a theorem of this code, the search *verifies* the boundary it
//! found (the candidate must be safe and its predecessor unsafe) and
//! falls back to a linear scan when the probes turn out non-monotone.

use crate::{verify_quotiented, Verdict, VerifyInput};
use mdd_protocol::{PatternSpec, QueueOrg};
use mdd_routing::{Scheme, SchemeRouting, VcMap};
use mdd_topology::{Topology, TopologyKind};

/// The outcome of a minimal-VC search.
#[derive(Clone, Debug)]
pub struct MinVcReport {
    /// Smallest per-channel VC count whose static verdict is not
    /// `Unsafe`, within the probed budget; `None` when even the maximum
    /// budget is unsafe.
    pub min_vcs: Option<u8>,
    /// The verdict at `min_vcs`.
    pub verdict: Option<Verdict>,
    /// `(vcs, verdict name)` for every probe performed, in probe order —
    /// the search's audit trail.
    pub probes: Vec<(u8, &'static str)>,
}

/// Probe one VC budget: build the scheme's degraded-fallback VC map (the
/// infallible constructor, so undersized budgets yield their real —
/// typically unsafe — verdict rather than a configuration error) and
/// classify it.
fn probe(
    topo: &Topology,
    scheme: Scheme,
    pattern: &PatternSpec,
    queue_org: QueueOrg,
    vcs: u8,
) -> Verdict {
    let escape = if topo.kind() == TopologyKind::Mesh { 1 } else { 2 };
    let map = VcMap::build_degraded(scheme, pattern.protocol(), vcs, escape);
    let routing = SchemeRouting::new(map);
    let input = VerifyInput {
        topo,
        scheme,
        routing: &routing,
        pattern,
        queue_org,
    };
    verify_quotiented(&input)
}

/// Find the smallest VC count in `1..=max_vcs` whose static verdict is
/// not `Unsafe` (i.e. `ProvenFree` or `RecoverableCycles`).
pub fn min_safe_vcs(
    topo: &Topology,
    scheme: Scheme,
    pattern: &PatternSpec,
    queue_org: QueueOrg,
    max_vcs: u8,
) -> MinVcReport {
    let mut report = MinVcReport {
        min_vcs: None,
        verdict: None,
        probes: Vec::new(),
    };
    if max_vcs == 0 {
        return report;
    }
    let probe_at = |vcs: u8, report: &mut MinVcReport| -> Verdict {
        let v = probe(topo, scheme, pattern, queue_org, vcs);
        report.probes.push((vcs, v.name()));
        v
    };

    // The budget itself must be safe for any answer to exist.
    let at_max = probe_at(max_vcs, &mut report);
    if at_max.is_unsafe() {
        return report;
    }

    // Binary search for the smallest safe budget, assuming monotonicity.
    let (mut lo, mut hi) = (1u8, max_vcs); // invariant: hi is safe
    let mut best = at_max;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let v = probe_at(mid, &mut report);
        if v.is_unsafe() {
            lo = mid + 1;
        } else {
            best = v;
            hi = mid;
        }
    }

    // Verify the boundary: `hi` is known safe; its predecessor must be
    // unsafe (or nonexistent). If it is not, the verdicts are not
    // monotone in the budget — rescan linearly for the true minimum.
    if hi > 1 && !probe_at(hi - 1, &mut report).is_unsafe() {
        for vcs in 1..hi {
            let v = probe_at(vcs, &mut report);
            if !v.is_unsafe() {
                report.min_vcs = Some(vcs);
                report.verdict = Some(v);
                return report;
            }
        }
    }
    report.min_vcs = Some(hi);
    report.verdict = Some(best);
    report
}
