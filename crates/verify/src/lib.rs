//! # mdd-verify
//!
//! Static deadlock-safety verification of scheme/routing/protocol
//! configurations — no simulator instance, no traffic, no cycles burned.
//!
//! The paper's taxonomy (strict avoidance, deflective recovery,
//! progressive recovery) is at heart a claim about which *resource
//! dependency graphs* can close a cycle. The simulator discovers this
//! dynamically: `mdd-core` builds the extended channel wait-for graph
//! (CWG) from live state and looks for knots. This crate answers the same
//! question *before* any cycle is simulated, from configuration alone:
//!
//! 1. **Static CDG construction** (`cdg`): the routing function is
//!    enumerated over every (message type, destination) pair by a
//!    breadth-first sweep over `(router, dateline-crossing mask)` states,
//!    invoking the scheme's real [`Routing`](mdd_router::Routing)
//!    implementation — so the graph reflects exactly the candidates the
//!    router would offer at simulation time. Vertices are the same
//!    resources the dynamic CWG uses ([`ResourceLayout`]): router input
//!    VCs plus per-NIC endpoint input/output queues, with the paper's `≺`
//!    message-dependency edges (non-terminating input-queue head → the
//!    subordinate type's output queue → its injection channels).
//! 2. **Escape peeling** (`analyze`): a least-fixpoint computation in
//!    the style of Duato's sufficient condition. Each vertex carries its
//!    possible *occupant classes*; a class is safe when any of its
//!    OR-wait candidates is safe (or it sinks unconditionally), and a
//!    vertex is safe when every class that can occupy it is safe. Safety
//!    propagates backwards through the acyclic dateline-class escape
//!    structure; if everything peels, no reachable configuration of
//!    occupants can deadlock.
//! 3. **Classification**: residual (unpeelable) vertices are analyzed
//!    with Tarjan SCC shared with the runtime detector
//!    ([`WaitForGraph`](mdd_deadlock::WaitForGraph)) and judged against
//!    the scheme's drain mechanism, yielding a typed [`Verdict`] with a
//!    human-readable minimal cycle witness.
//!
//! The whole analysis is a few milliseconds for the paper's 8x8 torus, so
//! the experiment engine runs it as a pre-flight on every sweep point.

#![warn(missing_docs)]

mod analyze;
mod cdg;
mod frontier;
mod incremental;
mod synthesis;

use std::fmt;

use mdd_deadlock::ResourceLayout;
use mdd_obs::{counter_add, CounterId};
use mdd_protocol::{PatternSpec, QueueOrg};
use mdd_routing::{Scheme, SchemeRouting};
use mdd_topology::{Direction, RecoveryRing, Topology, TopologyKind, UNREACHABLE};

pub use frontier::{
    classify_fault_points, fault_orbit_key, fault_rank, sampled_double_link_faults, FaultClass,
    FaultPoint,
    FrontierReport,
};
pub use incremental::{verify_faulted, AnalysisConfig, BaseAnalysis, FaultOutcome};
pub use synthesis::{min_safe_vcs, MinVcReport};

// Re-exported so fault-sweep callers (the engine, the analysis CLI) can
// name fault sets without a direct topology dependency.
pub use mdd_topology::{single_link_faults, FaultSet};

/// Everything the static analysis needs to know about a configuration.
///
/// Mirrors what `Simulator::new` derives from a `SimConfig`, without
/// depending on `mdd-core` (the dependency points the other way: the
/// config builder calls into this crate for its strict mode).
#[derive(Clone, Copy, Debug)]
pub struct VerifyInput<'a> {
    /// The network topology.
    pub topo: &'a Topology,
    /// The deadlock-handling scheme under analysis.
    pub scheme: Scheme,
    /// The scheme's routing function (wrapping its [`VcMap`]).
    ///
    /// [`VcMap`]: mdd_routing::VcMap
    pub routing: &'a SchemeRouting,
    /// The workload pattern (transaction shapes and their protocol).
    pub pattern: &'a PatternSpec,
    /// Endpoint queue organization.
    pub queue_org: QueueOrg,
}

/// A dependency cycle found in the static CDG, renderable as the same
/// trace format the runtime deadlock oracle prints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleWitness {
    /// The cycle's vertex ids in [`ResourceLayout`] numbering.
    pub vertices: Vec<u32>,
    /// Human-readable rendering: one resource per line with the blocked
    /// occupant (message type, destination) in brackets.
    pub rendered: String,
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// The outcome of static verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No reachable occupant configuration can deadlock: the extended CDG
    /// peels completely (in particular, any acyclic extended CDG). This is
    /// what strict avoidance achieves by construction.
    ProvenFree,
    /// Dependency cycles exist, but every residual cycle is covered by
    /// the scheme's drain mechanism — backoff-reply convertibility for
    /// deflective recovery, token/lane reachability for progressive
    /// recovery. The witness shows one such recoverable cycle.
    RecoverableCycles {
        /// A representative cycle the mechanism must (and can) drain.
        witness: CycleWitness,
    },
    /// A dependency cycle exists that no configured mechanism can drain:
    /// the configuration can wedge permanently.
    Unsafe {
        /// A minimal cycle demonstrating the problem.
        witness: CycleWitness,
    },
}

impl Verdict {
    /// The stable one-word name (`ProvenFree` / `RecoverableCycles` /
    /// `Unsafe`) used by CLI output and CI assertions.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::ProvenFree => "ProvenFree",
            Verdict::RecoverableCycles { .. } => "RecoverableCycles",
            Verdict::Unsafe { .. } => "Unsafe",
        }
    }

    /// The witness cycle, when the verdict carries one.
    pub fn witness(&self) -> Option<&CycleWitness> {
        match self {
            Verdict::ProvenFree => None,
            Verdict::RecoverableCycles { witness } | Verdict::Unsafe { witness } => {
                Some(witness)
            }
        }
    }

    /// True for [`Verdict::ProvenFree`].
    pub fn is_proven_free(&self) -> bool {
        matches!(self, Verdict::ProvenFree)
    }

    /// True for [`Verdict::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }

    /// Safety rank for comparisons across perturbed configurations:
    /// `Unsafe` < `RecoverableCycles` < `ProvenFree`. A fault point is
    /// *verdict-degrading* exactly when it lowers the rank.
    pub fn rank(&self) -> u8 {
        match self {
            Verdict::Unsafe { .. } => 0,
            Verdict::RecoverableCycles { .. } => 1,
            Verdict::ProvenFree => 2,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Statically classify a configuration.
///
/// Builds the extended static CDG, runs the escape-peel fixpoint, and —
/// when cycles remain — judges them against the scheme's drain
/// mechanism. Bumps the `verify_proven_free` / `verify_unsafe`
/// observability counters for the terminal verdicts.
pub fn verify(input: &VerifyInput<'_>) -> Verdict {
    classify(input, input.topo)
}

/// Statically classify a configuration via the torus orbit quotient.
///
/// Torus routing here is *vertex-transitive*: the candidate set a scheme
/// offers depends only on the offset to the destination (via
/// [`MinimalHops`](mdd_topology::MinimalHops)), the packet's
/// dateline-crossing mask, and the message type — never on absolute
/// coordinates. Two torus configurations that agree per dimension on (a)
/// whether any minimal offset can tie (even radix) and (b) whether a
/// dateline can sit on a minimal path (radix ≥ 2) therefore produce CDGs
/// with identical local dependency structure, and the escape-peel verdict
/// is a property of that structure, not of the router count. So instead
/// of enumerating every `(router, dateline-mask)` state of a 64×64 torus
/// (~hundreds of millions of occupant classes), fold each dimension's
/// radix down to the smallest radix with the same parity (capped at 8/9),
/// verify the folded representative exhaustively, and replicate its
/// verdict.
///
/// Two soundness guards:
/// - the progressive-recovery ring coverage check runs against the *full*
///   topology (it is O(routers), cheap at any size, and genuinely
///   size-dependent);
/// - in debug builds, configurations small enough to enumerate fully
///   (≤ 256 routers) are cross-checked against [`verify`] and must agree.
///
/// Non-torus (mesh) topologies are not vertex-transitive — boundary
/// routers see different candidate sets — so they fall back to the full
/// enumeration unchanged.
pub fn verify_quotiented(input: &VerifyInput<'_>) -> Verdict {
    let topo = input.topo;
    let folded_radix: Vec<u32> = (0..topo.dims()).map(|d| fold_radix(topo.radix(d))).collect();
    let already_small = topo.kind() != TopologyKind::Torus
        || (0..topo.dims()).all(|d| folded_radix[d] == topo.radix(d));
    if already_small {
        return classify(input, topo);
    }
    let folded = Topology::new(TopologyKind::Torus, &folded_radix, topo.bristle());
    counter_add(
        CounterId::VerifyOrbitReduction,
        u64::from(topo.num_routers() - folded.num_routers()),
    );
    let folded_input = VerifyInput { topo: &folded, ..*input };
    // Ring coverage (the PR branch) stays on the full topology.
    let verdict = classify(&folded_input, topo);
    #[cfg(debug_assertions)]
    if topo.num_routers() <= 256 {
        let full = classify(input, topo);
        assert_eq!(
            verdict.name(),
            full.name(),
            "orbit quotient diverged from full enumeration on {:?}",
            (0..topo.dims()).map(|d| topo.radix(d)).collect::<Vec<_>>(),
        );
    }
    verdict
}

/// Fold one dimension's radix to the smallest torus radix with the same
/// local dependency structure: identical tie behavior (parity — even radii
/// admit equidistant minimal directions, odd radii never do) and a
/// dateline reachable on minimal paths. Radices ≤ 9 are already minimal
/// enough to enumerate cheaply and are kept verbatim, which also keeps
/// the quotient the identity on the paper's 8×8 baseline.
fn fold_radix(k: u32) -> u32 {
    if k <= 9 {
        k
    } else if k.is_multiple_of(2) {
        8
    } else {
        9
    }
}

/// The classification body shared by [`verify`] (ring checked on the
/// input topology) and [`verify_quotiented`] (CDG built on the folded
/// representative, ring checked on the full topology). Packet segments
/// are built once and shared between the base and the deflection-credited
/// graph (the credit only changes endpoint classes).
fn classify(input: &VerifyInput<'_>, ring_topo: &Topology) -> Verdict {
    let layout = layout_for(input);
    let guaranteed = cdg::guaranteed_ejection(input);
    let packet: Vec<cdg::Segment> = cdg::net_types(input)
        .into_iter()
        .flat_map(|t| {
            input.topo.nics().map(move |dst| (t, dst)).collect::<Vec<_>>()
        })
        .map(|(t, dst)| {
            cdg::packet_segment(
                input,
                input.routing,
                &layout,
                t,
                dst,
                guaranteed[t.index()],
                None,
                None,
            )
        })
        .collect();
    let endpoint = cdg::endpoint_segment(input, &layout, None);
    let graph = cdg::assemble(input, packet.iter().chain(std::iter::once(&endpoint)));
    classify_graph(input, ring_topo, None, &graph)
}

/// Classify an assembled CDG: the shared verdict logic for the pristine
/// path ([`classify`]) and the degraded paths (`incremental`). Deflective
/// recovery's credited pass re-peels the *same* graph with its
/// `deflection_extra` OR-wait overlay instead of assembling a second
/// copy.
fn classify_graph(
    input: &VerifyInput<'_>,
    ring_topo: &Topology,
    faults: Option<&FaultSet>,
    graph: &cdg::StaticCdg<'_>,
) -> Verdict {
    // A stranded occupant — a non-sink class that can hold a resource but
    // has *no* admissible wait candidate — wedges its channel permanently
    // regardless of scheme: no drain mechanism can conjure a live route.
    // (Only degraded topologies produce these; a pristine routing function
    // always offers at least the escape channel.)
    if let Some(witness) = strand_witness(graph) {
        counter_add(CounterId::VerifyUnsafe, 1);
        return Verdict::Unsafe { witness };
    }
    let peel = analyze::peel(graph);
    if peel.all_safe {
        counter_add(CounterId::VerifyProvenFree, 1);
        return Verdict::ProvenFree;
    }
    let witness = analyze::witness(graph, &peel)
        .expect("a strand-free unsafe residue always contains a cycle");

    match input.scheme {
        Scheme::StrictAvoidance { .. } => {
            // Avoidance has no drain mechanism: a residual cycle is fatal.
            counter_add(CounterId::VerifyUnsafe, 1);
            Verdict::Unsafe { witness }
        }
        Scheme::DeflectiveRecovery => {
            let proto = input.pattern.protocol();
            if proto.backoff_type().is_none() {
                // Nothing to convert blocked requests into: cycles stand.
                counter_add(CounterId::VerifyUnsafe, 1);
                return Verdict::Unsafe { witness };
            }
            // Re-run the peel crediting backoff-reply convertibility: a
            // blocked head whose subordinate is a *request* may instead be
            // deflected into a backoff reply, so it alternatively waits on
            // the backoff type's output queue (which drains through the
            // statically safe reply network). If everything now peels,
            // every residual cycle of the base graph is deflectable.
            let peel2 = analyze::peel_with(graph, &graph.deflection_extra);
            if peel2.all_safe {
                Verdict::RecoverableCycles { witness }
            } else {
                let witness = analyze::witness_with(graph, &peel2, &graph.deflection_extra)
                    .expect("a strand-free unsafe residue always contains a cycle");
                counter_add(CounterId::VerifyUnsafe, 1);
                Verdict::Unsafe { witness }
            }
        }
        Scheme::ProgressiveRecovery => {
            // Extended Disha Sequential drains any blocked resource the
            // circulating token can reach: check the recovery ring tours
            // every router *and* every NIC (the paper's extension), so
            // both routing- and message-dependent cycles are rescuable
            // over the exclusive lane. Under faults the lane must also
            // still be walkable: see [`pr_ring_intact`].
            if pr_ring_intact(ring_topo, faults) {
                Verdict::RecoverableCycles { witness }
            } else {
                counter_add(CounterId::VerifyUnsafe, 1);
                Verdict::Unsafe { witness }
            }
        }
    }
}

/// Find a stranded occupant class: non-sink, occupiable, with an empty
/// OR-wait candidate set (the degraded routing offered no admissible
/// hop). Rendered as a single-resource witness rather than a cycle.
fn strand_witness(graph: &cdg::StaticCdg<'_>) -> Option<CycleWitness> {
    let c = (0..graph.num_classes() as u32)
        .find(|&c| !graph.sink[c as usize] && graph.cands(c).is_empty() && !graph.members(c).is_empty())?;
    let v = graph.members(c)[0];
    let rendered = format!(
        "  {} [{}]\n  (stranded: no live route to its destination over the degraded topology)\n",
        graph.layout.describe(v),
        graph.note(c),
    );
    Some(CycleWitness { vertices: vec![v], rendered })
}

/// Progressive recovery's lane check, fault-aware. The recovery ring must
/// tour every router and NIC, and — under faults — every consecutive pair
/// of the snake order must still be joined: physically adjacent pairs by
/// their own live link (the lane VC rides that exact channel), the
/// closing wrap-around pair by any live path (the token is re-homed over
/// the network). A failed router always breaks the tour.
fn pr_ring_intact(ring_topo: &Topology, faults: Option<&FaultSet>) -> bool {
    let ring = RecoveryRing::new(ring_topo);
    let routers_covered = ring.len() == ring_topo.num_routers() as usize;
    let tour_covers_nics = ring.tour_len() == ring.len() * (1 + ring_topo.bristle() as usize);
    if !(routers_covered && tour_covers_nics) {
        return false;
    }
    let Some(f) = faults else { return true };
    if f.is_empty() {
        return true;
    }
    if f.num_failed_routers() > 0 {
        return false;
    }
    let n = ring.len();
    for i in 0..n {
        let a = ring.at(i);
        let b = ring.at(i + 1);
        let mut direct = None;
        'find: for d in 0..ring_topo.dims() {
            for dir in [Direction::Plus, Direction::Minus] {
                if ring_topo.neighbor(a, d, dir) == Some(b) {
                    direct = Some((d, dir));
                    break 'find;
                }
            }
        }
        match direct {
            Some((d, dir)) => {
                if f.link_down(a, d, dir) {
                    return false;
                }
            }
            None => {
                if f.distance_field(ring_topo, b)[a.index()] == UNREACHABLE {
                    return false;
                }
            }
        }
    }
    true
}

/// The shared vertex layout for `input`'s configuration (identical to the
/// one the dynamic CWG uses).
pub fn layout_for(input: &VerifyInput<'_>) -> ResourceLayout {
    ResourceLayout::new(
        input.topo,
        input.routing.map().num_vcs() as usize,
        input.queue_org.queue_count(input.pattern.protocol()),
    )
}

#[cfg(test)]
mod tests;
