use crate::{verify, verify_quotiented, VerifyInput};
use mdd_protocol::PatternSpec;
use mdd_routing::{Scheme, SchemeRouting, VcMap};
use mdd_topology::{Topology, TopologyKind};

const SA: Scheme = Scheme::StrictAvoidance {
    shared_adaptive: false,
};

struct Fixture {
    topo: Topology,
    routing: SchemeRouting,
    pattern: PatternSpec,
    scheme: Scheme,
}

impl Fixture {
    fn torus(radix: &[u32], scheme: Scheme, pattern: PatternSpec, vcs: u8) -> Self {
        let topo = Topology::new(TopologyKind::Torus, radix, 1);
        let map = VcMap::build_degraded(scheme, pattern.protocol(), vcs, 2);
        Fixture {
            topo,
            routing: SchemeRouting::new(map),
            pattern,
            scheme,
        }
    }

    fn input(&self) -> VerifyInput<'_> {
        VerifyInput {
            topo: &self.topo,
            scheme: self.scheme,
            routing: &self.routing,
            pattern: &self.pattern,
            queue_org: self.scheme.default_queue_org(),
        }
    }
}

#[test]
fn sa_with_full_partitions_is_proven_free() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 8);
    let v = verify(&fx.input());
    assert!(v.is_proven_free(), "got {v}");
    assert!(v.witness().is_none());
}

#[test]
fn sa_two_type_protocol_is_proven_free() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat100(), 4);
    assert!(verify(&fx.input()).is_proven_free());
}

#[test]
fn sa_paper_torus_is_proven_free() {
    // The paper's 8x8 configuration; also the speed target (< 100 ms).
    let fx = Fixture::torus(&[8, 8], SA, PatternSpec::pat271(), 8);
    let t0 = std::time::Instant::now();
    let v = verify(&fx.input());
    assert!(v.is_proven_free(), "got {v}");
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(100),
        "verification took {:?}",
        t0.elapsed()
    );
}

#[test]
fn sa_with_one_vc_short_is_unsafe_with_witness() {
    // 7 VCs cannot hold 4 partitions x 2 dateline classes: the degraded
    // map truncates one escape set, losing the torus dateline break.
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 7);
    let v = verify(&fx.input());
    assert!(v.is_unsafe(), "got {v}");
    let w = v.witness().expect("unsafe carries a witness");
    assert!(!w.vertices.is_empty());
    assert!(
        w.rendered.contains("router") && w.rendered.contains("vc"),
        "unexpected witness rendering:\n{}",
        w.rendered
    );
}

#[test]
fn sa_with_merged_partitions_is_unsafe() {
    // 4 VCs force the degraded map to merge `≺`-ordered types into
    // shared partitions: a message-dependent cycle, not just a routing one.
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 4);
    assert!(verify(&fx.input()).is_unsafe());
}

#[test]
fn dr_forwarding_protocol_has_recoverable_cycles() {
    // Request-network cycles through forwarded requests remain, but every
    // blocked request head is convertible into a backoff reply.
    let fx = Fixture::torus(&[4, 4], Scheme::DeflectiveRecovery, PatternSpec::pat271(), 4);
    let v = verify(&fx.input());
    assert_eq!(v.name(), "RecoverableCycles", "got {v}");
    assert!(v.witness().is_some());
}

#[test]
fn dr_preallocated_two_type_protocol_is_proven_free() {
    // With reply preallocation and no forwarding, the 1-0-0 protocol's
    // extended CDG has no cycle at all under DR's two-network split.
    let fx = Fixture::torus(&[4, 4], Scheme::DeflectiveRecovery, PatternSpec::pat100(), 4);
    assert!(verify(&fx.input()).is_proven_free());
}

#[test]
fn pr_relies_on_token_recovery() {
    // True fully adaptive routing cycles on a torus by design; the
    // recovery ring tours every router and NIC, so cycles are drainable.
    let fx = Fixture::torus(&[4, 4], Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4);
    let v = verify(&fx.input());
    assert_eq!(v.name(), "RecoverableCycles", "got {v}");
}

#[test]
fn witness_renders_the_shared_trace_format() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 4);
    let v = verify(&fx.input());
    let w = v.witness().expect("unsafe carries a witness");
    assert!(w.rendered.contains("(cycle closes)"));
    assert_eq!(w.rendered, w.to_string());
    for line in w.rendered.lines().skip(1).take(w.vertices.len() - 1) {
        assert!(line.trim_start().starts_with("->"), "bad line: {line}");
    }
}

#[test]
fn verify_agreement_quotient_matches_full_enumeration() {
    // The orbit quotient must agree with exhaustive enumeration wherever
    // the latter is affordable: every scheme at 8×8 and 16×16. (8×8 is
    // the identity quotient; 16×16 folds to 8×8 and is the first size
    // where the quotient actually discards states.)
    let cases: &[(Scheme, u8)] = &[
        (SA, 8),
        (SA, 7),
        (Scheme::DeflectiveRecovery, 8),
        (Scheme::ProgressiveRecovery, 4),
    ];
    for radix in [&[8u32, 8][..], &[16, 16][..]] {
        for &(scheme, vcs) in cases {
            let fx = Fixture::torus(radix, scheme, PatternSpec::pat271(), vcs);
            let full = verify(&fx.input());
            let quot = verify_quotiented(&fx.input());
            assert_eq!(
                quot.name(),
                full.name(),
                "quotient disagrees with full enumeration: {radix:?} {scheme:?} vcs={vcs}"
            );
        }
    }
}

#[test]
fn quotiented_verifier_classifies_64x64_fast() {
    // The scale-ladder acceptance bar: SA/DR/PR verdicts on a 64×64
    // torus in under a second total, via the orbit quotient. The folded
    // representative is 8×8, so each classification is milliseconds; the
    // only O(N) work left is progressive recovery's ring-coverage tour.
    let t0 = std::time::Instant::now();
    let fx = Fixture::torus(&[64, 64], SA, PatternSpec::pat271(), 8);
    assert!(verify_quotiented(&fx.input()).is_proven_free());
    let fx = Fixture::torus(&[64, 64], Scheme::DeflectiveRecovery, PatternSpec::pat271(), 8);
    assert_eq!(verify_quotiented(&fx.input()).name(), "RecoverableCycles");
    let fx = Fixture::torus(&[64, 64], Scheme::ProgressiveRecovery, PatternSpec::pat271(), 4);
    assert_eq!(verify_quotiented(&fx.input()).name(), "RecoverableCycles");
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(1),
        "64×64 ladder verification took {:?}",
        t0.elapsed()
    );
}

#[test]
fn quotiented_verifier_handles_3d_and_odd_radices() {
    // 8×8×8 folds to itself (radix ≤ 9 is kept verbatim) and must still
    // classify; an odd oversized radix folds to 9, keeping tie-freedom.
    let fx = Fixture::torus(&[8, 8, 8], SA, PatternSpec::pat271(), 8);
    assert!(verify_quotiented(&fx.input()).is_proven_free());
    let fx = Fixture::torus(&[15, 15], SA, PatternSpec::pat271(), 8);
    let v = verify_quotiented(&fx.input());
    assert_eq!(v.name(), verify(&fx.input()).name());
}

#[test]
fn verdict_accessors_are_consistent() {
    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat100(), 4);
    let free = verify(&fx.input());
    assert_eq!(free.name(), "ProvenFree");
    assert!(!free.is_unsafe());

    let fx = Fixture::torus(&[4, 4], SA, PatternSpec::pat271(), 4);
    let bad = verify(&fx.input());
    assert_eq!(bad.name(), "Unsafe");
    assert!(!bad.is_proven_free());
}
